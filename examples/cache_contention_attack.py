#!/usr/bin/env python3
"""Cache-contention attack on LPM with 1-stage Direct Lookup (§5.2).

This example walks the full memory-adversarial story end to end:

1. reverse-engineer L3 contention sets of the simulated processor by timing
   probe loops (the §3.2 algorithm — run for real here on a small pool);
2. let CASTAN synthesize ~40 destinations whose lookup-table entries fall
   into one contention set;
3. replay the workload against the DUT and compare its L3 miss rate and
   latency with a flow-count-matched uniform-random control workload.

Usage::

    python examples/cache_contention_attack.py
"""

from __future__ import annotations

from repro.cache.contention import discover_contention_sets
from repro.cache.hierarchy import MemoryHierarchy
from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.testbed.measure import measure_latency
from repro.workloads.generators import make_castan_workload, make_unirand_castan_workload


def main() -> int:
    nf = get_nf("lpm-direct")
    print(f"NF: {nf.name} — {nf.description}")
    table = nf.module.get_region("dl_table")
    print(f"Lookup table: {table.size_bytes / 1024:.0f} KiB "
          f"(simulated L3: {CastanConfig().hierarchy.l3_size / 1024:.0f} KiB)\n")

    # Step 1: probing-based contention-set discovery on a small pool.
    hierarchy = MemoryHierarchy(CastanConfig().hierarchy)
    stride = hierarchy.config.l3_sets_per_slice * hierarchy.config.line_size
    pool = [table.base_address + i * stride for i in range(96)]
    discovered = discover_contention_sets(hierarchy, pool, repeats=6)
    print(f"Probing discovered {discovered.set_count} contention sets "
          f"(sizes: {discovered.set_sizes()})")

    # Step 2: CASTAN analysis (the pipeline uses its own, larger model).
    config = CastanConfig(max_states=100, deadline_seconds=20.0, num_packets=40)
    result = Castan(config).analyze(nf)
    print(result.summary())

    # Step 3: replay and compare against a fair uniform-random control.
    castan_workload = make_castan_workload(result.packets)
    control = make_unirand_castan_workload(nf, castan_workload.flow_count)
    castan_run = measure_latency(nf, castan_workload, replay_packets=2000)
    control_run = measure_latency(nf, control, replay_packets=2000)

    print("\n                         CASTAN      UniRand-CASTAN (control)")
    print(f"median latency (ns):   {castan_run.median_latency_ns:8.1f}        "
          f"{control_run.median_latency_ns:8.1f}")
    print(f"median L3 misses/pkt:  {castan_run.counter_summary.median_l3_misses:8.1f}        "
          f"{control_run.counter_summary.median_l3_misses:8.1f}")
    print(f"median cycles/pkt:     {castan_run.counter_summary.median_cycles:8.1f}        "
          f"{control_run.counter_summary.median_cycles:8.1f}")
    print("\nThe CASTAN workload keeps evicting its own lookup-table lines from "
          "one L3 contention set, so every replayed packet pays a DRAM access; "
          "the same number of random flows fits in the cache after the first loop.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
