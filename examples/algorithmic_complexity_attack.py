#!/usr/bin/env python3
"""Algorithmic-complexity attack on the NAT's unbalanced tree (§5.3).

Compares four workloads on the NAT-with-unbalanced-tree NF:

* typical Zipfian traffic,
* uniform-random traffic (many flows, balanced-ish tree),
* the hand-crafted Manual workload (ordered keys → the tree degenerates),
* the CASTAN-synthesized workload (rediscovers the same attack automatically),

and shows the same comparison against the red-black-tree NAT, where the
rebalancing defeats the attack — the paper's Fig. 9 vs Fig. 11 story.

Usage::

    python examples/algorithmic_complexity_attack.py
"""

from __future__ import annotations

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.testbed.measure import measure_latency
from repro.workloads.generators import (
    make_castan_workload,
    make_manual_workload,
    make_unirand_workload,
    make_zipfian_workload,
)


def evaluate(nf_name: str) -> None:
    nf = get_nf(nf_name)
    print(f"\n=== {nf.name} — {nf.description}")
    config = CastanConfig(max_states=400, deadline_seconds=15.0, num_packets=12)
    analysis = Castan(config).analyze(nf)
    print(f"CASTAN synthesized {analysis.packet_count} packets "
          f"in {analysis.analysis_seconds:.1f}s "
          f"(estimated worst path: {analysis.best_state_cost} cycles)")

    workloads = {
        "zipfian": make_zipfian_workload(nf, 2000, 130),
        "unirand": make_unirand_workload(nf, 2000),
        "castan": make_castan_workload(analysis.packets),
    }
    manual = make_manual_workload(nf, count=analysis.packet_count)
    if manual is not None:
        workloads["manual"] = manual

    print(f"{'workload':<10}{'packets':>9}{'flows':>7}{'median instr/pkt':>18}{'median latency (ns)':>21}")
    for name, workload in workloads.items():
        run = measure_latency(nf, workload, replay_packets=1500)
        summary = run.counter_summary
        print(f"{name:<10}{workload.packet_count:>9}{workload.flow_count:>7}"
              f"{summary.median_instructions:>18.0f}{run.median_latency_ns:>21.1f}")


def main() -> int:
    evaluate("nat-unbalanced-tree")
    evaluate("nat-red-black-tree")
    print("\nThe unbalanced tree degenerates under the ordered keys that Manual and "
          "CASTAN send, so a few dozen packets rival a million-flow flood; the "
          "red-black tree rebalances and only total flow count matters.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
