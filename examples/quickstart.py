#!/usr/bin/env python3
"""Quickstart: synthesize an adversarial workload for one NF and inspect it.

Runs CASTAN on the Patricia-trie LPM, prints the synthesized packets and the
per-path CPU-model metrics, writes the workload to a pcap file, and finally
replays it (plus a typical Zipfian workload) on the simulated testbed to show
the latency difference.

Usage::

    python examples/quickstart.py [nf-name]

``nf-name`` defaults to ``lpm-patricia``; run with ``--list`` to see options.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import Castan, CastanConfig, available_nfs, get_nf
from repro.testbed.measure import measure_latency
from repro.workloads.generators import make_castan_workload, make_zipfian_workload


def main() -> int:
    if "--list" in sys.argv:
        print("Available NFs:")
        for name in available_nfs():
            print(f"  {name}")
        return 0

    nf_name = sys.argv[1] if len(sys.argv) > 1 else "lpm-patricia"
    nf = get_nf(nf_name)
    print(f"Analyzing {nf.name}: {nf.description}")

    config = CastanConfig(max_states=400, deadline_seconds=20.0, num_packets=10)
    result = Castan(config).analyze(nf)
    print(result.summary())
    print()
    print("Synthesized packets (the adversarial workload):")
    for i, packet in enumerate(result.packets):
        print(
            f"  #{i:2d}  {packet.src_ip >> 24}.{(packet.src_ip >> 16) & 255}."
            f"{(packet.src_ip >> 8) & 255}.{packet.src_ip & 255}:{packet.src_port} -> "
            f"{packet.dst_ip >> 24}.{(packet.dst_ip >> 16) & 255}."
            f"{(packet.dst_ip >> 8) & 255}.{packet.dst_ip & 255}:{packet.dst_port} "
            f"proto {packet.protocol}"
        )
    print()
    print("Per-path CPU model metrics (what the analysis predicts):")
    print(result.metrics.to_report())

    pcap_path = Path("castan-workload.pcap")
    result.write_pcap(pcap_path)
    print(f"\nWorkload written to {pcap_path.resolve()}")

    print("\nReplaying on the simulated testbed (median end-to-end latency):")
    castan_latency = measure_latency(nf, make_castan_workload(result.packets), replay_packets=1500)
    zipf_latency = measure_latency(nf, make_zipfian_workload(nf, 1500, 100), replay_packets=1500)
    print(f"  CASTAN  ({len(result.packets):4d} packets): {castan_latency.median_latency_ns:8.1f} ns")
    print(f"  Zipfian ({1500:4d} packets): {zipf_latency.median_latency_ns:8.1f} ns")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
