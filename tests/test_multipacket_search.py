"""Tests for the per-packet beam-batched search and its satellite fixes:
beam-vs-monolithic differential behaviour, the paused-state lifecycle,
pending-report truncation, searcher seed threading and config handling."""

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.nf.registry import get_nf
from repro.symbex.batch import run_beam_search
from repro.symbex.engine import SymbolicEngine, SymbexStats, _drain_best_pending
from repro.symbex.expr import Sym
from repro.symbex.searcher import (
    BreadthFirstSearcher,
    CastanSearcher,
    RandomSearcher,
    make_searcher,
    select_beam,
)
from repro.symbex.state import StateStatus


def make_module(source, regions=None):
    module = Module("test")
    for name, (length, size, initial) in (regions or {}).items():
        module.add_region(name, length, size, initial=initial)
    compile_nf(module, source, entry="process")
    return module


def packet_symbols(index=0):
    return [
        Sym(f"p{index}.src_ip", 32),
        Sym(f"p{index}.dst_ip", 32),
        Sym(f"p{index}.src_port", 16),
        Sym(f"p{index}.dst_port", 16),
        Sym(f"p{index}.protocol", 8),
    ]


BRANCHY_SOURCE = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    cost = 0
    i = 0
    while i < 4:
        if (dst_ip >> i) & 1 == 1:
            cost = cost + table[i]
        i = i + 1
    return cost
"""


def branchy_engine(num_packets=2):
    module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {i: 5 for i in range(8)})})
    from repro.cfg.costs import annotate_costs

    annotation = annotate_costs(module, "process")
    return SymbolicEngine(
        module,
        "process",
        [packet_symbols(i) for i in range(num_packets)],
        annotation=annotation,
    )


class TestBeamDifferential:
    def test_beam_matches_monolithic_best_on_exhaustive_search(self):
        """With budgets large enough to exhaust the frontier, both search
        shapes must find the same best multi-packet path."""
        mono = branchy_engine().run(CastanSearcher(), max_states=10_000)
        beam = run_beam_search(
            branchy_engine(),
            CastanSearcher,
            beam_width=64,
            max_states=10_000,
            round_max_states=10_000,
            strike_chunk_states=10_000,
        )
        mono_best = mono.best_state()
        beam_best = beam.best_state()
        assert mono_best.status is StateStatus.COMPLETED
        assert beam_best.status is StateStatus.COMPLETED
        assert beam_best.current_cost == mono_best.current_cost
        assert [a for a in beam_best.packet_actions] == [a for a in mono_best.packet_actions]

    def test_beam_records_round_stats(self):
        stats = run_beam_search(
            branchy_engine(num_packets=3),
            CastanSearcher,
            beam_width=4,
            max_states=500,
        )
        assert stats.rounds
        prime_rounds = [r for r in stats.rounds if r.phase == "prime"]
        strike_rounds = [r for r in stats.rounds if r.phase == "strike"]
        assert len(prime_rounds) == 2  # packets 0 and 1
        assert strike_rounds and strike_rounds[0].packet_index == 2
        assert stats.states_explored == sum(r.states_explored for r in stats.rounds)

    def test_beam_width_zero_falls_back_to_monolithic(self):
        mono = branchy_engine().run(CastanSearcher(), max_states=10_000)
        fallback = run_beam_search(
            branchy_engine(), CastanSearcher, beam_width=0, max_states=10_000
        )
        assert not fallback.rounds
        assert fallback.best_state().current_cost == mono.best_state().current_cost
        assert fallback.states_explored == mono.states_explored

    def test_exhausted_budget_still_reports_a_fallback_state(self):
        """An already-elapsed deadline must not lose the seed frontier: the
        caller falls back to the best partial state, like the monolithic
        search does."""
        stats = run_beam_search(
            branchy_engine(), CastanSearcher, beam_width=4, deadline_seconds=0.0
        )
        assert stats.best_state() is not None

    def test_beam_pipeline_on_real_nf(self):
        config = CastanConfig(
            max_states=60,
            deadline_seconds=None,
            num_packets=3,
            search_mode="beam",
        )
        result = Castan(config).analyze(get_nf("lpm-patricia"))
        assert result.search_mode == "beam"
        assert result.search_rounds >= 3
        assert result.packet_count >= 1
        assert result.best_state_cost > 0


class TestPausedLifecycle:
    def test_stop_at_packet_parks_states_at_boundary(self):
        engine = branchy_engine(num_packets=2)
        stats = engine.run(CastanSearcher(), max_states=10_000, stop_at_packet=1)
        assert stats.paused_states
        assert not stats.completed_states
        assert all(s.status is StateStatus.PAUSED for s in stats.paused_states)
        assert all(s.packets_processed == 1 for s in stats.paused_states)

    def test_resume_continues_into_next_packet(self):
        engine = branchy_engine(num_packets=2)
        first = engine.run(CastanSearcher(), max_states=10_000, stop_at_packet=1)
        second = engine.run(
            CastanSearcher(),
            max_states=10_000,
            initial_states=first.paused_states,
        )
        assert second.completed_states
        best = second.best_state()
        assert best.packets_processed == 2
        assert len(best.packet_metrics) == 2

    def test_pause_resume_guards(self):
        engine = branchy_engine()
        state = engine.make_initial_state()
        with pytest.raises(ValueError):
            state.resume_round()
        state.pause_at_round_boundary()
        assert state.status is StateStatus.PAUSED
        with pytest.raises(ValueError):
            state.pause_at_round_boundary()
        state.resume_round()
        assert state.status is StateStatus.RUNNING
        assert state.round_cost_baseline == state.current_cost

    def test_select_beam_prefers_priority_and_is_deterministic(self):
        engine = branchy_engine()
        states = [engine.make_initial_state() for _ in range(4)]
        for i, state in enumerate(states):
            state.priority = i
        beam = select_beam(states, 2)
        assert beam == [states[3], states[2]]
        assert select_beam(states, 0) == []
        # Ties break toward the earliest-created state.
        for state in states:
            state.priority = 7
        assert select_beam(states, 1) == [states[0]]


class TestPendingReportTruncation:
    def test_drain_keeps_global_best_under_truncation(self):
        """Regression: under FIFO pop order the true best pending state used
        to be dropped when the report set was truncated."""
        engine = branchy_engine()
        searcher = BreadthFirstSearcher()
        states = [engine.make_initial_state() for _ in range(6)]
        # Costs increase, so FIFO pop order sees the best state *last*.
        for i, state in enumerate(states):
            state.current_cost = i * 100
            searcher.add(state)
        report = _drain_best_pending(searcher, limit=2)
        assert len(report) == 2
        assert states[-1] in report and states[-2] in report

    def test_drain_preserves_pop_order_when_not_truncated(self):
        engine = branchy_engine()
        searcher = BreadthFirstSearcher()
        states = [engine.make_initial_state() for _ in range(3)]
        for state in states:
            searcher.add(state)
        assert _drain_best_pending(searcher, limit=10) == states

    def test_best_state_considers_paused_states(self):
        engine = branchy_engine()
        paused, pending = engine.make_initial_state(), engine.make_initial_state()
        paused.packets_processed, paused.current_cost = 2, 50
        pending.packets_processed, pending.current_cost = 1, 500
        stats = SymbexStats(paused_states=[paused], pending_states=[pending])
        assert stats.best_state() is paused


class TestSearcherSeedThreading:
    def test_random_searcher_honors_seed(self):
        engine = branchy_engine()
        states = [engine.make_initial_state() for _ in range(8)]
        runs = []
        for _ in range(2):
            searcher = make_searcher("random", seed=1234)
            for state in states:
                searcher.add(state)
            runs.append([searcher.pop().sid for _ in range(len(states))])
        assert runs[0] == runs[1]
        assert isinstance(make_searcher("random", seed=0), RandomSearcher)

    def test_seed_ignored_by_deterministic_searchers(self):
        assert isinstance(make_searcher("castan", seed=99), CastanSearcher)
        assert isinstance(make_searcher("bfs", seed=99), BreadthFirstSearcher)

    def test_castan_config_seed_reaches_random_ablation(self):
        config = CastanConfig(
            max_states=40, deadline_seconds=None, num_packets=2, searcher="random", seed=7
        )
        first = Castan(config).analyze(get_nf("lpm-patricia"))
        second = Castan(config).analyze(get_nf("lpm-patricia"))
        assert [p.flow_tuple for p in first.packets] == [p.flow_tuple for p in second.packets]


class TestConfigHandling:
    def test_unknown_search_mode_raises(self):
        config = CastanConfig(search_mode="astar")
        with pytest.raises(ValueError, match="search_mode"):
            Castan(config).analyze(get_nf("nop"))

    def test_explicit_zero_packets_is_honored(self):
        """Regression: ``num_packets=0`` used to fall back to the per-NF
        default via a truthiness check."""
        config = CastanConfig(max_states=10, deadline_seconds=None)
        result = Castan(config).analyze(get_nf("nop"), num_packets=0)
        assert result.packet_count == 0
        assert CastanConfig(num_packets=0).packets_for(10) == 0
        assert CastanConfig(num_packets=None).packets_for(10) == 10

    def test_eval_scale_warning(self, monkeypatch):
        from repro.eval.experiments import EvalSettings

        monkeypatch.setenv("REPRO_EVAL_SCALE", "bogus")
        with pytest.warns(RuntimeWarning, match="REPRO_EVAL_SCALE"):
            settings = EvalSettings.from_environment()
        assert settings == EvalSettings()

    def test_eval_scale_known_values_do_not_warn(self, monkeypatch):
        import warnings

        from repro.eval.experiments import EvalSettings

        for scale in ("smoke", "quick", "full"):
            monkeypatch.setenv("REPRO_EVAL_SCALE", scale)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                EvalSettings.from_environment()
