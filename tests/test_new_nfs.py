"""Behavioural and end-to-end tests for the four scenario-expansion NFs
(firewall, policer, dedup, DPI), plus registry-wide hygiene: every
registered NF must build, compile and analyze at smoke scale."""

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.hashing.functions import flow_hash16
from repro.net.packet import IPProtocol, Packet
from repro.nf.common import (
    EXTERNAL_SERVER,
    FIREWALL_SLOTS,
    FIREWALL_TTL_TICKS,
    POLICER_BURST,
    POLICER_REFILL_TICKS,
    POLICER_SLOTS,
)
from repro.nf.dpi import DEFAULT_SIGNATURES, build_dpi_trie, packet_for_signature
from repro.nf.registry import NF_NAMES, get_nf
from repro.perf.interpreter import ConcreteInterpreter

UDP = int(IPProtocol.UDP)


def interpreter_for(name):
    nf = get_nf(name)
    return nf, ConcreteInterpreter(nf.module, nf.entry)


def outbound(host=0x0A000101, sport=1000, dport=80):
    return Packet(src_ip=host, dst_ip=EXTERNAL_SERVER, src_port=sport, dst_port=dport,
                  protocol=UDP)


def inbound(host=0x0A000101, sport=1000, dport=80):
    """The reply to :func:`outbound`: endpoints and ports swapped."""
    return Packet(src_ip=EXTERNAL_SERVER, dst_ip=host, src_port=dport, dst_port=sport,
                  protocol=UDP)


class TestFirewall:
    def test_outbound_allowed_and_tracked(self):
        nf, it = interpreter_for("fw-conntrack")
        assert it.process_packet(outbound()).action == 1
        assert it.read_region("fw_count", 0) == 1

    def test_reply_allowed_unsolicited_dropped(self):
        nf, it = interpreter_for("fw-conntrack")
        assert it.process_packet(inbound()).action == 0  # no connection yet
        assert it.process_packet(outbound()).action == 1
        assert it.process_packet(inbound()).action == 1  # tracked reply
        assert it.process_packet(inbound(sport=9999)).action == 0  # other flow

    def test_non_l4_traffic_dropped(self):
        nf, it = interpreter_for("fw-conntrack")
        icmp = Packet(src_ip=0x0A000101, dst_ip=EXTERNAL_SERVER, src_port=0, dst_port=0,
                      protocol=1)
        assert it.process_packet(icmp).action == 0

    def test_connections_expire_after_ttl(self):
        nf, it = interpreter_for("fw-conntrack")
        assert it.process_packet(outbound()).action == 1
        # Advance the clock past the TTL with unrelated traffic.
        for i in range(FIREWALL_TTL_TICKS + 1):
            it.process_packet(inbound(host=0x0A000999, sport=i))
        assert it.process_packet(inbound()).action == 0  # expired

    def test_full_ring_evicts_oldest(self):
        nf, it = interpreter_for("fw-conntrack")
        for i in range(FIREWALL_SLOTS + 1):
            assert it.process_packet(outbound(dport=1024 + i)).action == 1
        assert it.read_region("fw_count", 0) == FIREWALL_SLOTS
        # The oldest connection was evicted to make room; the newest stands.
        assert it.process_packet(inbound(dport=1024)).action == 0
        assert it.process_packet(inbound(dport=1024 + FIREWALL_SLOTS)).action == 1

    def test_scan_cost_grows_with_occupancy(self):
        nf, it = interpreter_for("fw-conntrack")
        for i in range(32):
            it.process_packet(outbound(dport=1024 + i))
        shallow = it.process_packet(outbound(dport=1024)).instructions  # head entry
        deep = it.process_packet(outbound(dport=1024 + 31)).instructions  # tail entry
        assert deep > shallow

    def test_shared_address_scans_cost_more_than_distinct(self):
        """The partial-key gradient: entries sharing the stored address word
        force the scan to compare both words of every slot."""

        def fill_cost(packets):
            nf, it = interpreter_for("fw-conntrack")
            for p in packets:
                it.process_packet(p)
            # Cost of looking up the last-inserted connection again.
            return it.process_packet(packets[-1]).instructions

        same_addr = [outbound(dport=1024 + i) for i in range(24)]
        distinct = [outbound(host=0x0A000100 + i, dport=1024 + i) for i in range(24)]
        assert fill_cost(same_addr) > fill_cost(distinct)

    def test_manual_workload_shares_one_address(self):
        nf = get_nf("fw-conntrack")
        packets = nf.manual_workload(10)
        assert len({p.src_ip for p in packets}) == 1
        assert len({(p.src_port, p.dst_port) for p in packets}) == 10


class TestPolicer:
    def test_within_burst_forwarded_then_policed(self):
        nf, it = interpreter_for("policer-two-choice")
        p = outbound()
        sends = 4 * POLICER_BURST
        actions = [it.process_packet(p).action for p in [p] * sends]
        assert actions[:POLICER_BURST] == [1] * POLICER_BURST
        # After the burst, a back-to-back sender is throttled to the refill
        # rate: one forward per POLICER_REFILL_TICKS ticks, everything else
        # dropped.
        tail = actions[POLICER_BURST:]
        assert tail.count(1) <= len(tail) // POLICER_REFILL_TICKS + 1
        assert actions[-1] == 0

    def test_tokens_refill_after_idle_ticks(self):
        nf, it = interpreter_for("policer-two-choice")
        p = outbound()
        for _ in range(POLICER_BURST + 1):
            it.process_packet(p)
        assert it.process_packet(p).action == 0
        # Unrelated traffic advances the clock; the flow earns tokens back.
        for i in range(2 * POLICER_REFILL_TICKS):
            it.process_packet(outbound(host=0x0B000100 + i, sport=5000 + i))
        assert it.process_packet(p).action == 1

    def test_compliant_rate_keeps_fractional_credit(self):
        """Refill must not truncate away partial intervals: a flow sending
        once every POLICER_REFILL_TICKS ticks earns its token back every
        time, even though `last` only advances by whole intervals."""
        nf, it = interpreter_for("policer-two-choice")
        p = outbound()
        forwarded = 0
        total = 40
        for i in range(total * POLICER_REFILL_TICKS):
            if i % POLICER_REFILL_TICKS == 0:
                forwarded += it.process_packet(p).action
            else:  # unrelated traffic advancing the clock between sends
                it.process_packet(outbound(host=0x0B000100 + (i % 50), sport=5000 + i))
        assert forwarded == total

    def test_distinct_flows_do_not_interfere(self):
        nf, it = interpreter_for("policer-two-choice")
        a, b = outbound(sport=1000), outbound(sport=2000)
        for _ in range(POLICER_BURST + 1):
            it.process_packet(a)
        assert it.process_packet(b).action == 1  # b's bucket is fresh

    def test_relocation_keeps_flows_policed(self):
        """Cuckoo displacement must move token state, not lose it: after a
        both-slots collision kicks a drained flow to its alternate slot, the
        drained flow stays policed."""

        def slots(p):
            key = p.src_ip | (p.src_port << 32) | (p.dst_port << 48)
            alt = p.src_ip | (p.dst_port << 32) | (p.src_port << 48)
            mask = POLICER_SLOTS - 1
            return flow_hash16(key) & mask, flow_hash16(alt) & mask

        first = outbound(sport=1000)
        slot_a, _ = slots(first)
        # Find two more flows whose primary slot collides with `first`'s
        # (the third then forces the cascade path).  The tables hold 65,536
        # slots, so sweep hosts as well as ports.
        second = third = None
        for host in range(64):
            for sport in range(1001, 60000, 7):
                cand = outbound(host=0x0B000001 + host, sport=sport)
                if slots(cand)[0] == slot_a:
                    if second is None:
                        second = cand
                    elif third is None:
                        third = cand
                if third is not None:
                    break
            if third is not None:
                break
        assert second is not None and third is not None
        nf, it = interpreter_for("policer-two-choice")
        # Drain the burst, then synchronize on a refill-forward: right after
        # one, `last == now`, so the immediately following send must drop.
        for _ in range(POLICER_BURST):
            assert it.process_packet(first).action == 1
        for _ in range(2 * POLICER_REFILL_TICKS):
            if it.process_packet(first).action == 1:
                break
        assert it.process_packet(first).action == 0  # drained, mid-interval
        assert it.process_packet(second).action == 1  # goes to its B slot
        assert it.process_packet(third).action == 1  # displaces someone
        # The drained bucket must have moved with the key: two back-to-back
        # sends can earn at most one refill token, whereas a *lost* bucket
        # would be re-inserted fresh (POLICER_BURST tokens) and forward both.
        followup = [it.process_packet(first).action for _ in range(2)]
        assert followup.count(1) <= 1

    def test_non_l4_traffic_dropped(self):
        nf, it = interpreter_for("policer-two-choice")
        icmp = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=1)
        assert it.process_packet(icmp).action == 0

    def test_zero_key_flow_is_forwarded_untracked(self):
        """The all-zero 5-tuple packs to the empty-slot sentinel: it must
        fail open, not phantom-match (or corrupt) empty slots."""
        nf, it = interpreter_for("policer-two-choice")
        zero = Packet(src_ip=0, dst_ip=2, src_port=0, dst_port=0, protocol=UDP)
        for _ in range(2 * POLICER_BURST):
            assert it.process_packet(zero).action == 1  # never policed, never stored
        assert it.read_region("pol_clock", 0) == 2 * POLICER_BURST


class TestDedup:
    def test_unique_packets_forwarded_duplicates_dropped(self):
        nf, it = interpreter_for("dedup-bloom")
        a, b = outbound(sport=1000), outbound(sport=2000)
        assert it.process_packet(a).action == 1
        assert it.process_packet(b).action == 1
        assert it.process_packet(a).action == 0  # exact duplicate
        assert it.read_region("dedup_count", 0) == 2

    def test_bloom_false_positive_takes_slow_path_but_forwards(self):
        """A never-seen flow whose probes land on already-set bits is a
        false positive — it must still be forwarded, after the verification
        scan proves it is new."""
        from repro.nf.common import BLOOM_BITS

        mask = BLOOM_BITS - 1

        def bits(p):
            fp = p.src_ip | (p.src_port << 32) | (p.dst_port << 48)
            alt = p.src_ip | (p.dst_port << 32) | (p.src_port << 48)
            return {flow_hash16(fp) & mask, flow_hash16(alt) & mask}

        fill = [outbound(sport=1000 + i) for i in range(600)]
        set_bits = set()
        for p in fill:
            set_bits |= bits(p)
        collider = None
        for sport in range(20000, 60000):
            cand = outbound(sport=sport)
            if bits(cand) <= set_bits:
                collider = cand
                break
        assert collider is not None
        nf, it = interpreter_for("dedup-bloom")
        for p in fill:
            assert it.process_packet(p).action == 1
        slow = it.process_packet(collider)
        assert slow.action == 1  # false positive, verified new
        assert it.read_region("dedup_count", 0) == len(fill) + 1

    def test_duplicate_scan_cost_grows_with_store_depth(self):
        nf, it = interpreter_for("dedup-bloom")
        flows = [outbound(sport=1000 + i) for i in range(32)]
        for p in flows:
            it.process_packet(p)
        shallow = it.process_packet(flows[0]).instructions
        deep = it.process_packet(flows[-1]).instructions
        assert deep > shallow

    def test_manual_workload_repeats_deepest_fingerprint(self):
        nf = get_nf("dedup-bloom")
        packets = nf.manual_workload(12)
        assert len(packets) == 12
        assert len({p.flow_tuple for p in packets}) == 6  # half fill, half repeat


class TestDPI:
    def test_deep_signature_blocks_packet(self):
        nf, it = interpreter_for("dpi-trie")
        deepest = max(DEFAULT_SIGNATURES, key=lambda sig: len(sig[0]))
        assert it.process_packet(packet_for_signature(deepest[0])).action == 0

    def test_benign_packet_forwarded(self):
        nf, it = interpreter_for("dpi-trie")
        benign = Packet(src_ip=0x01020304, dst_ip=EXTERNAL_SERVER, src_port=1000,
                        dst_port=80, protocol=UDP)
        assert it.process_packet(benign).action == 1

    def test_cost_grows_with_match_depth(self):
        nf, it = interpreter_for("dpi-trie")
        by_depth = sorted(DEFAULT_SIGNATURES, key=lambda sig: len(sig[0]))
        costs = [it.process_packet(packet_for_signature(sig[0])).instructions
                 for sig in (by_depth[0], by_depth[-1])]
        assert costs[1] > costs[0]

    def test_trie_builder_rejects_bad_signatures(self):
        with pytest.raises(ValueError):
            build_dpi_trie(((b"", 1),))
        with pytest.raises(ValueError):
            build_dpi_trie(((b"\x01\x02", 0),))
        with pytest.raises(ValueError):  # fanout overflow at the root
            build_dpi_trie(tuple((bytes([i]), i + 1) for i in range(5)))
        with pytest.raises(ValueError):  # duplicate pattern = conflicting rules
            build_dpi_trie(((b"\x01", 1), (b"\x01", 2)))

    def test_manual_workload_matches_deep_signatures(self):
        nf, it = interpreter_for("dpi-trie")
        packets = nf.manual_workload(6)
        benign = Packet(src_ip=0x01020304, dst_ip=EXTERNAL_SERVER, src_port=1000,
                        dst_port=80, protocol=UDP)
        floor = it.process_packet(benign).instructions
        assert all(it.process_packet(p).instructions > floor for p in packets)


class TestWorkloadHints:
    """Generated random traffic must reach each new NF's data structure
    (complementing the ``_flow_for_index`` injectivity suite in
    ``test_workloads_testbed.py``, which covers all registry NFs)."""

    @pytest.mark.parametrize("name", ["fw-conntrack", "policer-two-choice", "dedup-bloom"])
    def test_unirand_traffic_is_not_dropped(self, name):
        from repro.workloads.generators import make_unirand_workload

        nf, it = interpreter_for(name)
        workload = make_unirand_workload(nf, num_packets=60)
        actions = [it.process_packet(p).action for p in workload.packets]
        assert all(action == 1 for action in actions)

    def test_firewall_unirand_traffic_is_outbound(self):
        from repro.workloads.generators import make_unirand_workload

        nf = get_nf("fw-conntrack")
        workload = make_unirand_workload(nf, num_packets=60)
        assert all(p.src_ip >> 24 == 10 for p in workload.packets)


class TestRegistryHygiene:
    """Every registered NF must make it through the whole pipeline."""

    @pytest.mark.parametrize("name", NF_NAMES)
    def test_every_nf_analyzes_at_smoke_scale(self, name):
        config = CastanConfig(max_states=20, num_packets=2, deadline_seconds=None)
        result = Castan(config).analyze(get_nf(name))
        assert result.packet_count >= 1
        assert result.states_explored > 0
        if name != "nop":
            assert result.best_state_cost > 0


class TestAdversarialNonTriviality:
    """Acceptance gate for the scenario expansion: each new NF's synthesized
    workload must beat a random baseline at quick scale, in both the
    symbolic cost model (vs. the random-searcher ablation under the same
    budget) and measured replay (vs. a random workload of the same flow
    count)."""

    NEW_NFS = ("fw-conntrack", "policer-two-choice", "dedup-bloom", "dpi-trie")

    @pytest.mark.parametrize("name", NEW_NFS)
    def test_synthesized_cost_beats_random_baseline(self, name):
        from repro.workloads.generators import (
            make_castan_workload,
            make_unirand_castan_workload,
        )

        config = CastanConfig(max_states=250, deadline_seconds=None)
        result = Castan(config).analyze(get_nf(name))
        random_result = Castan(
            CastanConfig(max_states=250, deadline_seconds=None, searcher="random")
        ).analyze(get_nf(name))
        assert result.best_state_cost > random_result.best_state_cost

        castan_workload = make_castan_workload(result.packets)
        baseline = make_unirand_castan_workload(get_nf(name), castan_workload.flow_count)
        nf = get_nf(name)
        replayed = ConcreteInterpreter(nf.module, nf.entry).process_packets(
            castan_workload.looped(400)
        )
        nf = get_nf(name)
        baseline_replayed = ConcreteInterpreter(nf.module, nf.entry).process_packets(
            baseline.looped(400)
        )
        assert replayed.total_cycles > baseline_replayed.total_cycles
