"""Tests for the process-parallel subsystem (repro.parallel).

Covers the three guarantees the parallel layer makes:

* the compact pickle path round-trips expressions, solver contexts and
  execution states (memo/fingerprint tables rebuilt, copy-on-write overlays
  intact);
* the portfolio runner produces byte-identical workloads and equal
  best-state costs to a sequential run;
* the sharded beam search is invariant under the worker count.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.core.workload import make_packet_symbols, symbol_defaults, workload_digest
from repro.ir.instructions import BinOpKind, CmpKind
from repro.nf.registry import get_nf
from repro.parallel.portfolio import PortfolioRunner
from repro.symbex.engine import SymbolicEngine
from repro.symbex.expr import Const, Sym, expr_eq, make_binop, make_cmp
from repro.symbex.incremental import SolverContext
from repro.symbex.searcher import make_searcher
from repro.symbex.solver import Solver

DIFFERENTIAL_NFS = (
    "lpm-patricia",
    "nat-hash-table",
    "lb-red-black-tree",
    "fw-conntrack",
    "policer-two-choice",
    "dedup-bloom",
    "dpi-trie",
)


def _digest(result) -> str:
    return workload_digest(result.packets)


def _make_engine(nf_name: str, num_packets: int = 3):
    config = CastanConfig(max_states=40, deadline_seconds=None)
    nf = get_nf(nf_name)
    castan = Castan(config)
    annotation = castan._annotate(nf)
    cache_model, _ = castan._build_cache_model(nf)
    solver = Solver(search_budget=config.solver_budget, seed=config.seed)
    packet_sets = make_packet_symbols(num_packets)
    defaults = symbol_defaults(packet_sets, nf.packet_defaults)
    engine = SymbolicEngine(
        module=nf.module,
        entry=nf.entry,
        packet_args=[ps.args for ps in packet_sets],
        annotation=annotation,
        cache_model=cache_model,
        solver=solver,
        cycle_costs=config.cycle_costs,
        defaults=defaults,
        hash_output_bits=nf.hash_output_bits,
    )
    return engine, defaults


# -- pickle round-trips --------------------------------------------------------


def test_expr_pickle_reinterns():
    """A pickled expression loads back as the *same* interned node."""
    expr = make_cmp(
        CmpKind.ULT,
        make_binop(BinOpKind.ADD, Sym("pkt0.src_ip", 32), Const(7)),
        Const(1000),
    )
    assert pickle.loads(pickle.dumps(expr)) is expr


def test_solver_context_pickle_roundtrip():
    """Constraints, fixpoint and query results survive the pickle path."""
    solver = Solver(search_budget=500, seed=7)
    context = SolverContext(solver)
    context.add(make_cmp(CmpKind.ULT, Sym("a", 16), Const(100)))
    context.add(expr_eq(Sym("b", 8), Const(3)))
    child = context.fork()
    child.add(expr_eq(Sym("a", 16), Const(5)))

    loaded_solver, loaded, loaded_child = pickle.loads(pickle.dumps((solver, context, child)))

    # Shared references are preserved within one payload.
    assert loaded.solver is loaded_solver and loaded_child.solver is loaded_solver
    # The constraint chain is flattened but identical (re-interned exprs).
    assert loaded.constraints() == context.constraints()
    assert loaded_child.constraints() == child.constraints()
    # The propagation fixpoint carried over.
    assert loaded_child.assignment_of("a") == 5
    assert loaded.assignment_of("b") == 3
    # Queries against the re-fingerprinted chain agree with the originals.
    probe = expr_eq(Sym("a", 16), Const(200))
    assert loaded.feasible_with(probe) == context.feasible_with(probe) is False
    assert loaded.solve_value(Sym("a", 16)) == context.solve_value(Sym("a", 16))
    assert not loaded.unsat and not loaded_child.unsat


def test_solver_context_pickle_cow_isolation():
    """Siblings loaded from one payload keep copy-on-write isolation."""
    context = SolverContext(Solver())
    context.add(make_cmp(CmpKind.ULT, Sym("x", 16), Const(50)))
    sibling_a = context.fork()
    sibling_b = context.fork()

    loaded_a, loaded_b = pickle.loads(pickle.dumps((sibling_a, sibling_b)))
    # Tightening one loaded sibling must not leak into the other.
    loaded_a.add(expr_eq(Sym("x", 16), Const(7)))
    assert loaded_a.assignment_of("x") == 7
    assert loaded_b.assignment_of("x") is None
    assert loaded_b.feasible_with(expr_eq(Sym("x", 16), Const(9)))
    assert not loaded_a.feasible_with(expr_eq(Sym("x", 16), Const(9)))


def test_execution_state_pickle_roundtrip_and_resume():
    """A paused state resumes identically after a pickle round-trip."""
    engine, _ = _make_engine("lpm-patricia")
    stats = engine.run(
        make_searcher("castan"),
        max_states=8,
        stop_at_packet=1,
        max_pending_report=None,
    )
    frontier = stats.paused_states + stats.pending_states
    assert frontier, "expected a non-empty frontier at the packet boundary"

    loaded_engine, loaded_frontier = pickle.loads(pickle.dumps((engine, frontier)))
    for original, loaded in zip(frontier, loaded_frontier):
        assert loaded.sid == original.sid
        assert loaded.current_cost == original.current_cost
        assert loaded.packets_processed == original.packets_processed
        assert loaded.constraints == original.constraints
        # Memory overlays (the NF state carried across packets) are intact.
        assert {
            region: dict(cells) for region, cells in loaded.memory.items()
        } == {region: dict(cells) for region, cells in original.memory.items()}

    continued = engine.run(
        make_searcher("castan"),
        max_states=10,
        initial_states=frontier,
        max_pending_report=None,
    )
    loaded_continued = loaded_engine.run(
        make_searcher("castan"),
        max_states=10,
        initial_states=loaded_frontier,
        max_pending_report=None,
    )
    key = lambda s: (s.sid, s.packets_processed, s.current_cost)
    assert sorted(key(s) for s in continued.completed_states) == sorted(
        key(s) for s in loaded_continued.completed_states
    )
    assert continued.states_explored == loaded_continued.states_explored
    assert continued.forks == loaded_continued.forks


# -- differential: parallel vs sequential --------------------------------------


@pytest.mark.parametrize("nf_name", DIFFERENTIAL_NFS)
def test_portfolio_matches_sequential(nf_name):
    """workers=2 portfolio output is byte-identical to the sequential run."""
    config = CastanConfig(max_states=40, deadline_seconds=None, num_packets=4)
    sequential = PortfolioRunner(config=config, workers=0).run_map((nf_name,))[nf_name]
    parallel = PortfolioRunner(config=config, workers=2).run_map((nf_name,))[nf_name]
    assert _digest(parallel) == _digest(sequential)
    assert parallel.best_state_cost == sequential.best_state_cost
    assert parallel.states_explored == sequential.states_explored


def test_portfolio_merges_in_input_order():
    config = CastanConfig(max_states=30, deadline_seconds=None, num_packets=3)
    results = PortfolioRunner(config=config, workers=2).run(DIFFERENTIAL_NFS)
    assert tuple(result.nf_name for result in results) == DIFFERENTIAL_NFS


@pytest.mark.parametrize("nf_name", DIFFERENTIAL_NFS)
def test_sharded_beam_matches_serial(nf_name):
    """The sharded beam search is invariant under the worker count."""

    def analyze(workers):
        config = CastanConfig(
            max_states=40,
            deadline_seconds=None,
            num_packets=4,
            search_mode="beam",
            parallel_mode="shards",
            workers=workers,
        )
        return Castan(config).analyze(get_nf(nf_name))

    serial = analyze(0)
    parallel = analyze(2)
    assert _digest(parallel) == _digest(serial)
    assert parallel.best_state_cost == serial.best_state_cost
    assert parallel.states_explored == serial.states_explored
    assert parallel.search_rounds == serial.search_rounds


# -- configuration validation --------------------------------------------------


def test_unknown_parallel_mode_rejected():
    config = CastanConfig(parallel_mode="threads")
    with pytest.raises(ValueError, match="parallel_mode"):
        Castan(config).analyze(get_nf("nop"))


def test_shards_require_beam_search():
    config = CastanConfig(parallel_mode="shards", search_mode="monolithic")
    with pytest.raises(ValueError, match="shards"):
        Castan(config).analyze(get_nf("nop"))
