"""End-to-end tests of the CASTAN pipeline: analysis, workload synthesis,
havoc reconciliation, pcap output and adversarial effect on the testbed."""

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.core.workload import make_packet_symbols, packets_from_model, symbol_defaults
from repro.hashing.functions import flow_hash16, lb_flow_key
from repro.net.pcap import read_pcap
from repro.nf.common import HASH_TABLE_BUCKETS, VIP_ADDRESS
from repro.nf.registry import get_nf
from repro.symbex.solver import Model
from repro.testbed.measure import measure_latency
from repro.workloads.generators import make_castan_workload, make_unirand_castan_workload


def quick_config(**overrides) -> CastanConfig:
    defaults = dict(max_states=150, deadline_seconds=8.0, num_packets=6)
    defaults.update(overrides)
    return CastanConfig(**defaults)


class TestWorkloadSymbols:
    def test_packet_symbol_naming_and_widths(self):
        sets = make_packet_symbols(3)
        assert len(sets) == 3
        assert sets[1].symbols["dst_ip"].name == "pkt1.dst_ip"
        assert sets[1].symbols["protocol"].bits == 8

    def test_defaults_produce_distinct_flows(self):
        sets = make_packet_symbols(4)
        defaults = symbol_defaults(sets, {"src_ip": 100, "src_port": 10, "protocol": 17})
        ips = {defaults[s.symbol_name_field] for s in [] } if False else None
        src_ips = [defaults[f"pkt{i}.src_ip"] for i in range(4)]
        assert len(set(src_ips)) == 4

    def test_packets_from_model_uses_model_then_defaults(self):
        sets = make_packet_symbols(2)
        model = Model(values={"pkt0.dst_ip": 0x01020304, "pkt0.protocol": 6})
        packets = packets_from_model(sets, model, {"dst_ip": 0x0A000001, "protocol": 17})
        assert packets[0].dst_ip == 0x01020304 and packets[0].protocol == 6
        assert packets[1].dst_ip == 0x0A000001 and packets[1].protocol == 17


class TestPipeline:
    def test_lpm_direct_contention_workload(self):
        nf = get_nf("lpm-direct")
        result = Castan(quick_config(num_packets=24)).analyze(nf)
        assert result.packet_count == 24
        assert result.unique_flows > 1
        assert result.contention_sets_used > 0
        # The synthesized destinations must map to very few L3 contention
        # sets — that is the whole point of the workload.
        from repro.cache.contention import ContentionSets
        from repro.cache.hierarchy import MemoryHierarchy

        hierarchy = MemoryHierarchy(Castan(quick_config()).config.hierarchy)
        region = nf.module.get_region("dl_table")
        shift = 32 - 18
        keys = {
            hierarchy.oracle_contention_key(region.address_of(p.dst_ip >> shift))
            for p in result.packets
        }
        assert len(keys) <= 3

    def test_lpm_patricia_beats_typical_depth(self):
        nf = get_nf("lpm-patricia")
        result = Castan(quick_config(num_packets=4, max_states=400)).analyze(nf)
        assert result.metrics.max_estimated_cycles_per_packet > 0
        # At least one synthesized packet matches deep (long-prefix) routes.
        deep = [p for p in result.packets if p.dst_ip >> 24 == 10]
        assert deep

    def test_lb_hash_table_collisions_after_reconciliation(self):
        nf = get_nf("lb-hash-table")
        result = Castan(quick_config(num_packets=5, max_states=250)).analyze(nf)
        assert result.havoc_outcome is not None
        assert result.packet_count == 5
        # Reconciled havocs mean the concrete packets really collide in the
        # bucket index; require at least a couple of packets in one bucket.
        buckets = [
            flow_hash16(lb_flow_key(p.src_ip, p.src_port, p.dst_port)) & (HASH_TABLE_BUCKETS - 1)
            for p in result.packets
            if p.dst_ip == VIP_ADDRESS
        ]
        if result.havoc_outcome.reconciled:
            assert len(set(buckets)) < len(buckets)

    def test_lb_unbalanced_tree_costs_grow_per_packet(self):
        nf = get_nf("lb-unbalanced-tree")
        result = Castan(quick_config(num_packets=6, max_states=300)).analyze(nf)
        instructions = result.metrics.instructions_per_packet
        assert instructions[-1] > instructions[0]

    def test_result_pcap_roundtrip(self, tmp_path):
        nf = get_nf("lpm-direct")
        result = Castan(quick_config(num_packets=4)).analyze(nf)
        path = tmp_path / "castan.pcap"
        assert result.write_pcap(path) == result.packet_count
        restored = read_pcap(path)
        assert [p.dst_ip for p in restored] == [p.dst_ip for p in result.packets]

    def test_metrics_report_renders(self):
        nf = get_nf("lpm-direct")
        result = Castan(quick_config(num_packets=3)).analyze(nf)
        report = result.metrics.to_report()
        assert "est.cycles" in report and "havocs reconciled" in report
        assert result.summary().startswith("CASTAN[lpm-direct]")

    def test_searcher_and_cache_model_ablation_options(self):
        nf = get_nf("lpm-patricia")
        castan = Castan(quick_config(num_packets=3, searcher="random", cache_model="none"))
        result = castan.analyze(nf)
        assert result.packet_count >= 1
        assert result.contention_sets_used == 0

    def test_probing_contention_source(self):
        nf = get_nf("lpm-direct")
        config = quick_config(num_packets=4)
        config.contention_source = "probing"
        result = Castan(config).analyze(nf)
        assert result.contention_sets_used >= 1

    def test_red_black_tree_resists_skew(self):
        # CASTAN should NOT find a strongly growing path in the RB tree: the
        # per-packet instruction counts stay within a small factor.
        nf = get_nf("lb-red-black-tree")
        result = Castan(quick_config(num_packets=6, max_states=250)).analyze(nf)
        instructions = [i for i in result.metrics.instructions_per_packet if i > 0]
        assert instructions
        assert max(instructions) <= 4 * min(instructions)


class TestAdversarialEffect:
    def test_castan_workload_hurts_lpm_direct_more_than_unirand_castan(self):
        nf = get_nf("lpm-direct")
        result = Castan(quick_config(num_packets=24)).analyze(nf)
        castan_workload = make_castan_workload(result.packets)
        fair_comparison = make_unirand_castan_workload(nf, castan_workload.flow_count)
        castan_measure = measure_latency(nf, castan_workload, replay_packets=600)
        fair_measure = measure_latency(nf, fair_comparison, replay_packets=600)
        assert (
            castan_measure.counter_summary.median_l3_misses
            >= fair_measure.counter_summary.median_l3_misses
        )
