"""Tests for the symbolic execution engine, searchers, costs and havocs."""

import pytest

from repro.cfg.costs import annotate_costs, render_annotated_cfg
from repro.cfg.icfg import build_icfg
from repro.frontend.compiler import compile_nf
from repro.ir.module import Module
from repro.symbex.engine import SymbolicEngine
from repro.symbex.expr import Const, Sym
from repro.symbex.searcher import (
    BreadthFirstSearcher,
    CastanSearcher,
    DepthFirstSearcher,
    RandomSearcher,
    make_searcher,
)
from repro.symbex.solver import Solver
from repro.symbex.state import StateStatus


def make_module(source, regions=None):
    module = Module("test")
    for name, (length, size, initial) in (regions or {}).items():
        module.add_region(name, length, size, initial=initial)
    compile_nf(module, source, entry="process")
    return module


def packet_symbols(index=0):
    return [
        Sym(f"p{index}.src_ip", 32),
        Sym(f"p{index}.dst_ip", 32),
        Sym(f"p{index}.src_port", 16),
        Sym(f"p{index}.dst_port", 16),
        Sym(f"p{index}.protocol", 8),
    ]


BRANCHY_SOURCE = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17:
        return 0
    cost = 0
    i = 0
    while i < 6:
        if (dst_ip >> i) & 1 == 1:
            cost = cost + table[i]
        i = i + 1
    return cost
"""


class TestICFGAndCosts:
    def test_icfg_nodes_and_call_graph(self):
        module = make_module(
            "def helper(x):\n    return x + 1\n\n"
            "def process(src_ip, dst_ip, src_port, dst_port, protocol):\n"
            "    return helper(src_ip)\n"
        )
        icfg = build_icfg(module)
        assert icfg.total_nodes == module.instruction_count
        assert icfg.call_graph["process"] == {"helper"}
        assert icfg.callees_in_topological_order("process") == ["helper", "process"]

    def test_costs_descend_toward_return(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        annotation = annotate_costs(module, "process")
        cfg = annotation.icfg.cfg_of("process")
        entry_cost = annotation.cost_of(cfg.entry_uid)
        return_cost = min(annotation.cost_of(uid) for uid in cfg.exit_uids)
        assert entry_cost > return_cost > 0

    def test_loop_bound_monotonicity(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        costs = [annotate_costs(module, "process", loop_bound=m).entry_cost("process") for m in (1, 2, 3)]
        assert costs[0] <= costs[1] <= costs[2]
        assert costs[1] > costs[0]  # M=1 hides the loop body

    def test_call_cost_includes_callee(self):
        module = make_module(
            "def helper(x):\n    y = x\n    for i in range(8):\n        y = y + i\n    return y\n\n"
            "def process(src_ip, dst_ip, src_port, dst_port, protocol):\n"
            "    return helper(dst_ip)\n"
        )
        annotation = annotate_costs(module, "process")
        assert annotation.entry_cost("process") > annotation.entry_cost("helper") > 0

    def test_rejects_bad_loop_bound_and_recursion(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        with pytest.raises(ValueError):
            annotate_costs(module, "process", loop_bound=0)
        recursive = make_module(
            "def process(src_ip, dst_ip, src_port, dst_port, protocol):\n"
            "    return process(src_ip, dst_ip, src_port, dst_port, protocol)\n"
        )
        with pytest.raises(ValueError, match="recursive"):
            annotate_costs(recursive, "process")

    def test_render_annotated_cfg(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        annotation = annotate_costs(module, "process")
        text = render_annotated_cfg(annotation, "process")
        assert "potential cost" in text and "while.cond" in text


class TestSearchers:
    def test_castan_searcher_orders_by_priority(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        searcher = CastanSearcher()
        cheap, expensive = engine.make_initial_state(), engine.make_initial_state()
        cheap.priority, expensive.priority = 10, 100
        searcher.add(cheap)
        searcher.add(expensive)
        assert searcher.pop() is expensive

    def test_castan_tie_break_prefers_most_recent(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        searcher = CastanSearcher()
        first, second = engine.make_initial_state(), engine.make_initial_state()
        first.priority = second.priority = 5
        searcher.add(first)
        searcher.add(second)
        assert searcher.pop() is second

    def test_dfs_bfs_random_orders(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        states = [engine.make_initial_state() for _ in range(3)]
        dfs, bfs = DepthFirstSearcher(), BreadthFirstSearcher()
        for state in states:
            dfs.add(state)
            bfs.add(state)
        assert dfs.pop() is states[-1]
        assert bfs.pop() is states[0]
        rnd = RandomSearcher(seed=1)
        for state in states:
            rnd.add(state)
        assert rnd.pop() in states

    def test_make_searcher_names(self):
        for name in ("castan", "dfs", "bfs", "random"):
            assert make_searcher(name) is not None
        with pytest.raises(ValueError):
            make_searcher("astar")


class TestEngine:
    def test_explores_all_paths_and_counts(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {i: 5 for i in range(8)})})
        annotation = annotate_costs(module, "process")
        engine = SymbolicEngine(module, "process", [packet_symbols()], annotation=annotation)
        stats = engine.run(CastanSearcher(), max_states=500)
        assert stats.forks > 0
        assert len(stats.completed_states) >= 2
        best = stats.best_state()
        assert best is not None and best.status is StateStatus.COMPLETED
        assert best.instructions_retired > 0 and best.current_cost > 0

    def test_best_state_is_solvable_and_worst(self):
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {i: 5 for i in range(8)})})
        annotation = annotate_costs(module, "process")
        engine = SymbolicEngine(module, "process", [packet_symbols()], annotation=annotation)
        stats = engine.run(CastanSearcher(), max_states=500)
        best = stats.best_state()
        result = Solver().check(best.constraints, defaults={"p0.protocol": 17})
        assert result.is_sat
        # The worst path sets all six tested bits of dst_ip.
        assert bin(result.model["p0.dst_ip"] & 0x3F).count("1") == 6

    def test_state_threads_memory_across_packets(self):
        source = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    seen = counter[0]
    counter[0] = seen + 1
    return seen
"""
        module = make_module(source, regions={"counter": (1, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols(0), packet_symbols(1), packet_symbols(2)])
        stats = engine.run(CastanSearcher(), max_states=10)
        best = stats.best_state()
        assert [a.value for a in best.packet_actions] == [0, 1, 2]
        assert len(best.packet_metrics) == 3

    def test_concrete_branches_do_not_fork(self):
        source = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    total = 0
    for i in range(4):
        total = total + i
    return total
"""
        module = make_module(source)
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        stats = engine.run(CastanSearcher(), max_states=50)
        assert stats.forks == 0
        assert len(stats.completed_states) == 1
        assert stats.completed_states[0].packet_actions[0] == Const(6)

    def test_havoc_creates_records_and_fresh_symbols(self):
        source = """
def hash_fn(key):
    return (key * 2654435761) & 0xFFFF

def process(src_ip, dst_ip, src_port, dst_port, protocol):
    h = castan_havoc(dst_ip, hash_fn(dst_ip))
    return slots[h & 7]
"""
        module = make_module(source, regions={"slots": (8, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols()], hash_output_bits={"hash_fn": 16})
        stats = engine.run(CastanSearcher(), max_states=50)
        best = stats.best_state()
        assert len(best.havoc_records) == 1
        record = best.havoc_records[0]
        assert record.hash_function == "hash_fn"
        assert record.symbol.bits == 16
        assert str(record.key_expr) == "p0.dst_ip"

    def test_infeasible_paths_are_pruned(self):
        source = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol == 17:
        if protocol == 6:
            return 99
        return 1
    return 0
"""
        module = make_module(source)
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        stats = engine.run(CastanSearcher(), max_states=100)
        actions = {state.packet_actions[0].value for state in stats.completed_states}
        assert 99 not in actions

    def test_loop_iteration_budget_guard(self):
        # A loop whose bound is symbolic: the engine must not run away.
        source = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    i = 0
    while i < dst_port:
        i = i + 1
    return i
"""
        module = make_module(source)
        engine = SymbolicEngine(module, "process", [packet_symbols()], max_loop_iterations=16)
        stats = engine.run(CastanSearcher(), max_states=60)
        assert stats.states_explored <= 60
        assert stats.completed_states  # some paths completed despite the guard

    def test_arity_check_guards_on_packet_args(self):
        # Regression: the arity check must only run when packet args exist
        # (the original expression mixed `!=` and a ternary without parens).
        module = make_module(BRANCHY_SOURCE, regions={"table": (8, 8, {})})
        engine = SymbolicEngine(module, "process", [])  # no packets: fine
        assert engine.packet_args == []
        with pytest.raises(ValueError, match="packet argument count"):
            SymbolicEngine(module, "process", [[Const(1), Const(2)]])

    def test_out_of_bounds_concrete_index_marks_error(self):
        source = """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    return table[100]
"""
        module = make_module(source, regions={"table": (4, 8, {})})
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        stats = engine.run(CastanSearcher(), max_states=10)
        assert stats.error_states == 1
