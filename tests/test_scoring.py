"""Tests for the adversarial-traffic scoring layer (``repro.scoring``).

Three gates, mirroring the layer's three claims:

* **serialization** — signature predicates are interned DAGs; the flat
  node-table JSON form must round-trip to the *same* interned node, stay
  linear in unique nodes (the unrolled flow hash would be exponential as a
  tree), and keep content hashes stable;
* **soundness** (property-based) — after priming the NF with a signature's
  recorded workload, packets satisfying the predicate incur replay cost at
  or above the published threshold while in-class background packets stay
  below it;
* **tier identity** (differential) — the vectorized scorer's verdict masks
  are byte-identical to the scalar reference on pcap-sourced and
  hypothesis-generated batches, including empty / single-packet /
  window-boundary shapes.
"""

from __future__ import annotations

import json
import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.hashing.functions import flow_hash16
from repro.ir.instructions import CmpKind
from repro.net.packet import make_udp_packet
from repro.net.pcap import packets_to_pcap_bytes
from repro.nf.registry import get_nf
from repro.scoring import (
    AdversarialSignature,
    SignatureSet,
    StreamScorer,
    distill_signatures,
    score_batch_fields,
    signature_set_from_json,
    verdict_bytes,
)
from repro.scoring.distill import _mine_matching_columns
from repro.scoring.replay import PrimedReplay, flow_fields
from repro.scoring.signatures import (
    FIELD_ORDER,
    field_sym,
    flow_hash16_expr,
    signature_from_dict,
)
from repro.scoring.stream import (
    fields_to_columns,
    iter_pcap_batches,
    packets_to_fields,
    random_flow_fields,
)
from repro.symbex.expr import (
    HAVE_NUMPY,
    Const,
    Sym,
    expr_from_dict,
    expr_to_dict,
    make_cmp,
)

SMOKE = {"max_states": 40, "deadline_seconds": None, "search_mode": "beam"}

#: NFs the soundness suite distills at smoke scale: a chained hash table
#: (bucket collisions), an open-addressing ring (arc / exact-hash
#: collisions) and the patricia LPM (field clustering, no hash).
SOUNDNESS_NFS = ("nat-hash-table", "lb-hash-ring", "lpm-patricia")


@pytest.fixture(scope="module", params=SOUNDNESS_NFS)
def distilled(request):
    """One smoke-scale analysis + distillation per soundness NF."""
    nf = get_nf(request.param)
    config = CastanConfig(**SMOKE)
    result = Castan(config).analyze(nf, num_packets=3)
    signature_set = distill_signatures(nf, result, config=config)
    return nf, config, result, signature_set


@pytest.fixture(scope="module")
def nat_distilled():
    """The NAT's signatures (includes the unrolled-hash predicate)."""
    nf = get_nf("nat-hash-table")
    config = CastanConfig(**SMOKE)
    result = Castan(config).analyze(nf, num_packets=3)
    signature_set = distill_signatures(nf, result, config=config)
    assert signature_set.signatures, "smoke NAT run must distill signatures"
    return nf, signature_set


def _flow_of(fields: dict) -> tuple[int, int, int, int, int]:
    return tuple(fields[name] for name in FIELD_ORDER)


# -- serialization -------------------------------------------------------------


class TestSerialization:
    def test_flow_hash_expr_matches_concrete_hash(self):
        expr = flow_hash16_expr(Sym("key", bits=64))
        from repro.symbex.expr import dag_evaluator

        evaluator = dag_evaluator(expr)
        rng = random.Random(11)
        for _ in range(64):
            key = rng.getrandbits(64)
            assert evaluator({"key": key}) == flow_hash16(key)

    def test_expr_dag_serialization_is_linear_in_unique_nodes(self):
        # The unrolled hash references each round's intermediate several
        # times; a tree rendering would have ~4^depth entries.  The node
        # table must stay at the unique-node count.
        data = expr_to_dict(flow_hash16_expr(Sym("key", bits=64)))
        assert data["k"] == "expr-dag-v1"
        assert len(data["nodes"]) < 200
        # ... and survive a JSON round trip to the same interned node.
        clone = expr_from_dict(json.loads(json.dumps(data)))
        assert clone is flow_hash16_expr(Sym("key", bits=64))

    def test_expr_round_trip_reinterns(self):
        pred = make_cmp(CmpKind.EQ, field_sym("dst_port"), Const(443))
        assert expr_from_dict(expr_to_dict(pred)) is pred

    def test_expr_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            expr_from_dict({"k": "const", "v": 1})  # old nested format
        with pytest.raises(ValueError):
            expr_from_dict({"k": "expr-dag-v1", "nodes": [], "root": 0})

    def test_expr_from_dict_rejects_forward_references(self):
        data = {
            "k": "expr-dag-v1",
            "nodes": [
                {"k": "bin", "op": "ADD", "lhs": 1, "rhs": 1},
                {"k": "const", "v": 1},
            ],
            "root": 0,
        }
        with pytest.raises(ValueError, match="forward or out-of-range"):
            expr_from_dict(data)

    def test_signature_set_json_round_trip(self, nat_distilled):
        _nf, signature_set = nat_distilled
        clone = signature_set_from_json(signature_set.to_json())
        assert clone.labels == signature_set.labels
        for original, rebuilt in zip(signature_set, clone):
            assert rebuilt.predicate is original.predicate
            assert rebuilt.content_hash() == original.content_hash()
            assert rebuilt.priming_flows == original.priming_flows
        assert clone.content_hash() == signature_set.content_hash()
        assert clone.store_key() == signature_set.store_key()

    def test_signature_version_gate(self, nat_distilled):
        _nf, signature_set = nat_distilled
        data = signature_set.signatures[0].to_dict()
        data["version"] = "castan-signature-v0"
        with pytest.raises(ValueError, match="version"):
            signature_from_dict(data)

    def test_store_signature_shelf_round_trip(self, nat_distilled, tmp_path):
        from repro.service.store import ResultStore

        _nf, signature_set = nat_distilled
        store = ResultStore(tmp_path)
        key = store.put_signatures(signature_set)
        assert key == signature_set.store_key()
        assert store.signature_keys() == [key]
        assert store.keys() == []  # the sig shelf never pollutes results
        restored = store.get_signatures(key)
        assert restored is not None
        assert restored.content_hash() == signature_set.content_hash()
        assert store.get_signatures("0" * 64) is None


# -- soundness (property-based) ------------------------------------------------

#: Per-(nf, label) calibration state, built once — PrimedReplay priming and
#: pool mining are far too slow to repeat per hypothesis example.
_CALIBRATION_CACHE: dict = {}


def _calibration_state(nf, signature: AdversarialSignature):
    key = (nf.name, signature.label)
    if key in _CALIBRATION_CACHE:
        return _CALIBRATION_CACHE[key]
    rng = random.Random(1234)
    priming = set(signature.priming_flows)

    matching: list[tuple] = []

    def accept(flow):
        if flow not in priming and signature.matches(flow_fields(flow)):
            matching.append(flow)

    if HAVE_NUMPY:
        shim = SimpleNamespace(predicate=signature.predicate)
        _mine_matching_columns(
            nf, shim, accept, lambda: 8 - len(matching), rng, batches=24
        )
    # Scalar top-up / numpy-free path: scan the traffic class directly.
    for fields in random_flow_fields(nf, 20_000, rng):
        if len(matching) >= 8:
            break
        accept(_flow_of(fields))

    background: list[tuple] = []
    for fields in random_flow_fields(nf, 50_000, rng):
        flow = _flow_of(fields)
        if flow in priming or signature.matches(fields):
            continue
        background.append(flow)
        if len(background) >= 32:
            break

    state = (PrimedReplay(nf, signature.priming_flows), matching, background)
    _CALIBRATION_CACHE[key] = state
    return state


@given(data=st.data())
@settings(max_examples=20, deadline=None, derandomize=True)
def test_signature_soundness(distilled, data):
    """The published claim, held per signature on the primed NF:

    matching packet  -> replay cost >= threshold_cycles
    background packet -> replay cost <  threshold_cycles
    """
    nf, _config, _result, signature_set = distilled
    if not signature_set.signatures:
        pytest.skip(f"{nf.name}: no calibrated signature at smoke scale")
    signature = data.draw(st.sampled_from(signature_set.signatures))
    replay, matching, background = _calibration_state(nf, signature)

    if matching:
        flow = data.draw(st.sampled_from(matching))
        cost = replay.probe_cost(flow)
        assert cost >= signature.threshold_cycles, (
            f"{nf.name} [{signature.label}]: matching flow {flow} cost {cost} "
            f"< threshold {signature.threshold_cycles}"
        )
    assert background, f"{nf.name} [{signature.label}]: no background flows mined"
    flow = data.draw(st.sampled_from(background))
    cost = replay.probe_cost(flow)
    assert cost < signature.threshold_cycles, (
        f"{nf.name} [{signature.label}]: background flow {flow} cost {cost} "
        f">= threshold {signature.threshold_cycles}"
    )


def test_thresholds_separate_calibration_costs(distilled):
    """The stored calibration numbers themselves must bracket the threshold."""
    nf, _config, _result, signature_set = distilled
    if not signature_set.signatures:
        pytest.skip(f"{nf.name}: no calibrated signature at smoke scale")
    for signature in signature_set:
        assert signature.baseline_cycles < signature.threshold_cycles
        assert signature.threshold_cycles <= signature.matching_cycles
        assert signature.priming_flows  # the claim is about a primed NF


# -- tier identity (differential) ---------------------------------------------

_FIELD_MAX = {
    "src_ip": 2**32 - 1,
    "dst_ip": 2**32 - 1,
    "src_port": 2**16 - 1,
    "dst_port": 2**16 - 1,
    "protocol": 2**8 - 1,
}

_batch_strategy = st.lists(
    st.fixed_dictionaries(
        {name: st.integers(0, _FIELD_MAX[name]) for name in FIELD_ORDER}
    ),
    min_size=0,
    max_size=40,
)


def _assert_tiers_agree(signatures, fields):
    from repro.scoring.scorer import score_batch_columns

    scalar = score_batch_fields(signatures, fields)
    columns = fields_to_columns(fields)
    vector = score_batch_columns(signatures, columns)
    assert verdict_bytes(vector) == verdict_bytes(scalar)
    return scalar


@pytest.mark.skipif(not HAVE_NUMPY, reason="vector tier needs numpy")
class TestTierIdentity:
    @given(fields=_batch_strategy)
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_hypothesis_batches(self, nat_distilled, fields):
        _nf, signature_set = nat_distilled
        _assert_tiers_agree(signature_set.signatures, fields)

    def test_pcap_batches(self, nat_distilled):
        nf, signature_set = nat_distilled
        # A capture mixing known-matching flows (the signatures' own
        # priming workloads) with in-class noise, so both verdict outcomes
        # are exercised; batch size 7 forces ragged batch boundaries.
        rng = random.Random(5)
        flows = [f for s in signature_set for f in s.priming_flows[:20]]
        flows += [_flow_of(f) for f in random_flow_fields(nf, 50, rng)]
        packets = [make_udp_packet(*flow[:4]) for flow in flows]
        blob = packets_to_pcap_bytes(packets)

        import io

        total_matched = 0
        for batch in iter_pcap_batches(io.BytesIO(blob), batch_size=7):
            fields = packets_to_fields(batch)
            masks = _assert_tiers_agree(signature_set.signatures, fields)
            total_matched += sum(1 for mask in masks if mask)
        assert total_matched > 0  # the capture must exercise the match path

    @pytest.mark.parametrize("size", [0, 1, 7, 8, 9])
    def test_boundary_sizes(self, nat_distilled, size):
        nf, signature_set = nat_distilled
        rng = random.Random(size)
        fields = random_flow_fields(nf, size, rng)
        _assert_tiers_agree(signature_set.signatures, fields)

    def test_stream_scorer_tier_equality(self, nat_distilled):
        """Column-fed and field-fed scorers report identical windows."""
        nf, signature_set = nat_distilled
        rng = random.Random(9)
        fields = random_flow_fields(nf, 64, rng)
        # Seed guaranteed matches so windows carry offenders.
        for index, flow in enumerate(signature_set.signatures[0].priming_flows[:6]):
            fields[index * 10] = flow_fields(flow)

        def run(feeder):
            scorer = StreamScorer(
                signature_set.signatures, window_size=10, top_k=3
            )
            windows = []
            for start in range(0, len(fields), 8):  # 8 straddles the window
                windows.extend(scorer.feed(feeder(fields[start : start + 8])))
            trailing = scorer.finish()
            if trailing is not None:
                windows.append(trailing)
            return [w.to_dict() for w in windows], scorer.summary()

        scalar_windows, scalar_summary = run(lambda batch: batch)
        vector_windows, vector_summary = run(fields_to_columns)
        assert vector_windows == scalar_windows
        assert vector_summary == scalar_summary
        assert scalar_summary["matched"] > 0


# -- scorer plumbing -----------------------------------------------------------


class TestScorerPlumbing:
    def test_max_signatures_enforced(self):
        pred = make_cmp(CmpKind.EQ, field_sym("dst_port"), Const(1))
        sigs = [
            AdversarialSignature(
                nf_name="x", kind="field-cluster", label=f"s{i}",
                predicate=pred, threshold_cycles=1,
            )
            for i in range(65)
        ]
        with pytest.raises(ValueError, match="at most 64"):
            StreamScorer(sigs)

    def test_env_knobs_validated(self, monkeypatch):
        from repro.scoring.scorer import ScorerOptions

        monkeypatch.setenv("REPRO_SCORE_BATCH", "4096")
        monkeypatch.setenv("REPRO_SCORE_WINDOW", "123")
        monkeypatch.setenv("REPRO_SCORE_TOPK", "2")
        options = ScorerOptions()
        assert (options.batch_size, options.window_size, options.top_k) == (
            4096, 123, 2,
        )
        monkeypatch.setenv("REPRO_SCORE_WINDOW", "0")
        with pytest.raises(ValueError, match="REPRO_SCORE_WINDOW"):
            ScorerOptions()
        monkeypatch.setenv("REPRO_SCORE_WINDOW", "many")
        with pytest.raises(ValueError, match="REPRO_SCORE_WINDOW"):
            ScorerOptions()

    def test_iter_pcap_batches_rejects_bad_batch_size(self):
        import io

        blob = packets_to_pcap_bytes([make_udp_packet(1, 2, 3, 4)])
        with pytest.raises(ValueError):
            list(iter_pcap_batches(io.BytesIO(blob), batch_size=0))

    def test_verdict_bytes_list_rendering(self):
        assert verdict_bytes([1, 0, 2**63]) == (
            b"\x01" + b"\x00" * 7 + b"\x00" * 8 + b"\x00" * 7 + b"\x80"
        )
        assert verdict_bytes([]) == b""
