"""Exec-tier equivalence (interp / compiled / vector), and block-compiler units.

The block compiler (``repro.symbex.blockc``), the concolic fast path and
the vectorized frontier tier (``repro.symbex.vexec``) must all be
*observationally identical* to the reference interpreter: same synthesized
workloads, same costs, same path counts, same per-packet metrics, same
fork order.  The differential below drives every evaluation NF through
every ``exec_mode`` at smoke scale and compares everything the pipeline
reports against the interpreter's output.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.core.workload import make_packet_symbols, symbol_defaults, workload_digest
from repro.nf.registry import EVALUATION_NF_NAMES, get_nf
from repro.symbex.blockc import compiled_module
from repro.symbex.engine import SymbolicEngine
from repro.symbex.searcher import CastanSearcher
from repro.symbex.state import ShadowAssignment

SMOKE = dict(max_states=60, num_packets=5, deadline_seconds=None)

_MODES = ("interp", "compiled", "vector")

#: The fast tiers, each compared against the "interp" reference.
_FAST_MODES = ("compiled", "vector")


@pytest.fixture(scope="module")
def mode_results():
    """One smoke-scale analysis of every evaluation NF per exec mode."""
    results = {}
    for mode in _MODES:
        per_nf = {}
        for name in EVALUATION_NF_NAMES:
            config = CastanConfig(exec_mode=mode, **SMOKE)
            per_nf[name] = Castan(config).analyze(get_nf(name))
        results[mode] = per_nf
    return results


class TestExecTierDifferential:
    """Smoke-scale differential across all evaluation NFs and exec tiers."""

    def test_covers_all_evaluation_nfs(self, mode_results):
        assert len(EVALUATION_NF_NAMES) == 17
        for mode in _MODES:
            assert set(mode_results[mode]) == set(EVALUATION_NF_NAMES)

    @pytest.mark.parametrize("mode", _FAST_MODES)
    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_workloads_byte_identical(self, mode_results, name, mode):
        interp = mode_results["interp"][name]
        fast = mode_results[mode][name]
        assert workload_digest(interp.packets) == workload_digest(fast.packets)

    @pytest.mark.parametrize("mode", _FAST_MODES)
    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_costs_and_path_counts_identical(self, mode_results, name, mode):
        interp = mode_results["interp"][name]
        fast = mode_results[mode][name]
        assert interp.best_state_cost == fast.best_state_cost
        assert interp.states_explored == fast.states_explored
        assert interp.forks == fast.forks
        assert interp.completed_paths == fast.completed_paths
        assert interp.solver_status == fast.solver_status

    @pytest.mark.parametrize("mode", _FAST_MODES)
    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_per_packet_metrics_identical(self, mode_results, name, mode):
        # PathMetrics is a dataclass: == compares every per-packet series,
        # including instruction counts — so fused-step charging (and the
        # vector tier's deferred buffer application) must agree with
        # per-instruction charging exactly.
        assert mode_results["interp"][name].metrics == mode_results[mode][name].metrics


def _make_engine(nf_name: str, exec_mode: str, num_packets: int = 2, **kwargs) -> SymbolicEngine:
    nf = get_nf(nf_name)
    packet_sets = make_packet_symbols(num_packets)
    return SymbolicEngine(
        module=nf.module,
        entry=nf.entry,
        packet_args=[ps.args for ps in packet_sets],
        defaults=symbol_defaults(packet_sets, nf.packet_defaults),
        hash_output_bits=nf.hash_output_bits,
        exec_mode=exec_mode,
        **kwargs,
    )


def _run_stats(engine: SymbolicEngine, **kwargs):
    import itertools

    from repro.symbex.state import ExecutionState

    # Rebase the process-global state-id counter (as the shard runner does)
    # so sids — and therefore fresh havoc-symbol names — line up exactly
    # between the two modes' runs.
    ExecutionState._ids = itertools.count(0)
    return engine.run(CastanSearcher(), max_states=40, **kwargs)


class TestEngineLevelEquivalence:
    """SymbexStats equivalence at the engine API, below the Castan pipeline."""

    @pytest.mark.parametrize("nf_name", ["lpm-patricia", "nat-hash-table", "dpi-trie"])
    def test_symbex_stats_identical(self, nf_name):
        stats = {}
        for mode in _MODES:
            stats[mode] = _run_stats(_make_engine(nf_name, mode))
        a = stats["interp"]
        for mode in _FAST_MODES:
            b = stats[mode]
            assert a.states_explored == b.states_explored, mode
            assert a.instructions_executed == b.instructions_executed, mode
            assert a.forks == b.forks, mode
            assert a.infeasible_states == b.infeasible_states, mode
            assert a.error_states == b.error_states, mode
            assert [s.sid for s in a.completed_states] == [
                s.sid for s in b.completed_states
            ], mode
            assert [s.current_cost for s in a.completed_states] == [
                s.current_cost for s in b.completed_states
            ], mode
            assert [(s.sid, s.current_cost) for s in a.pending_states] == [
                (s.sid, s.current_cost) for s in b.pending_states
            ], mode

    def test_instruction_budget_fallback_matches_interpreter(self):
        """A tiny per-state budget errors at the same instruction in every mode.

        Budgets below the vector tier's buffered run lengths also exercise
        the budget-edge lane peel (``n > max_instructions`` at apply time).
        """
        for budget in (1, 3, 7, 19):
            stats = {}
            for mode in _MODES:
                engine = _make_engine("lpm-patricia", mode)
                stats[mode] = _run_stats(engine, max_instructions_per_state=budget)
            a = stats["interp"]
            for mode in _FAST_MODES:
                b = stats[mode]
                assert a.error_states == b.error_states, f"{mode} budget={budget}"
                assert a.instructions_executed == b.instructions_executed, (
                    f"{mode} budget={budget}"
                )
                assert a.states_explored == b.states_explored, f"{mode} budget={budget}"

    def test_rejects_unknown_exec_mode(self):
        with pytest.raises(ValueError, match="exec_mode"):
            _make_engine("lpm-patricia", "jit")

    def test_engine_pickle_roundtrip_recompiles(self):
        """Compiled closures never pickle; the table is rebuilt on load."""
        engine = _make_engine("lpm-patricia", "compiled")
        assert engine._compiled_blocks is not None
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.exec_mode == "compiled"
        assert clone._compiled_blocks is not None
        stats = _run_stats(clone)
        assert stats.states_explored > 0

    def test_compiled_module_cache_is_per_identity(self):
        nf = get_nf("lpm-patricia")
        costs = CastanConfig().cycle_costs
        first = compiled_module(nf.module, costs)
        assert compiled_module(nf.module, costs) is first


class TestConcolicShadow:
    def test_shadow_missing_symbols_read_zero(self):
        shadow = ShadowAssignment({"a": 7})
        assert shadow["a"] == 7
        assert shadow["never-seen"] == 0

    def test_shadow_seeded_and_invalidated(self):
        from repro.symbex.expr import Const, Sym, expr_eq

        engine = _make_engine("lpm-patricia", "compiled")
        state = engine.make_initial_state()
        assert state.shadow is not None and state.shadow_valid
        name = next(iter(state.shadow))
        satisfied = expr_eq(Sym(name, bits=32), Const(state.shadow[name]))
        state.add_constraint(satisfied)
        assert state.shadow_valid  # still a witness
        violated = expr_eq(Sym(name, bits=32), Const((state.shadow[name] + 1) & 0xFFFFFFFF))
        state.add_constraint(violated)
        assert not state.shadow_valid  # one-way invalidation
        child = state.fork()
        assert child.shadow is state.shadow and not child.shadow_valid

    def test_interp_mode_has_no_shadow(self):
        engine = _make_engine("lpm-patricia", "interp")
        state = engine.make_initial_state()
        assert state.shadow is None and not state.shadow_valid


class TestCacheBatchReplay:
    def test_default_batch_replays_in_order_and_aborts(self):
        from repro.cache.model import CacheModel

        replayed = []

        class Recorder(CacheModel):
            pass

        def execute_one(model, plan):
            replayed.append(plan)
            return plan != "stop"

        Recorder().on_access_batch(["a", "b", "stop", "never"], execute_one)
        assert replayed == ["a", "b", "stop"]


class TestVectorLanePeeling:
    """Unit tests for the vector tier's lane-peel and group-abort edges.

    ``lpm-patricia``'s entry block starts with a 4-instruction fused
    arithmetic run, so two fresh initial states always form one group.
    """

    def _grouped_pair(self):
        engine = _make_engine("lpm-patricia", "vector")
        assert engine._vex is not None
        first, second = engine.make_initial_state(), engine.make_initial_state()
        engine._vex.build_buffers([first, second])
        assert first.vex_buffer is not None and second.vex_buffer is not None
        return engine, first, second

    def test_seed_grouping_buffers_fused_run(self):
        engine, first, _second = self._grouped_pair()
        vex = engine._vex
        assert vex.stats.groups == 1
        assert vex.stats.lanes_buffered == 2
        _key, kind, overlay, plan, _hint = first.vex_buffer
        assert kind == "fused"
        assert plan.n == 4
        assert overlay  # the precomputed register delta is non-empty

    def test_apply_consumes_buffer_and_charges_fused_totals(self):
        engine, first, _second = self._grouped_pair()
        plan = first.vex_buffer[3]
        cost_before = first.current_cost
        consumed, mem_row = engine._vex.apply(engine, first, max_instructions=10**9)
        assert (consumed, mem_row) == (plan.n, None)
        assert first.vex_buffer is None
        assert first.current_cost == cost_before + plan.cycles
        assert first._frames[-1].index == plan.next_index
        assert engine._vex.stats.lanes_applied == 1

    def test_budget_edge_peels_lane(self):
        """``n > max_instructions`` at apply time hands the lane back."""
        engine, first, _second = self._grouped_pair()
        plan = first.vex_buffer[3]
        index_before = first._frames[-1].index
        consumed, mem_row = engine._vex.apply(engine, first, max_instructions=plan.n - 1)
        assert (consumed, mem_row) == (0, None)
        assert first.vex_buffer is None  # buffer dropped, not re-queued
        assert first._frames[-1].index == index_before  # state untouched
        assert engine._vex.stats.lanes_peeled == 1
        assert engine._vex.stats.lanes_applied == 0

    def test_stale_key_peels_lane(self):
        """A state that moved since grouping must not apply its buffer."""
        engine, first, _second = self._grouped_pair()
        first._frames[-1].index += 1  # simulate e.g. a beam resume advancing it
        consumed, mem_row = engine._vex.apply(engine, first, max_instructions=10**9)
        assert (consumed, mem_row) == (0, None)
        assert first.vex_buffer is None
        assert engine._vex.stats.lanes_peeled == 1

    def test_group_computation_failure_aborts_whole_group(self, monkeypatch):
        engine = _make_engine("lpm-patricia", "vector")
        vex = engine._vex

        def boom(plan, lanes):
            raise KeyError("undefined register")

        monkeypatch.setattr(vex, "_compute_fused", boom)
        first, second = engine.make_initial_state(), engine.make_initial_state()
        vex.build_buffers([first, second])
        assert first.vex_buffer is None and second.vex_buffer is None
        assert vex.stats.groups_aborted == 1
        assert vex.stats.groups == 0 and vex.stats.lanes_buffered == 0

    def test_full_run_engages_vector_tier(self):
        """A real vector-mode run groups lanes and hits the columnar path."""
        engine = _make_engine("dpi-trie", "vector")
        _run_stats(engine)
        stats = engine._vex.stats
        assert stats.groups > 0
        assert stats.lanes_applied > 0
        assert stats.columnar_ops > 0 and stats.columnar_lanes > 0
        # Every consumed buffer was buffered first (rest are still pending).
        consumed = stats.lanes_applied + stats.lanes_peeled + stats.mem_rows
        assert consumed <= stats.lanes_buffered

    def test_missing_numpy_degrades_to_compiled(self, monkeypatch):
        """Without numpy, vector mode warns once and runs the compiled tier."""
        from repro.symbex import vexec

        monkeypatch.setattr(vexec, "HAVE_NUMPY", False)
        monkeypatch.setattr(vexec, "_WARNED_NUMPY_MISSING", False)
        with pytest.warns(RuntimeWarning, match="numpy"):
            degraded = _make_engine("lpm-patricia", "vector")
        assert degraded._vex is None
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the warning is one-time only
            _make_engine("lpm-patricia", "vector")
        baseline = _make_engine("lpm-patricia", "compiled")
        a = _run_stats(degraded)
        b = _run_stats(baseline)
        assert a.states_explored == b.states_explored
        assert a.instructions_executed == b.instructions_executed
        assert [s.current_cost for s in a.completed_states] == [
            s.current_cost for s in b.completed_states
        ]


class TestExprFastPathInvariants:
    def test_cached_hash_and_slots(self):
        from repro.symbex.expr import BinExpr, Const, Sym, make_binop
        from repro.ir.instructions import BinOpKind

        expr = make_binop(BinOpKind.ADD, Sym("h.x", bits=16), Const(3))
        assert hash(expr) == expr._hash
        for node in (expr, Const(3), Sym("h.x", bits=16)):
            assert not hasattr(node, "__dict__")  # __slots__ everywhere
        # Interning: structural equality is identity.
        assert make_binop(BinOpKind.ADD, Sym("h.x", bits=16), Const(3)) is expr
        assert isinstance(expr, BinExpr)

    def test_pickle_reduce_roundtrip_reinterns(self):
        from repro.symbex.expr import Const, Sym, make_binop, make_cmp, make_select
        from repro.ir.instructions import BinOpKind, CmpKind

        expr = make_select(
            make_cmp(CmpKind.ULT, Sym("p.s", bits=16), Const(99)),
            make_binop(BinOpKind.XOR, Sym("p.s", bits=16), Const(0x5A)),
            Const(1),
        )
        assert pickle.loads(pickle.dumps(expr)) is expr

    def test_reduce_expr_matches_slow_form(self):
        from repro.symbex.expr import (
            Const,
            Sym,
            make_binop,
            make_cmp,
            reduce_concrete,
            reduce_expr,
            simplify,
            substitute,
        )
        from repro.ir.instructions import BinOpKind, CmpKind

        x, y, z = Sym("rx", bits=16), Sym("ry", bits=32), Sym("rz", bits=8)
        exprs = [
            make_binop(BinOpKind.ADD, make_binop(BinOpKind.MUL, x, Const(3)), y),
            make_cmp(CmpKind.ULT, make_binop(BinOpKind.XOR, x, z), Const(77)),
            make_binop(BinOpKind.AND, y, make_binop(BinOpKind.SHL, z, Const(4))),
            make_cmp(CmpKind.EQ, make_binop(BinOpKind.OR, x, make_binop(BinOpKind.SHL, y, Const(16))), Const(0x1234_0042)),
        ]
        assignments = [
            {},
            {"rx": 5},
            {"rx": 5, "ry": 1 << 20},
            {"rx": 5, "ry": 1 << 20, "rz": 9},
            {"ry": 0},
            {"rz": 255},
        ]
        for expr in exprs:
            for assignment in assignments:
                slow = simplify(substitute(expr, assignment))
                assert reduce_expr(expr, assignment) is slow
                concrete = reduce_concrete(expr, assignment)
                if concrete is not None:
                    assert Const(concrete) is slow

    def test_deep_expression_falls_back_to_closure_evaluator(self):
        from repro.symbex.expr import BinExpr, Sym, compiled_evaluator
        from repro.ir.instructions import BinOpKind

        # A doubling DAG: shared subtree referenced twice per level would
        # explode codegen source; the expanded-size guard must route it to
        # closure trees.  (Evaluation itself is still exponential in the
        # DAG depth — same as evaluate() — so keep the tower small.)
        from repro.symbex.expr import _CODEGEN_MAX_EXPANDED, _expanded_size

        node = Sym("deep", bits=16)
        for _ in range(20):
            node = BinExpr(BinOpKind.ADD, node, node)
        assert _expanded_size(node) > _CODEGEN_MAX_EXPANDED
        ev = compiled_evaluator(node)
        assert ev({"deep": 1}) == 1 << 20

    def test_engine_seed_states_resume_identically_between_modes(self):
        """Paused beam states resume the same way in every exec mode."""
        import itertools

        from repro.symbex.state import ExecutionState

        stats = {}
        for mode in _MODES:
            engine = _make_engine("nat-hash-table", mode, num_packets=3)
            ExecutionState._ids = itertools.count(0)
            first = engine.run(CastanSearcher(), max_states=8, stop_at_packet=1)
            seeds = [s for s in first.paused_states + first.pending_states]
            ExecutionState._ids = itertools.count(1000)
            second = engine.run(CastanSearcher(), max_states=12, initial_states=seeds,
                                stop_at_packet=2)
            stats[mode] = (first, second)
        ia, ib = stats["interp"]
        for mode in _FAST_MODES:
            fa, fb = stats[mode]
            assert ia.states_explored == fa.states_explored, mode
            assert ia.instructions_executed == fa.instructions_executed, mode
            assert ib.states_explored == fb.states_explored, mode
            assert ib.instructions_executed == fb.instructions_executed, mode
            assert [s.sid for s in ib.paused_states] == [
                s.sid for s in fb.paused_states
            ], mode


class TestParallelIdentityAllModes:
    """workers=0 vs workers=2 byte-identity holds in every exec mode."""

    @pytest.mark.parametrize("mode", _MODES)
    def test_sharded_beam_identity(self, mode):
        digests = {}
        for workers in (0, 2):
            config = CastanConfig(
                max_states=40,
                num_packets=3,
                deadline_seconds=None,
                search_mode="beam",
                parallel_mode="shards",
                workers=workers,
                exec_mode=mode,
            )
            result = Castan(config).analyze(get_nf("lpm-patricia"))
            digests[workers] = (workload_digest(result.packets), result.best_state_cost)
        assert digests[0] == digests[2]


@pytest.fixture(scope="module")
def nobatch_results():
    """Vector-mode smoke analyses of every evaluation NF, batching OFF."""
    per_nf = {}
    for name in EVALUATION_NF_NAMES:
        config = CastanConfig(exec_mode="vector", branch_batching=False, **SMOKE)
        per_nf[name] = Castan(config).analyze(get_nf(name))
    return per_nf


class TestBranchBatchingDifferential:
    """Group branch resolution is output-invariant: vector mode with
    ``branch_batching=False`` must reproduce the batched run byte-for-byte
    (and, transitively via :class:`TestExecTierDifferential`, the interp
    and compiled tiers too)."""

    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_outputs_identical_with_batching_off(self, mode_results, nobatch_results, name):
        on = mode_results["vector"][name]
        off = nobatch_results[name]
        assert workload_digest(on.packets) == workload_digest(off.packets)
        assert on.best_state_cost == off.best_state_cost
        assert on.states_explored == off.states_explored
        assert on.forks == off.forks
        assert on.completed_paths == off.completed_paths
        assert on.solver_status == off.solver_status
        assert on.metrics == off.metrics

    def test_sharded_beam_identity_across_workers_and_batching(self):
        """workers 0 vs 2 × batching on/off: all four runs byte-identical."""
        digests = {}
        for batching in (True, False):
            for workers in (0, 2):
                config = CastanConfig(
                    max_states=40,
                    num_packets=3,
                    deadline_seconds=None,
                    search_mode="beam",
                    parallel_mode="shards",
                    workers=workers,
                    exec_mode="vector",
                    branch_batching=batching,
                )
                result = Castan(config).analyze(get_nf("nat-hash-table"))
                digests[(batching, workers)] = (
                    workload_digest(result.packets),
                    result.best_state_cost,
                )
        assert len(set(digests.values())) == 1, digests


class TestGroupBranchResolution:
    """Unit tests for cross-lane branch batching (dedup classes + hints).

    ``nat-hash-table``'s entry block ends its first fused run at the
    symbolic protocol check, so two fresh initial states always form one
    branch-carrying group.
    """

    def _branch_grouped_pair(self, **engine_kwargs):
        engine = _make_engine("nat-hash-table", "vector", **engine_kwargs)
        assert engine._vex is not None
        first, second = engine.make_initial_state(), engine.make_initial_state()
        engine._vex.build_buffers([first, second])
        assert first.vex_buffer is not None and second.vex_buffer is not None
        return engine, first, second

    def test_fresh_pair_groups_at_branch_with_hints(self):
        _engine, first, second = self._branch_grouped_pair()
        for state in (first, second):
            _key, kind, _overlay, plan, hint = state.vex_buffer
            assert kind == "fused"
            assert plan.branch is not None
            cond, feasible_true, feasible_false = hint
            assert feasible_true or feasible_false  # a live lane has a side
        # Lanes at the same program point share the *interned* condition —
        # the identity the engine's hint validation relies on.
        assert first.vex_buffer[4][0] is second.vex_buffer[4][0]

    def test_batching_off_buffers_without_hints(self):
        _engine, first, second = self._branch_grouped_pair(branch_batching=False)
        assert first.vex_buffer[4] is None and second.vex_buffer[4] is None

    def test_identical_classes_query_exactly_once_per_group(self, monkeypatch):
        from repro.symbex.incremental import CONTEXT_STATS, SolverContext

        engine = _make_engine("nat-hash-table", "vector")
        first, second = engine.make_initial_state(), engine.make_initial_state()
        calls = []
        original = SolverContext.feasible_with

        def counting(self, extra):
            calls.append((self._set_id, id(extra)))
            return original(self, extra)

        monkeypatch.setattr(SolverContext, "feasible_with", counting)
        queries0 = CONTEXT_STATS.group_queries
        hits0 = CONTEXT_STATS.group_dedup_hits
        engine._vex.build_buffers([first, second])
        # Both fresh lanes share the empty constraint-chain fingerprint and
        # the interned condition: one representative query, one fanned-out
        # verdict.
        assert len(calls) == 1
        assert CONTEXT_STATS.group_queries - queries0 == 1
        assert CONTEXT_STATS.group_dedup_hits - hits0 == 1
        assert first.vex_buffer[4] == second.vex_buffer[4]

    def test_distinct_fingerprints_never_share_a_verdict(self, monkeypatch):
        from repro.symbex.expr import Const, Sym, expr_ne
        from repro.symbex.incremental import CONTEXT_STATS, SolverContext

        engine = _make_engine("nat-hash-table", "vector")
        first, second = engine.make_initial_state(), engine.make_initial_state()
        # Diverge the second lane's constraint-chain fingerprint with a
        # constraint that is true under the shadow defaults (so both lanes
        # stay live and shadow-consistent).
        second.solver_context.add(expr_ne(Sym("pkt0.protocol", 8), Const(200)))
        assert first.solver_context._set_id != second.solver_context._set_id
        calls = []
        original = SolverContext.feasible_with

        def counting(self, extra):
            calls.append((self._set_id, id(extra)))
            return original(self, extra)

        monkeypatch.setattr(SolverContext, "feasible_with", counting)
        queries0 = CONTEXT_STATS.group_queries
        hits0 = CONTEXT_STATS.group_dedup_hits
        engine._vex.build_buffers([first, second])
        # Same interned condition, different fingerprints: two classes, two
        # representative queries, no cross-class fan-out.
        assert len(calls) == 2
        assert calls[0][0] != calls[1][0]
        assert CONTEXT_STATS.group_queries - queries0 == 2
        assert CONTEXT_STATS.group_dedup_hits - hits0 == 0

    def test_apply_hands_hint_to_engine(self):
        engine, first, _second = self._branch_grouped_pair()
        hint = first.vex_buffer[4]
        engine._vex.apply(engine, first, max_instructions=10**9)
        state, cond, verdicts = engine._branch_hints
        assert state is first
        assert cond is hint[0]
        assert verdicts == (hint[1], hint[2])

    def test_stats_thread_group_counters(self):
        on = _make_engine("nat-hash-table", "vector")
        stats_on = _run_stats(on)
        assert stats_on.group_queries > 0
        off = _make_engine("nat-hash-table", "vector", branch_batching=False)
        stats_off = _run_stats(off)
        assert stats_off.group_queries == 0
        assert stats_off.group_dedup_hits == 0
        assert stats_off.column_branch_resolutions == 0
        # The run itself is identical either way.
        assert stats_on.states_explored == stats_off.states_explored
        assert stats_on.instructions_executed == stats_off.instructions_executed
        assert stats_on.forks == stats_off.forks
        assert [s.sid for s in stats_on.completed_states] == [
            s.sid for s in stats_off.completed_states
        ]
