"""Compiled-vs-interpreted engine equivalence, and block-compiler units.

The block compiler (``repro.symbex.blockc``) plus the concolic fast path
must be *observationally identical* to the reference interpreter: same
synthesized workloads, same costs, same path counts, same per-packet
metrics, same fork order.  The differential below drives every evaluation
NF through both ``exec_mode``s at smoke scale and compares everything the
pipeline reports.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.core.workload import make_packet_symbols, symbol_defaults, workload_digest
from repro.nf.registry import EVALUATION_NF_NAMES, get_nf
from repro.symbex.blockc import compiled_module
from repro.symbex.engine import SymbolicEngine
from repro.symbex.searcher import CastanSearcher
from repro.symbex.state import ShadowAssignment

SMOKE = dict(max_states=60, num_packets=5, deadline_seconds=None)

_MODES = ("interp", "compiled")


@pytest.fixture(scope="module")
def mode_results():
    """One smoke-scale analysis of every evaluation NF per exec mode."""
    results = {}
    for mode in _MODES:
        per_nf = {}
        for name in EVALUATION_NF_NAMES:
            config = CastanConfig(exec_mode=mode, **SMOKE)
            per_nf[name] = Castan(config).analyze(get_nf(name))
        results[mode] = per_nf
    return results


class TestCompiledInterpretedDifferential:
    """Smoke-scale differential across all evaluation NFs."""

    def test_covers_all_evaluation_nfs(self, mode_results):
        assert len(EVALUATION_NF_NAMES) == 15
        for mode in _MODES:
            assert set(mode_results[mode]) == set(EVALUATION_NF_NAMES)

    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_workloads_byte_identical(self, mode_results, name):
        interp = mode_results["interp"][name]
        compiled = mode_results["compiled"][name]
        assert workload_digest(interp.packets) == workload_digest(compiled.packets)

    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_costs_and_path_counts_identical(self, mode_results, name):
        interp = mode_results["interp"][name]
        compiled = mode_results["compiled"][name]
        assert interp.best_state_cost == compiled.best_state_cost
        assert interp.states_explored == compiled.states_explored
        assert interp.forks == compiled.forks
        assert interp.completed_paths == compiled.completed_paths
        assert interp.solver_status == compiled.solver_status

    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_per_packet_metrics_identical(self, mode_results, name):
        # PathMetrics is a dataclass: == compares every per-packet series,
        # including instruction counts — so fused-step charging must agree
        # with per-instruction charging exactly.
        assert mode_results["interp"][name].metrics == mode_results["compiled"][name].metrics


def _make_engine(nf_name: str, exec_mode: str, num_packets: int = 2, **kwargs) -> SymbolicEngine:
    nf = get_nf(nf_name)
    packet_sets = make_packet_symbols(num_packets)
    return SymbolicEngine(
        module=nf.module,
        entry=nf.entry,
        packet_args=[ps.args for ps in packet_sets],
        defaults=symbol_defaults(packet_sets, nf.packet_defaults),
        hash_output_bits=nf.hash_output_bits,
        exec_mode=exec_mode,
        **kwargs,
    )


def _run_stats(engine: SymbolicEngine, **kwargs):
    import itertools

    from repro.symbex.state import ExecutionState

    # Rebase the process-global state-id counter (as the shard runner does)
    # so sids — and therefore fresh havoc-symbol names — line up exactly
    # between the two modes' runs.
    ExecutionState._ids = itertools.count(0)
    return engine.run(CastanSearcher(), max_states=40, **kwargs)


class TestEngineLevelEquivalence:
    """SymbexStats equivalence at the engine API, below the Castan pipeline."""

    @pytest.mark.parametrize("nf_name", ["lpm-patricia", "nat-hash-table", "dpi-trie"])
    def test_symbex_stats_identical(self, nf_name):
        stats = {}
        for mode in _MODES:
            stats[mode] = _run_stats(_make_engine(nf_name, mode))
        a, b = stats["interp"], stats["compiled"]
        assert a.states_explored == b.states_explored
        assert a.instructions_executed == b.instructions_executed
        assert a.forks == b.forks
        assert a.infeasible_states == b.infeasible_states
        assert a.error_states == b.error_states
        assert [s.sid for s in a.completed_states] == [s.sid for s in b.completed_states]
        assert [s.current_cost for s in a.completed_states] == [
            s.current_cost for s in b.completed_states
        ]
        assert [(s.sid, s.current_cost) for s in a.pending_states] == [
            (s.sid, s.current_cost) for s in b.pending_states
        ]

    def test_instruction_budget_fallback_matches_interpreter(self):
        """A tiny per-state budget errors at the same instruction in both modes."""
        for budget in (1, 3, 7, 19):
            stats = {}
            for mode in _MODES:
                engine = _make_engine("lpm-patricia", mode)
                stats[mode] = _run_stats(engine, max_instructions_per_state=budget)
            a, b = stats["interp"], stats["compiled"]
            assert a.error_states == b.error_states, f"budget={budget}"
            assert a.instructions_executed == b.instructions_executed, f"budget={budget}"
            assert a.states_explored == b.states_explored, f"budget={budget}"

    def test_rejects_unknown_exec_mode(self):
        with pytest.raises(ValueError, match="exec_mode"):
            _make_engine("lpm-patricia", "jit")

    def test_engine_pickle_roundtrip_recompiles(self):
        """Compiled closures never pickle; the table is rebuilt on load."""
        engine = _make_engine("lpm-patricia", "compiled")
        assert engine._compiled_blocks is not None
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.exec_mode == "compiled"
        assert clone._compiled_blocks is not None
        stats = _run_stats(clone)
        assert stats.states_explored > 0

    def test_compiled_module_cache_is_per_identity(self):
        nf = get_nf("lpm-patricia")
        costs = CastanConfig().cycle_costs
        first = compiled_module(nf.module, costs)
        assert compiled_module(nf.module, costs) is first


class TestConcolicShadow:
    def test_shadow_missing_symbols_read_zero(self):
        shadow = ShadowAssignment({"a": 7})
        assert shadow["a"] == 7
        assert shadow["never-seen"] == 0

    def test_shadow_seeded_and_invalidated(self):
        from repro.symbex.expr import Const, Sym, expr_eq

        engine = _make_engine("lpm-patricia", "compiled")
        state = engine.make_initial_state()
        assert state.shadow is not None and state.shadow_valid
        name = next(iter(state.shadow))
        satisfied = expr_eq(Sym(name, bits=32), Const(state.shadow[name]))
        state.add_constraint(satisfied)
        assert state.shadow_valid  # still a witness
        violated = expr_eq(Sym(name, bits=32), Const((state.shadow[name] + 1) & 0xFFFFFFFF))
        state.add_constraint(violated)
        assert not state.shadow_valid  # one-way invalidation
        child = state.fork()
        assert child.shadow is state.shadow and not child.shadow_valid

    def test_interp_mode_has_no_shadow(self):
        engine = _make_engine("lpm-patricia", "interp")
        state = engine.make_initial_state()
        assert state.shadow is None and not state.shadow_valid


class TestCacheBatchReplay:
    def test_default_batch_replays_in_order_and_aborts(self):
        from repro.cache.model import CacheModel

        replayed = []

        class Recorder(CacheModel):
            pass

        def execute_one(model, plan):
            replayed.append(plan)
            return plan != "stop"

        Recorder().on_access_batch(["a", "b", "stop", "never"], execute_one)
        assert replayed == ["a", "b", "stop"]


class TestExprFastPathInvariants:
    def test_cached_hash_and_slots(self):
        from repro.symbex.expr import BinExpr, Const, Sym, make_binop
        from repro.ir.instructions import BinOpKind

        expr = make_binop(BinOpKind.ADD, Sym("h.x", bits=16), Const(3))
        assert hash(expr) == expr._hash
        for node in (expr, Const(3), Sym("h.x", bits=16)):
            assert not hasattr(node, "__dict__")  # __slots__ everywhere
        # Interning: structural equality is identity.
        assert make_binop(BinOpKind.ADD, Sym("h.x", bits=16), Const(3)) is expr
        assert isinstance(expr, BinExpr)

    def test_pickle_reduce_roundtrip_reinterns(self):
        from repro.symbex.expr import Const, Sym, make_binop, make_cmp, make_select
        from repro.ir.instructions import BinOpKind, CmpKind

        expr = make_select(
            make_cmp(CmpKind.ULT, Sym("p.s", bits=16), Const(99)),
            make_binop(BinOpKind.XOR, Sym("p.s", bits=16), Const(0x5A)),
            Const(1),
        )
        assert pickle.loads(pickle.dumps(expr)) is expr

    def test_reduce_expr_matches_slow_form(self):
        from repro.symbex.expr import (
            Const,
            Sym,
            make_binop,
            make_cmp,
            reduce_concrete,
            reduce_expr,
            simplify,
            substitute,
        )
        from repro.ir.instructions import BinOpKind, CmpKind

        x, y, z = Sym("rx", bits=16), Sym("ry", bits=32), Sym("rz", bits=8)
        exprs = [
            make_binop(BinOpKind.ADD, make_binop(BinOpKind.MUL, x, Const(3)), y),
            make_cmp(CmpKind.ULT, make_binop(BinOpKind.XOR, x, z), Const(77)),
            make_binop(BinOpKind.AND, y, make_binop(BinOpKind.SHL, z, Const(4))),
            make_cmp(CmpKind.EQ, make_binop(BinOpKind.OR, x, make_binop(BinOpKind.SHL, y, Const(16))), Const(0x1234_0042)),
        ]
        assignments = [
            {},
            {"rx": 5},
            {"rx": 5, "ry": 1 << 20},
            {"rx": 5, "ry": 1 << 20, "rz": 9},
            {"ry": 0},
            {"rz": 255},
        ]
        for expr in exprs:
            for assignment in assignments:
                slow = simplify(substitute(expr, assignment))
                assert reduce_expr(expr, assignment) is slow
                concrete = reduce_concrete(expr, assignment)
                if concrete is not None:
                    assert Const(concrete) is slow

    def test_deep_expression_falls_back_to_closure_evaluator(self):
        from repro.symbex.expr import BinExpr, Sym, compiled_evaluator
        from repro.ir.instructions import BinOpKind

        # A doubling DAG: shared subtree referenced twice per level would
        # explode codegen source; the expanded-size guard must route it to
        # closure trees.  (Evaluation itself is still exponential in the
        # DAG depth — same as evaluate() — so keep the tower small.)
        from repro.symbex.expr import _CODEGEN_MAX_EXPANDED, _expanded_size

        node = Sym("deep", bits=16)
        for _ in range(20):
            node = BinExpr(BinOpKind.ADD, node, node)
        assert _expanded_size(node) > _CODEGEN_MAX_EXPANDED
        ev = compiled_evaluator(node)
        assert ev({"deep": 1}) == 1 << 20

    def test_engine_seed_states_resume_identically_between_modes(self):
        """Paused beam states resume the same way in both exec modes."""
        import itertools

        from repro.symbex.state import ExecutionState

        stats = {}
        for mode in _MODES:
            engine = _make_engine("nat-hash-table", mode, num_packets=3)
            ExecutionState._ids = itertools.count(0)
            first = engine.run(CastanSearcher(), max_states=8, stop_at_packet=1)
            seeds = [s for s in first.paused_states + first.pending_states]
            ExecutionState._ids = itertools.count(1000)
            second = engine.run(CastanSearcher(), max_states=12, initial_states=seeds,
                                stop_at_packet=2)
            stats[mode] = (first, second)
        (ia, ib), (ca, cb) = stats["interp"], stats["compiled"]
        assert ia.states_explored == ca.states_explored
        assert ia.instructions_executed == ca.instructions_executed
        assert ib.states_explored == cb.states_explored
        assert ib.instructions_executed == cb.instructions_executed
        assert [s.sid for s in ib.paused_states] == [s.sid for s in cb.paused_states]


class TestParallelIdentityBothModes:
    """workers=0 vs workers=2 byte-identity holds in both exec modes."""

    @pytest.mark.parametrize("mode", _MODES)
    def test_sharded_beam_identity(self, mode):
        digests = {}
        for workers in (0, 2):
            config = CastanConfig(
                max_states=40,
                num_packets=3,
                deadline_seconds=None,
                search_mode="beam",
                parallel_mode="shards",
                workers=workers,
                exec_mode=mode,
            )
            result = Castan(config).analyze(get_nf("lpm-patricia"))
            digests[workers] = (workload_digest(result.packets), result.best_state_cost)
        assert digests[0] == digests[2]
