"""Tests for ``CastanConfig`` content addressing (repro.core.config).

The service result store keys analyses by ``content_hash()``, so the hash
must be *stable* (same config → same hash across processes, field orders
and construction paths) and *complete* (any field change → different
hash).  A golden hash pins the canonical form itself: if canonicalization
drifts, this file fails before any stored result can be mis-served.
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import CONFIG_HASH_VERSION, CastanConfig

#: sha256 of the canonical form of the all-defaults config.  If this test
#: fails after an intentional change to CastanConfig (new field, changed
#: default, different canonical form), bump CONFIG_HASH_VERSION and repin —
#: old stored service results must not be addressable by the new form.
GOLDEN_DEFAULT_HASH = "cf55986c9c6dd6ddd41381ee1008ee99e37cbd3941b265589075f90e46477c93"


def _mutated(value):
    """A value guaranteed to differ from ``value`` but stay canonicalizable."""
    if isinstance(value, bool):  # bool first: bool is an int subclass
        return not value
    if isinstance(value, (int, float)):
        # doubling keeps power-of-two geometry fields valid (HierarchyConfig
        # validates them in __post_init__) and still always differs
        return value * 2 if value else 1
    if isinstance(value, str):
        return value + "-mutated"
    if value is None:
        return 7
    if isinstance(value, dict):
        return {**value, "mutated": 1}
    if isinstance(value, (list, tuple)):
        return type(value)([*value, 1])
    if dataclasses.is_dataclass(value):
        first = dataclasses.fields(value)[0]
        return dataclasses.replace(value, **{first.name: _mutated(getattr(value, first.name))})
    raise TypeError(f"no mutation rule for {value!r}")


def test_golden_default_hash():
    assert CastanConfig().content_hash() == GOLDEN_DEFAULT_HASH


def test_hash_is_deterministic_within_process():
    assert CastanConfig().content_hash() == CastanConfig().content_hash()
    custom = dict(max_states=123, search_mode="beam", seed=42)
    assert CastanConfig(**custom).content_hash() == CastanConfig(**custom).content_hash()


def test_hash_is_stable_across_processes():
    """No dict-ordering / hash-randomization / id() leakage into the hash."""
    src = Path(__file__).resolve().parent.parent / "src"
    script = (
        "from repro.core.config import CastanConfig;"
        "print(CastanConfig().content_hash());"
        "print(CastanConfig(max_states=99, search_mode='beam').content_hash())"
    )
    lines = []
    for _ in range(2):
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "random", "PATH": ""},
            capture_output=True,
            text=True,
            check=True,
        )
        lines.append(out.stdout.split())
    assert lines[0] == lines[1]
    assert lines[0][0] == GOLDEN_DEFAULT_HASH
    assert lines[0][1] == CastanConfig(max_states=99, search_mode="beam").content_hash()


@pytest.mark.parametrize(
    "field", [f.name for f in dataclasses.fields(CastanConfig)]
)
def test_every_field_changes_the_hash(field):
    base = CastanConfig()
    changed = dataclasses.replace(base, **{field: _mutated(getattr(base, field))})
    assert changed.content_hash() != base.content_hash(), field


def test_nested_fields_change_the_hash():
    """Deep mutations (hierarchy geometry, cycle costs) are not flattened away."""
    base = CastanConfig()
    for nested_name in ("hierarchy", "cycle_costs"):
        nested = getattr(base, nested_name)
        for sub in dataclasses.fields(nested):
            mutated = dataclasses.replace(nested, **{sub.name: _mutated(getattr(nested, sub.name))})
            changed = dataclasses.replace(base, **{nested_name: mutated})
            assert changed.content_hash() != base.content_hash(), f"{nested_name}.{sub.name}"


def test_canonical_dict_round_trips_through_from_dict():
    config = CastanConfig(max_states=77, search_mode="beam", beam_width=5)
    rebuilt = CastanConfig.from_dict(config.to_canonical_dict())
    assert rebuilt == config
    assert rebuilt.content_hash() == config.content_hash()


def test_from_dict_is_key_order_invariant():
    canonical = CastanConfig(max_states=55).to_canonical_dict()
    reversed_order = dict(reversed(list(canonical.items())))
    assert list(reversed_order) != list(canonical)  # the orders really differ
    a = CastanConfig.from_dict(canonical)
    b = CastanConfig.from_dict(reversed_order)
    assert a.content_hash() == b.content_hash()


def test_from_dict_rejects_unknown_knobs():
    with pytest.raises(ValueError, match="max_statez"):
        CastanConfig.from_dict({"max_statez": 40})
    # the error names the known fields so a typo is self-correcting
    with pytest.raises(ValueError, match="max_states"):
        CastanConfig.from_dict({"max_statez": 40})


def test_partial_from_dict_overrides_on_defaults():
    config = CastanConfig.from_dict({"max_states": 40, "deadline_seconds": None})
    assert config.max_states == 40
    assert config.deadline_seconds is None
    assert config.search_mode == CastanConfig().search_mode


def test_version_tag_is_part_of_the_hash():
    """The golden hash covers the version tag (bumping it must repoint keys)."""
    assert CONFIG_HASH_VERSION == "castan-config-v2"
