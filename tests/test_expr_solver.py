"""Tests for symbolic expressions and the constraint solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.instructions import BinOpKind, CmpKind
from repro.symbex.expr import (
    BinExpr,
    CmpExpr,
    Const,
    Sym,
    evaluate,
    expr_eq,
    expr_ne,
    expr_not,
    make_binop,
    make_cmp,
    make_select,
    simplify,
    substitute,
    symbols_of,
)
from repro.symbex.solver import Solver

X32 = Sym("x", 32)
Y32 = Sym("y", 32)
P8 = Sym("p", 8)


class TestExpressions:
    def test_constant_folding(self):
        assert make_binop(BinOpKind.ADD, Const(2), Const(3)) == Const(5)
        assert make_binop(BinOpKind.MUL, Const(7), Const(0)) == Const(0)
        assert make_cmp(CmpKind.ULT, Const(2), Const(3)) == Const(1)

    @pytest.mark.parametrize(
        "op,identity",
        [(BinOpKind.ADD, 0), (BinOpKind.OR, 0), (BinOpKind.XOR, 0), (BinOpKind.MUL, 1)],
    )
    def test_identity_simplification(self, op, identity):
        assert make_binop(op, X32, Const(identity)) is X32

    def test_mask_to_width_is_noop(self):
        assert make_binop(BinOpKind.AND, X32, Const(0xFFFFFFFF)) is X32

    def test_nested_shift_collapse(self):
        nested = make_binop(BinOpKind.LSHR, make_binop(BinOpKind.LSHR, X32, Const(3)), Const(2))
        assert isinstance(nested, BinExpr)
        assert nested.rhs == Const(5)

    def test_compare_of_compare_flattens(self):
        inner = make_cmp(CmpKind.EQ, X32, Const(5))
        assert make_cmp(CmpKind.NE, inner, Const(0)) is inner
        negated = make_cmp(CmpKind.EQ, inner, Const(0))
        assert isinstance(negated, CmpExpr) and negated.pred is CmpKind.NE

    def test_expr_not_negates_predicates(self):
        assert expr_not(make_cmp(CmpKind.ULT, X32, Const(5))).pred is CmpKind.UGE

    def test_select_simplification(self):
        assert make_select(Const(1), X32, Y32) is X32
        assert make_select(Const(0), X32, Y32) is Y32
        assert make_select(make_cmp(CmpKind.EQ, X32, Const(1)), Y32, Y32) is Y32

    def test_symbols_of(self):
        expr = make_binop(BinOpKind.ADD, X32, make_binop(BinOpKind.MUL, Y32, Const(2)))
        assert symbols_of(expr) == {X32, Y32}

    def test_symbol_width_bounds_comparison(self):
        assert make_cmp(CmpKind.EQ, P8, Const(300)) == Const(0)
        assert make_cmp(CmpKind.ULT, P8, Const(300)) == Const(1)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_evaluate_matches_python(self, a, b):
        expr = make_binop(
            BinOpKind.XOR,
            make_binop(BinOpKind.ADD, X32, Const(b)),
            make_binop(BinOpKind.LSHR, X32, Const(7)),
        )
        expected = (((a + b) & ((1 << 64) - 1)) ^ (a >> 7)) & ((1 << 64) - 1)
        assert evaluate(expr, {"x": a}) == expected

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_substitute_then_evaluate_is_stable(self, a):
        expr = make_binop(BinOpKind.ADD, make_binop(BinOpKind.MUL, X32, Const(3)), Y32)
        partially = substitute(expr, {"x": a})
        assert symbols_of(partially) == {Y32}
        assert evaluate(partially, {"y": 5}) == evaluate(expr, {"x": a, "y": 5})

    def test_simplify_is_idempotent(self):
        expr = make_cmp(CmpKind.EQ, make_binop(BinOpKind.AND, X32, Const(0xFF)), Const(3))
        assert simplify(simplify(expr)) == simplify(expr)


class TestSolver:
    def setup_method(self):
        self.solver = Solver()

    def _check_sat(self, constraints, **kwargs):
        result = self.solver.check(constraints, **kwargs)
        assert result.is_sat, result.reason
        for constraint in constraints:
            assert evaluate(constraint, result.model.values) == 1
        return result.model

    def test_simple_equality(self):
        model = self._check_sat([expr_eq(X32, Const(42))])
        assert model["x"] == 42

    def test_unsat_equalities(self):
        result = self.solver.check([expr_eq(X32, Const(1)), expr_eq(X32, Const(2))])
        assert result.is_unsat

    def test_masked_shift_bits(self):
        constraints = [
            expr_eq(make_binop(BinOpKind.AND, make_binop(BinOpKind.LSHR, X32, Const(k)), Const(1)), Const(1))
            for k in range(8)
        ]
        model = self._check_sat(constraints)
        assert model["x"] & 0xFF == 0xFF

    def test_conflicting_bits_unsat(self):
        bit = make_binop(BinOpKind.AND, make_binop(BinOpKind.LSHR, X32, Const(3)), Const(1))
        result = self.solver.check([expr_eq(bit, Const(1)), expr_eq(bit, Const(0))])
        assert result.is_unsat

    def test_shift_index_inversion(self):
        # The LPM direct-lookup shape: (dst_ip >> 14) == index.
        model = self._check_sat([expr_eq(make_binop(BinOpKind.LSHR, X32, Const(14)), Const(0x2A5))])
        assert model["x"] >> 14 == 0x2A5

    def test_affine_inversion(self):
        expr = make_binop(BinOpKind.ADD, make_binop(BinOpKind.MUL, X32, Const(5)), Const(7))
        model = self._check_sat([expr_eq(expr, Const(5 * 1234 + 7))])
        assert model["x"] == 1234

    def test_xor_inversion(self):
        model = self._check_sat([expr_eq(make_binop(BinOpKind.XOR, X32, Const(0xDEAD)), Const(0xBEEF))])
        assert model["x"] == 0xDEAD ^ 0xBEEF

    def test_disjoint_field_decomposition(self):
        # Packed flow keys: src | (sport << 32) | (dport << 48).
        sport = Sym("sport", 16)
        dport = Sym("dport", 16)
        key = make_binop(
            BinOpKind.OR,
            make_binop(BinOpKind.OR, X32, make_binop(BinOpKind.SHL, sport, Const(32))),
            make_binop(BinOpKind.SHL, dport, Const(48)),
        )
        target = (0x0A000001) | (1234 << 32) | (80 << 48)
        model = self._check_sat([expr_eq(key, Const(target))])
        assert model["x"] == 0x0A000001
        assert model["sport"] == 1234
        assert model["dport"] == 80

    def test_inequalities_and_exclusions(self):
        model = self._check_sat(
            [
                make_cmp(CmpKind.UGE, X32, Const(10)),
                make_cmp(CmpKind.ULE, X32, Const(12)),
                expr_ne(X32, Const(10)),
                expr_ne(X32, Const(12)),
            ]
        )
        assert model["x"] == 11

    def test_empty_interval_unsat(self):
        result = self.solver.check(
            [make_cmp(CmpKind.ULT, X32, Const(5)), make_cmp(CmpKind.UGT, X32, Const(9))]
        )
        assert result.is_unsat

    def test_multi_symbol_inequality(self):
        model = self._check_sat(
            [expr_eq(X32, Const(7)), make_cmp(CmpKind.ULT, X32, Y32), expr_ne(Y32, Const(8))]
        )
        assert model["y"] > 7 and model["y"] != 8

    def test_defaults_fill_unconstrained_symbols(self):
        result = self.solver.check([expr_eq(X32, Const(1))], defaults={"y": 99, "x": 5})
        assert result.is_sat
        # x is constrained, y falls back to its default when queried.
        assert result.model.get("y", 99) == 99

    def test_urem_candidate(self):
        # Hash-bucket shape: hv % 4096 == 77.
        hv = Sym("hv", 16)
        model = self._check_sat([expr_eq(make_binop(BinOpKind.UREM, hv, Const(4096)), Const(77))])
        assert model["hv"] % 4096 == 77

    def test_quick_feasible_accepts_and_rejects(self):
        assert self.solver.quick_feasible([expr_eq(X32, Const(3))])
        assert not self.solver.quick_feasible([expr_eq(X32, Const(3)), expr_eq(X32, Const(4))])
        assert not self.solver.quick_feasible([Const(0)])

    def test_protocol_width_constraint(self):
        result = self.solver.check([expr_eq(P8, Const(1000))])
        assert not result.is_sat

    def test_invert_overflow_returns_none(self):
        # Regression: inverting (p << 4) == 0xF000 gives p == 0xF00, which
        # does not fit the 8-bit symbol; _invert must report "no solution in
        # width" rather than hand back an unmasked out-of-range value.
        shifted = make_binop(BinOpKind.SHL, P8, Const(4))
        assert self.solver._invert(shifted, 0xF000) is None
        # In-range inversions still work through the same entry point.
        assert self.solver._invert(shifted, 0x70) == (P8, 0x7)
        # And the constraint itself is correctly judged unsatisfiable.
        result = self.solver.check([expr_eq(shifted, Const(0xF000))])
        assert not result.is_sat

    @given(st.integers(0, 2**32 - 1), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_inversion_roundtrip_property(self, value, shift):
        expr = make_binop(BinOpKind.LSHR, X32, Const(shift))
        target = value >> shift
        model = self.solver.check([expr_eq(expr, Const(target))])
        assert model.is_sat
        assert model.model["x"] >> shift == target
