"""Tests for the NFIL IR, the verifier, the frontend compiler and the
concrete interpreter (semantics checked against plain Python)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.compiler import compile_nf
from repro.frontend.errors import NFCompileError
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import BinOpKind, CmpKind
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.verify import IRVerificationError, verify_module
from repro.perf.interpreter import ConcreteInterpreter, ExecutionError


def compile_and_run(source, args, regions=None, entry="process", constants=None):
    module = Module("test")
    for name, (length, size, initial) in (regions or {}).items():
        module.add_region(name, length, size, initial=initial)
    compile_nf(module, source, constants=constants, entry=entry)
    interpreter = ConcreteInterpreter(module, entry)
    return interpreter.call_function(entry, args), interpreter


class TestBuilderAndVerifier:
    def test_builder_produces_verifiable_function(self):
        module = Module("m")
        builder = FunctionBuilder("f", ["x"])
        entry = builder.block("entry")
        builder.switch_to(entry)
        total = builder.add(builder.param("x"), 1)
        builder.ret(total)
        module.add_function(builder.build())
        verify_module(module)

    def test_verifier_rejects_missing_terminator(self):
        module = Module("m")
        builder = FunctionBuilder("f", [])
        builder.switch_to(builder.block("entry"))
        builder.add(1, 2)
        module.add_function(builder.build())
        with pytest.raises(IRVerificationError, match="missing terminator"):
            verify_module(module)

    def test_verifier_rejects_unknown_region(self):
        module = Module("m")
        builder = FunctionBuilder("f", [])
        builder.switch_to(builder.block("entry"))
        builder.load("nowhere", 0)
        builder.ret(0)
        module.add_function(builder.build())
        with pytest.raises(IRVerificationError, match="undeclared region"):
            verify_module(module)

    def test_verifier_rejects_unknown_call(self):
        module = Module("m")
        builder = FunctionBuilder("f", [])
        builder.switch_to(builder.block("entry"))
        builder.call("ghost", [])
        builder.ret(0)
        module.add_function(builder.build())
        with pytest.raises(IRVerificationError, match="unknown function"):
            verify_module(module)

    def test_verifier_rejects_bad_branch_target(self):
        module = Module("m")
        builder = FunctionBuilder("f", [])
        builder.switch_to(builder.block("entry"))
        builder.jump("nowhere")
        module.add_function(builder.build())
        with pytest.raises(IRVerificationError, match="unknown block"):
            verify_module(module)

    def test_printer_mentions_regions_and_functions(self):
        module = Module("m")
        module.add_region("tbl", 4, 8)
        builder = FunctionBuilder("f", ["x"])
        builder.switch_to(builder.block("entry"))
        builder.ret(builder.param("x"))
        module.add_function(builder.build())
        text = print_module(module)
        assert "@tbl" in text and "func @f" in text

    def test_region_addressing(self):
        module = Module("m")
        region = module.add_region("tbl", 16, 8)
        assert region.index_of(region.address_of(7)) == 7
        assert region.contains_address(region.address_of(15))
        assert not region.contains_address(region.address_of(16))

    def test_regions_do_not_overlap(self):
        module = Module("m")
        a = module.add_region("a", 1024, 64)
        b = module.add_region("b", 1024, 64)
        assert a.base_address + a.size_bytes <= b.base_address


class TestCompilerSemantics:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("a + b", 30),
            ("a - b", (10 - 20) % (1 << 64)),
            ("a * b", 200),
            ("b // a", 2),
            ("b % 7", 6),
            ("a & b", 10 & 20),
            ("a | b", 10 | 20),
            ("a ^ b", 10 ^ 20),
            ("a << 3", 80),
            ("b >> 2", 5),
            ("min(a, b)", 10),
            ("max(a, b)", 20),
        ],
    )
    def test_expressions(self, expression, expected):
        value, _ = compile_and_run(f"def process(a, b):\n    return {expression}\n", [10, 20])
        assert value == expected

    @pytest.mark.parametrize(
        "condition,arg,expected",
        [
            ("x == 5", 5, 1),
            ("x == 5", 6, 0),
            ("x != 5", 6, 1),
            ("x < 10", 3, 1),
            ("x >= 10", 10, 1),
            ("x > 2 and x < 8", 5, 1),
            ("x > 2 and x < 8", 9, 0),
            ("x < 2 or x > 8", 9, 1),
            ("not x == 3", 4, 1),
        ],
    )
    def test_conditions(self, condition, arg, expected):
        source = f"def process(x):\n    if {condition}:\n        return 1\n    return 0\n"
        value, _ = compile_and_run(source, [arg])
        assert value == expected

    def test_while_loop_and_augassign(self):
        source = """
def process(n):
    total = 0
    i = 0
    while i < n:
        total += i
        i += 1
    return total
"""
        value, _ = compile_and_run(source, [10])
        assert value == sum(range(10))

    def test_for_range_with_break_and_continue(self):
        source = """
def process(n):
    total = 0
    for i in range(n):
        if i == 3:
            continue
        if i == 7:
            break
        total += i
    return total
"""
        value, _ = compile_and_run(source, [100])
        assert value == sum(i for i in range(7) if i != 3)

    def test_for_range_two_arguments(self):
        source = """
def process(a, b):
    total = 0
    for i in range(a, b):
        total += i
    return total
"""
        value, _ = compile_and_run(source, [3, 8])
        assert value == sum(range(3, 8))

    def test_region_load_store(self):
        source = """
def process(i, v):
    table[i] = v
    table[i + 1] = table[i] * 2
    return table[i + 1]
"""
        value, interpreter = compile_and_run(source, [2, 21], regions={"table": (8, 8, {})})
        assert value == 42
        assert interpreter.read_region("table", 3) == 42

    def test_helper_function_calls(self):
        source = """
def double(x):
    return x * 2

def process(x):
    return double(double(x)) + 1
"""
        value, _ = compile_and_run(source, [5])
        assert value == 21

    def test_module_level_constants(self):
        source = """
LIMIT = 7

def process(x):
    if x > LIMIT:
        return LIMIT
    return x
"""
        assert compile_and_run(source, [100])[0] == 7
        assert compile_and_run(source, [3])[0] == 3

    def test_ternary_expression(self):
        source = "def process(x):\n    return 1 if x > 5 else 2\n"
        assert compile_and_run(source, [9])[0] == 1
        assert compile_and_run(source, [1])[0] == 2

    def test_nested_subscripts(self):
        source = """
def process(i):
    return table[table[i]]
"""
        value, _ = compile_and_run(
            source, [0], regions={"table": (8, 8, {0: 3, 3: 99})}
        )
        assert value == 99

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_unsigned_arithmetic_matches_python(self, a, b):
        source = """
def process(a, b):
    return ((a * 3 + b) ^ (a >> 3)) & 0xFFFFFFFF
"""
        value, _ = compile_and_run(source, [a, b])
        assert value == ((a * 3 + b) ^ (a >> 3)) & 0xFFFFFFFF


class TestCompilerErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("def process(x):\n    y = [1, 2]\n    return 0\n", "unsupported"),
            ("def process(x):\n    return x.attr\n", "unsupported"),
            ("def process(*args):\n    return 0\n", "positional"),
            ("def process(x):\n    while x:\n        break\n    else:\n        pass\n    return 0\n", "while/else"),
            ("def process(x):\n    return unknown_name\n", "undefined name"),
            ("def process(x):\n    return missing_call(x)\n", "unknown function"),
            ("def process(x):\n    for i in x:\n        pass\n    return 0\n", "range"),
            ("def process(x):\n    return x < 1 < 2\n", "chained"),
            ("def process(x):\n    return 1.5\n", "integers only"),
            ("def process(x):\n    return table[0]\n", "unknown memory region"),
        ],
    )
    def test_rejects_unsupported_constructs(self, source, match):
        module = Module("test")
        with pytest.raises(NFCompileError, match=match):
            compile_nf(module, source, entry="process")

    def test_missing_entry_function(self):
        module = Module("test")
        with pytest.raises(NFCompileError, match="entry function"):
            compile_nf(module, "def other(x):\n    return x\n", entry="process")

    def test_break_outside_loop(self):
        module = Module("test")
        with pytest.raises(NFCompileError, match="break outside loop"):
            compile_nf(module, "def process(x):\n    break\n", entry="process")


class TestInterpreterGuards:
    def test_out_of_bounds_access_raises(self):
        source = "def process(i):\n    return table[i]\n"
        module = Module("test")
        module.add_region("table", 4, 8)
        compile_nf(module, source, entry="process")
        interpreter = ConcreteInterpreter(module, "process")
        with pytest.raises(ExecutionError, match="out-of-bounds"):
            interpreter.call_function("process", [10])

    def test_reset_restores_initial_state(self):
        source = "def process(i, v):\n    table[i] = v\n    return table[i]\n"
        module = Module("test")
        module.add_region("table", 4, 8, initial={1: 7})
        compile_nf(module, source, entry="process")
        interpreter = ConcreteInterpreter(module, "process")
        interpreter.call_function("process", [1, 99])
        assert interpreter.read_region("table", 1) == 99
        interpreter.reset()
        assert interpreter.read_region("table", 1) == 7

    def test_counters_track_memory_operations(self):
        source = "def process(i):\n    table[i] = 1\n    return table[i] + table[i]\n"
        module = Module("test")
        module.add_region("table", 4, 8)
        compile_nf(module, source, entry="process")
        interpreter = ConcreteInterpreter(module, "process")
        counters = interpreter.call_entry([0])
        assert counters.loads == 2
        assert counters.stores == 1
        assert counters.instructions > 0
        assert counters.cycles > 0
