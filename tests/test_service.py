"""Tests for the synthesis service (repro.service) and worker leases.

Covers the service's contract end to end, at smoke scale:

* the content-addressed :class:`ResultStore` round-trips results and keys
  them by ``(config content hash, NF fingerprint, packet count)``;
* a cache hit serves a result whose canonical digest is byte-identical to
  a fresh in-process run of the same job;
* the REST API boots, streams per-round progress, rejects bad submissions
  eagerly, and settles cancellations;
* :class:`WorkerLease` detects wall-clock overruns and dead heartbeats and
  can revoke its worker.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time

import pytest

from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.parallel.lease import WorkerLease
from repro.parallel.pool import make_context
from repro.parallel.portfolio import analyze_one_nf
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import serve
from repro.service.server import SynthesisService
from repro.service.store import ResultStore, canonical_result_digest, result_key

SMOKE_CONFIG = {
    "max_states": 40,
    "deadline_seconds": None,
    "search_mode": "beam",
}
SMOKE_PACKETS = 3
NF = "lpm-patricia"


def smoke_config() -> CastanConfig:
    return CastanConfig.from_dict(SMOKE_CONFIG)


# -- result store -------------------------------------------------------------


def test_result_key_is_a_function_of_config_nf_and_packets():
    config = smoke_config()
    key = result_key(config, "nf-fp", 3)
    assert key == result_key(config, "nf-fp", 3)
    assert key != result_key(config, "nf-fp", 4)
    assert key != result_key(config, "other-fp", 3)
    other = CastanConfig.from_dict({**SMOKE_CONFIG, "max_states": 41})
    assert key != result_key(other, "nf-fp", 3)


def test_store_round_trip(tmp_path):
    result = analyze_one_nf(NF, smoke_config(), num_packets=SMOKE_PACKETS)
    store = ResultStore(tmp_path / "store")
    key = store.key_for(get_nf(NF), smoke_config(), SMOKE_PACKETS)
    assert not store.has(key)
    meta = store.put(key, result)
    assert store.has(key)
    assert store.keys() == [key]
    assert len(store) == 1

    loaded, loaded_meta = store.get(key)
    assert canonical_result_digest(loaded) == canonical_result_digest(result)
    assert loaded_meta == meta
    assert meta["result"]["result_digest"] == canonical_result_digest(result)
    assert meta["perf"]["states_explored"] == result.states_explored
    # re-putting the same key is idempotent
    store.put(key, result)
    assert len(store) == 1


def test_canonical_digest_ignores_timing_but_not_content(tmp_path):
    result = analyze_one_nf(NF, smoke_config(), num_packets=SMOKE_PACKETS)
    clone = pickle.loads(pickle.dumps(result))
    clone.analysis_seconds = result.analysis_seconds + 100.0
    assert canonical_result_digest(clone) == canonical_result_digest(result)
    clone.best_state_cost += 1
    assert canonical_result_digest(clone) != canonical_result_digest(result)


# -- live server --------------------------------------------------------------


class ServerHandle:
    def __init__(self, port: int, service: SynthesisService):
        self.port = port
        self.service = service
        self.client = ServiceClient(port=port, timeout=120.0)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A real server on an ephemeral port, backed by a throwaway store."""
    store_root = tmp_path_factory.mktemp("service-store")
    loop = asyncio.new_event_loop()
    started = threading.Event()
    state: dict = {}

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            service = SynthesisService(
                ResultStore(store_root),
                max_concurrent_jobs=1,
                job_timeout=120.0,
                lease_timeout=60.0,
            )
            web = await serve(service, port=0)
            state["service"] = service
            state["server"] = web
            state["port"] = web.sockets[0].getsockname()[1]
            started.set()

        loop.run_until_complete(boot())
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(20), "service did not boot"
    yield ServerHandle(state["port"], state["service"])

    async def teardown() -> None:
        state["server"].close()
        await state["server"].wait_closed()
        await state["service"].shutdown()

    asyncio.run_coroutine_threadsafe(teardown(), loop).result(timeout=30)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


def test_health(server):
    health = server.client.health()
    assert health["ok"] is True


def test_submit_stream_and_cache_hit_identity(server):
    """The tentpole invariant: served results == fresh runs, hit or miss."""
    job = server.client.submit(NF, config=SMOKE_CONFIG, num_packets=SMOKE_PACKETS)
    assert job["cached"] is False

    events = list(server.client.stream(job["job_id"]))
    kinds = [event["event"] for event in events]
    assert kinds.count("round") >= SMOKE_PACKETS  # per-round progress arrived
    assert kinds[-1] == "end"
    final = events[-1]["job"]
    assert final["state"] == "done"
    assert final["attempts"] == 1

    # an unchanged resubmission is served from the store, born terminal
    again = server.client.submit(NF, config=SMOKE_CONFIG, num_packets=SMOKE_PACKETS)
    assert again["cached"] is True
    assert again["state"] == "done"
    assert again["cache_key"] == final["cache_key"]
    assert again["result"]["result_digest"] == final["result"]["result_digest"]

    # both served results are canonically identical to a fresh local run
    fresh = analyze_one_nf(NF, smoke_config(), num_packets=SMOKE_PACKETS)
    served = server.client.result(again["job_id"])
    assert canonical_result_digest(served) == canonical_result_digest(fresh)
    assert final["result"]["result_digest"] == canonical_result_digest(fresh)

    # the stream of a finished job replays its full history and terminates
    replay = [event["event"] for event in server.client.stream(job["job_id"])]
    assert replay[-1] == "end"
    assert replay.count("round") == kinds.count("round")


def test_submission_validation_is_eager(server):
    with pytest.raises(ServiceError) as err:
        server.client.submit("no-such-nf")
    assert err.value.status == 400

    with pytest.raises(ServiceError) as err:
        server.client.submit(NF, config={"max_statez": 40})
    assert err.value.status == 400
    assert "max_statez" in err.value.message

    with pytest.raises(ServiceError) as err:
        server.client.job("job-9999")
    assert err.value.status == 404


def test_cancel_settles_a_queued_job(server):
    """With one execution slot, the second of two jobs cancels while queued."""
    first = server.client.submit(
        NF, config={**SMOKE_CONFIG, "max_states": 200}, num_packets=SMOKE_PACKETS
    )
    queued = server.client.submit(
        "nat-hash-table", config={**SMOKE_CONFIG, "max_states": 200}, num_packets=2
    )
    cancelled = server.client.cancel(queued["job_id"])
    assert cancelled["state"] in ("cancelled", "queued")  # queued settles on pickup
    final = server.client.wait(queued["job_id"], timeout=60)
    assert final["state"] == "cancelled"
    # the first job is unaffected
    assert server.client.wait(first["job_id"], timeout=120)["state"] == "done"


# -- score jobs ---------------------------------------------------------------


def test_score_job_end_to_end(server):
    """POST /score runs analyze -> distill -> stream windows -> summary."""
    job = server.client.score(
        "nat-hash-table",
        {"synthetic": 5000, "seed": 1},
        config=SMOKE_CONFIG,
        num_packets=SMOKE_PACKETS,
        options={"window_size": 2000, "top_k": 3},
    )
    assert job["kind"] == "score"
    assert job["state"] in ("queued", "running")

    events = list(server.client.stream(job["job_id"]))
    kinds = [event["event"] for event in events]
    assert kinds[-1] == "end"
    assert "signatures" in kinds
    assert kinds.count("window") >= 2  # 5000 packets / 2000-packet windows

    signatures = next(e for e in events if e["event"] == "signatures")["signatures"]
    assert signatures["nf"] == "nat-hash-table"
    assert signatures["count"] >= 1

    final = events[-1]["job"]
    assert final["state"] == "done"
    summary = final["result"]
    assert summary["packets"] == 5000
    assert summary["windows"] >= 2
    assert [s["label"] for s in summary["signatures"]]

    # The distilled set landed on the store's signature shelf.
    assert len(server.client.signature_keys()) >= 1


def test_score_submission_validation_is_eager(server):
    with pytest.raises(ServiceError) as err:
        server.client.score(NF, {})  # no traffic source at all
    assert err.value.status == 400

    with pytest.raises(ServiceError) as err:
        server.client.score(NF, {"synthetic": 100}, options={"bogus_knob": 1})
    assert err.value.status == 400
    assert "bogus_knob" in err.value.message

    with pytest.raises(ServiceError) as err:
        server.client.score(NF, {"pcap_b64": "!!! not base64 !!!"})
    assert err.value.status == 400


# -- client transport errors --------------------------------------------------


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_client_surfaces_connection_refused_as_status_zero():
    """No server at all -> ServiceError(status=0), never a raw OSError."""
    client = ServiceClient(port=_free_port(), timeout=2.0)
    with pytest.raises(ServiceError) as err:
        client.health()
    assert err.value.status == 0
    assert "cannot reach service" in err.value.message

    with pytest.raises(ServiceError) as err:
        list(client.stream("job-1"))
    assert err.value.status == 0
    assert "cannot reach service" in err.value.message


def test_client_detects_mid_stream_eof():
    """A stream cut before its terminal event raises instead of ending
    silently — a consumer must never mistake a truncated stream for a
    finished job."""
    import socket

    server_sock = socket.socket()
    server_sock.bind(("127.0.0.1", 0))
    server_sock.listen(1)
    port = server_sock.getsockname()[1]

    def serve_one_truncated_stream() -> None:
        conn, _ = server_sock.accept()
        with conn:
            conn.recv(65536)  # the GET /jobs/job-1/stream request
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n\r\n"
                b'{"event": "status", "job": {"state": "running"}}\n'
            )
            # ... and the connection dies with no "end" event.

    thread = threading.Thread(target=serve_one_truncated_stream, daemon=True)
    thread.start()
    try:
        client = ServiceClient(port=port, timeout=5.0)
        seen = []
        with pytest.raises(ServiceError) as err:
            for event in client.stream("job-1"):
                seen.append(event["event"])
        assert err.value.status == 0
        assert "before its terminal event" in err.value.message
        assert seen == ["status"]  # the pre-cut events still arrived
    finally:
        thread.join(timeout=5)
        server_sock.close()


# -- worker leases ------------------------------------------------------------


def _sleep_forever():
    time.sleep(3600)


def _make_sleeper():
    context = make_context()
    process = context.Process(target=_sleep_forever, daemon=True)
    process.start()
    return process


def test_lease_detects_job_timeout():
    process = _make_sleeper()
    try:
        lease = WorkerLease(process, job_timeout=0.05, lease_timeout=None)
        time.sleep(0.1)
        assert lease.overdue() == "timeout"
    finally:
        process.kill()
        process.join()


def test_lease_detects_missed_heartbeats_and_touch_resets():
    process = _make_sleeper()
    try:
        lease = WorkerLease(process, job_timeout=None, lease_timeout=0.2)
        assert lease.overdue() is None
        time.sleep(0.3)
        assert lease.overdue() == "lease"
        lease.touch()  # a heartbeat arrived: the lease renews
        assert lease.overdue() is None
    finally:
        process.kill()
        process.join()


def test_lease_revoke_kills_the_worker():
    process = _make_sleeper()
    lease = WorkerLease(process, job_timeout=None, lease_timeout=None)
    assert lease.alive()
    lease.revoke(grace_seconds=0.5)
    assert not lease.alive()


def _stubborn_worker(ready) -> None:
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.set()  # handler installed; revoke may now race us safely
    while True:
        time.sleep(60)


def test_lease_revoke_escalates_to_kill_when_terminate_is_ignored():
    """A worker that shrugs off SIGTERM still dies — by SIGKILL, after the
    grace period."""
    import signal

    context = make_context()
    ready = context.Event()
    process = context.Process(target=_stubborn_worker, args=(ready,), daemon=True)
    process.start()
    try:
        assert ready.wait(20), "stubborn worker never reported ready"
        lease = WorkerLease(process, job_timeout=None, lease_timeout=None)
        start = time.monotonic()
        lease.revoke(grace_seconds=0.5)
        elapsed = time.monotonic() - start
        assert not lease.alive()
        assert elapsed >= 0.4  # terminate was ignored for the full grace window
        assert process.exitcode == -signal.SIGKILL
    finally:
        if process.is_alive():  # pragma: no cover - only on assertion failure
            process.kill()
        process.join()


def test_lease_revoke_of_a_dead_worker_is_idempotent():
    process = _make_sleeper()
    process.kill()
    process.join()
    lease = WorkerLease(process, job_timeout=None, lease_timeout=None)
    lease.revoke()  # must not raise on an already-reaped worker
    assert not lease.alive()
