"""Tests for the registry's 16 NFs: compilation, functional correctness
against reference models, and state behaviour across packets.  The four
scenario-expansion NFs (firewall, policer, dedup, DPI) have their own
behavioural suite in ``tests/test_new_nfs.py``."""

import random

import pytest

from repro.hashing.functions import lb_flow_key, nat_forward_key
from repro.ir.verify import verify_module
from repro.net.packet import IPProtocol, Packet
from repro.nf.common import (
    EXTERNAL_SERVER,
    LB_BACKENDS,
    NAT_FIRST_EXTERNAL_PORT,
    VIP_ADDRESS,
    build_routes,
    longest_prefix_match,
)
from repro.nf.registry import EVALUATION_NF_NAMES, NF_NAMES, available_nfs, get_nf
from repro.perf.interpreter import ConcreteInterpreter


def interpreter_for(name):
    nf = get_nf(name)
    return nf, ConcreteInterpreter(nf.module, nf.entry)


def lb_packet(i, sport=None, dport=80):
    return Packet(
        src_ip=0x0B000001 + i,
        dst_ip=VIP_ADDRESS,
        src_port=sport if sport is not None else 1024 + i,
        dst_port=dport,
        protocol=int(IPProtocol.UDP),
    )


def nat_packet(i, dport=80):
    return Packet(
        src_ip=0x0A000001 + i,
        dst_ip=EXTERNAL_SERVER,
        src_port=2048 + i,
        dst_port=dport,
        protocol=int(IPProtocol.UDP),
    )


class TestRegistry:
    def test_eighteen_nfs_available(self):
        assert len(available_nfs()) == 18
        assert len(EVALUATION_NF_NAMES) == 17  # without the NOP baseline

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_nf("no-such-nf")

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(KeyError, match="did you mean 'lpm-patricia'"):
            get_nf("lpm-patrica")
        with pytest.raises(KeyError, match="did you mean 'fw-conntrack'"):
            get_nf("fw-contrack")

    def test_unknown_name_without_close_match_lists_options(self):
        with pytest.raises(KeyError, match="available: nop, lpm-patricia"):
            get_nf("zzzzz")

    @pytest.mark.parametrize("name", NF_NAMES)
    def test_every_nf_compiles_and_verifies(self, name):
        nf = get_nf(name)
        verify_module(nf.module)
        assert nf.module.instruction_count > 0
        assert nf.entry in nf.module.functions

    @pytest.mark.parametrize("name", NF_NAMES)
    def test_fresh_instances_are_independent(self, name):
        first, second = get_nf(name), get_nf(name)
        assert first.module is not second.module


class TestLPM:
    @pytest.mark.parametrize("name", ["lpm-patricia", "lpm-dpdk"])
    def test_matches_reference_lpm(self, name):
        routes = build_routes()
        nf, interpreter = interpreter_for(name)
        rng = random.Random(11)
        mismatches = 0
        for _ in range(300):
            if rng.random() < 0.6:
                address = 0x0A000000 | rng.getrandbits(16)
            else:
                address = rng.getrandbits(32)
            got = interpreter.call_entry([1, address, 2, 3, 17]).action
            want = longest_prefix_match(routes, address)
            if name == "lpm-dpdk" and want > 16:
                # The scaled 2-stage table resolves prefixes only to its
                # second-stage granularity; accept any covered route port.
                mismatches += int(got == 0)
            else:
                mismatches += int(got != want)
        assert mismatches == 0

    def test_direct_lookup_single_memory_access(self):
        nf, interpreter = interpreter_for("lpm-direct")
        counters = interpreter.call_entry([1, 0x0A000001, 2, 3, 17])
        assert counters.loads == 1 and counters.stores == 0

    def test_direct_lookup_default_route_is_drop(self):
        nf, interpreter = interpreter_for("lpm-direct")
        assert interpreter.call_entry([1, 0xDEADBEEF, 2, 3, 17]).action == 0

    def test_patricia_depth_depends_on_prefix_length(self):
        nf, interpreter = interpreter_for("lpm-patricia")
        shallow = interpreter.call_entry([1, 0x12000001, 2, 3, 17]).instructions  # /8 match
        deep = interpreter.call_entry([1, 0x0A000001, 2, 3, 17]).instructions  # host-route area
        assert deep > shallow

    def test_manual_patricia_workload_targets_specific_routes(self):
        nf = get_nf("lpm-patricia")
        packets = nf.manual_workload(8)
        routes = build_routes()
        assert len(packets) == 8
        assert all(longest_prefix_match(routes, p.dst_ip) > 0 for p in packets)


class TestLoadBalancers:
    @pytest.mark.parametrize(
        "name",
        ["lb-hash-table", "lb-hash-ring", "lb-unbalanced-tree", "lb-red-black-tree"],
    )
    def test_flow_stickiness_and_round_robin(self, name):
        nf, interpreter = interpreter_for(name)
        first = [interpreter.process_packet(lb_packet(i)).action for i in range(8)]
        again = [interpreter.process_packet(lb_packet(i)).action for i in range(8)]
        assert first == again  # same flow -> same backend
        assert all(1 <= b <= LB_BACKENDS for b in first)
        assert len(set(first)) == 8  # round-robin over distinct new flows

    @pytest.mark.parametrize(
        "name",
        ["lb-hash-table", "lb-hash-ring", "lb-unbalanced-tree", "lb-red-black-tree"],
    )
    def test_non_vip_and_non_l4_traffic_dropped(self, name):
        nf, interpreter = interpreter_for(name)
        not_vip = Packet(src_ip=1, dst_ip=0x01020304, src_port=5, dst_port=6, protocol=17)
        icmp = Packet(src_ip=1, dst_ip=VIP_ADDRESS, src_port=5, dst_port=6, protocol=1)
        assert interpreter.process_packet(not_vip).action == 0
        assert interpreter.process_packet(icmp).action == 0

    def test_unbalanced_tree_degenerates_under_ordered_keys(self):
        nf, interpreter = interpreter_for("lb-unbalanced-tree")
        ordered = [lb_packet(0, sport=1000, dport=1024 + i) for i in range(24)]
        costs = [interpreter.process_packet(p).instructions for p in ordered]
        # Each insertion walks one level deeper: instruction counts grow.
        assert costs[-1] > costs[2] + 10

    def test_red_black_tree_stays_balanced_under_ordered_keys(self):
        unbalanced_nf, unbalanced = interpreter_for("lb-unbalanced-tree")
        rb_nf, rb = interpreter_for("lb-red-black-tree")
        ordered = [lb_packet(0, sport=1000, dport=1024 + i) for i in range(64)]
        unbalanced_last = [unbalanced.process_packet(p).instructions for p in ordered][-1]
        rb_last = [rb.process_packet(p).instructions for p in ordered][-1]
        # Lookup/insert work in the red-black tree grows ~log(n) and must be
        # well below the skewed unbalanced tree's linear growth.
        assert rb_last < unbalanced_last

    def test_hash_table_chains_grow_on_collisions(self):
        nf, interpreter = interpreter_for("lb-hash-table")
        # Find two distinct flows whose keys collide in the bucket index.
        from repro.hashing.functions import flow_hash16
        from repro.nf.common import HASH_TABLE_BUCKETS

        base_key_bucket = flow_hash16(lb_flow_key(0x0B000001, 1024, 80)) & (HASH_TABLE_BUCKETS - 1)
        colliding = None
        for sport in range(1025, 20000):
            if flow_hash16(lb_flow_key(0x0B000001, sport, 80)) & (HASH_TABLE_BUCKETS - 1) == base_key_bucket:
                colliding = sport
                break
        assert colliding is not None
        interpreter.process_packet(lb_packet(0, sport=1024))  # insert A
        interpreter.process_packet(lb_packet(0, sport=colliding))  # insert B at chain head
        lookup_a = interpreter.process_packet(lb_packet(0, sport=1024))
        lookup_b = interpreter.process_packet(lb_packet(0, sport=colliding))
        # A now sits behind B in the chain, so its lookup walks further.
        assert lookup_a.instructions > lookup_b.instructions


class TestNAT:
    @pytest.mark.parametrize(
        "name",
        ["nat-hash-table", "nat-hash-ring", "nat-unbalanced-tree", "nat-red-black-tree"],
    )
    def test_port_allocation_and_stickiness(self, name):
        nf, interpreter = interpreter_for(name)
        ports = [interpreter.process_packet(nat_packet(i)).action for i in range(6)]
        assert ports == list(range(NAT_FIRST_EXTERNAL_PORT, NAT_FIRST_EXTERNAL_PORT + 6))
        repeat = [interpreter.process_packet(nat_packet(i)).action for i in range(6)]
        assert repeat == ports

    @pytest.mark.parametrize(
        "name",
        ["nat-hash-table", "nat-hash-ring", "nat-unbalanced-tree", "nat-red-black-tree"],
    )
    def test_external_traffic_is_dropped(self, name):
        nf, interpreter = interpreter_for(name)
        external = Packet(src_ip=0xC0000001, dst_ip=EXTERNAL_SERVER, src_port=1, dst_port=2, protocol=17)
        assert interpreter.process_packet(external).action == 0

    def test_nat_stores_two_entries_per_flow(self):
        nf, interpreter = interpreter_for("nat-unbalanced-tree")
        interpreter.process_packet(nat_packet(0))
        assert interpreter.read_region("bst_count", 0) == 2
        interpreter.process_packet(nat_packet(1))
        assert interpreter.read_region("bst_count", 0) == 4

    def test_manual_nat_workload_is_monotone(self):
        nf = get_nf("nat-unbalanced-tree")
        packets = nf.manual_workload(10)
        keys = [nat_forward_key(p.src_ip, p.src_port, p.dst_port) for p in packets]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


class TestMetadata:
    @pytest.mark.parametrize("name", EVALUATION_NF_NAMES)
    def test_contention_regions_exist(self, name):
        nf = get_nf(name)
        for region in nf.contention_regions:
            assert region in nf.module.regions

    @pytest.mark.parametrize("name", ["lb-hash-table", "lb-hash-ring", "nat-hash-table", "nat-hash-ring"])
    def test_hash_nfs_declare_hash_functions(self, name):
        nf = get_nf(name)
        assert nf.uses_hashing
        assert set(nf.hash_functions) == set(nf.hash_output_bits)

    @pytest.mark.parametrize("name", ["lb-unbalanced-tree", "lb-red-black-tree", "lpm-patricia", "lpm-direct"])
    def test_tree_and_lpm_nfs_do_not_hash(self, name):
        assert not get_nf(name).uses_hashing

    def test_packet_from_fields_uses_defaults(self):
        nf = get_nf("lb-hash-table")
        packet = nf.packet_from_fields({"src_port": 7777})
        assert packet.src_port == 7777
        assert packet.dst_ip == VIP_ADDRESS
