"""Tests for the packet substrate: headers, checksums, flows, pcap I/O."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.flows import Flow, FlowKey, unique_flows
from repro.net.packet import (
    IPProtocol,
    Packet,
    PacketField,
    PacketParseError,
    make_tcp_packet,
    make_udp_packet,
    parse_packet,
)
from repro.net.pcap import (
    PcapFormatError,
    PcapReader,
    PcapWriter,
    packets_to_pcap_bytes,
    read_pcap,
    write_pcap,
)


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_buffer(self):
        assert internet_checksum(b"\x00" * 10) == 0xFFFF

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=64).filter(lambda d: len(d) % 2 == 0))
    def test_verify_with_embedded_checksum(self, data):
        # Appending the checksum only keeps 16-bit words aligned for
        # even-length payloads (as in real IPv4/TCP/UDP headers).
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))


class TestPacket:
    def test_field_masking(self):
        packet = Packet(src_ip=1 << 40, src_port=1 << 20, protocol=300)
        assert packet.src_ip < (1 << 32)
        assert packet.src_port < (1 << 16)
        assert packet.protocol < (1 << 8)

    @pytest.mark.parametrize("field", list(PacketField))
    def test_get_and_with_field(self, field):
        packet = Packet()
        changed = packet.with_field(field, 5)
        assert changed.get_field(field) == 5
        # Other fields are untouched.
        for other in PacketField:
            if other is not field:
                assert changed.get_field(other) == packet.get_field(other)

    def test_flow_tuple(self):
        packet = make_udp_packet(1, 2, 3, 4)
        assert packet.flow_tuple == (1, 2, 3, 4, int(IPProtocol.UDP))

    @pytest.mark.parametrize(
        "maker,protocol",
        [(make_udp_packet, IPProtocol.UDP), (make_tcp_packet, IPProtocol.TCP)],
    )
    def test_serialise_parse_roundtrip(self, maker, protocol):
        packet = maker(0x0A000001, 0xC0A80001, 1234, 80, payload=b"hello")
        parsed = parse_packet(packet.to_bytes())
        assert parsed.src_ip == packet.src_ip
        assert parsed.dst_ip == packet.dst_ip
        assert parsed.src_port == packet.src_port
        assert parsed.dst_port == packet.dst_port
        assert parsed.protocol == int(protocol)
        assert parsed.payload == b"hello"

    @given(
        src=st.integers(0, 2**32 - 1),
        dst=st.integers(0, 2**32 - 1),
        sport=st.integers(0, 2**16 - 1),
        dport=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, src, dst, sport, dport):
        packet = make_udp_packet(src, dst, sport, dport)
        parsed = parse_packet(packet.to_bytes())
        assert parsed.flow_tuple == packet.flow_tuple

    def test_parse_rejects_short_frames(self):
        with pytest.raises(PacketParseError):
            parse_packet(b"\x00" * 10)

    def test_parse_rejects_non_ipv4(self):
        frame = bytearray(make_udp_packet(1, 2, 3, 4).to_bytes())
        frame[12:14] = b"\x86\xdd"  # IPv6 ethertype
        with pytest.raises(PacketParseError):
            parse_packet(bytes(frame))

    def test_wire_length_includes_headers(self):
        assert make_udp_packet(1, 2, 3, 4).wire_length == 14 + 20 + 8


class TestFlows:
    def test_flow_key_reversed(self):
        key = FlowKey(1, 2, 3, 4)
        assert key.reversed() == FlowKey(2, 1, 4, 3)
        assert key.reversed().reversed() == key

    def test_flow_key_of_packet_roundtrip(self):
        key = FlowKey(10, 20, 30, 40)
        assert FlowKey.of_packet(key.to_packet()) == key

    def test_flow_expansion(self):
        flow = Flow(key=FlowKey(1, 2, 3, 4), packet_count=5)
        packets = flow.packets()
        assert len(packets) == 5
        assert unique_flows(packets) == {flow.key}

    def test_unique_flows_counts_distinct(self):
        packets = [FlowKey(1, 2, 3, p).to_packet() for p in range(10)] * 3
        assert len(unique_flows(packets)) == 10


class TestPcap:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "workload.pcap"
        packets = [make_udp_packet(i, i + 1, 1000 + i, 80) for i in range(20)]
        assert write_pcap(path, packets) == 20
        restored = read_pcap(path)
        assert [p.flow_tuple for p in restored] == [p.flow_tuple for p in packets]

    def test_in_memory_roundtrip(self):
        packets = [make_tcp_packet(1, 2, 3, 4), make_udp_packet(5, 6, 7, 8)]
        blob = packets_to_pcap_bytes(packets)
        reader = PcapReader(io.BytesIO(blob))
        restored = [record.to_packet() for record in reader]
        assert len(restored) == 2
        assert restored[0].protocol == int(IPProtocol.TCP)

    def test_reader_rejects_bad_magic(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\x00" * 32))

    def test_reader_rejects_truncated_header(self):
        with pytest.raises(PcapFormatError):
            PcapReader(io.BytesIO(b"\x01\x02"))

    def test_writer_timestamps_monotonic(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for i in range(5):
            writer.write_packet(make_udp_packet(i, i, i, i))
        reader = PcapReader(io.BytesIO(buffer.getvalue()))
        timestamps = [record.timestamp for record in reader]
        assert timestamps == sorted(timestamps)

    def test_reader_rejects_unsupported_linktype(self):
        import struct

        from repro.net.pcap import _GLOBAL_HEADER

        header = _GLOBAL_HEADER.pack(0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)  # RAW
        with pytest.raises(PcapFormatError, match="link type 101"):
            PcapReader(io.BytesIO(header))
        # Byte-swapped captures get the same check after the endian flip.
        swapped = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 105)
        with pytest.raises(PcapFormatError, match="link type 105"):
            PcapReader(io.BytesIO(swapped))

    def test_reader_rejects_truncated_record_header(self):
        packets = [make_udp_packet(1, 2, 3, 4)]
        blob = packets_to_pcap_bytes(packets)
        # Chop the second record's header off mid-way.
        truncated = blob + b"\x00" * 7
        with pytest.raises(PcapFormatError, match=r"record header \(7 of 16"):
            list(PcapReader(io.BytesIO(truncated)))

    def test_reader_rejects_truncated_record_data(self):
        blob = packets_to_pcap_bytes([make_udp_packet(1, 2, 3, 4)])
        with pytest.raises(PcapFormatError, match="truncated pcap record data"):
            list(PcapReader(io.BytesIO(blob[:-5])))

    def test_reader_rejects_implausible_record_length(self):
        import struct

        from repro.net.pcap import _GLOBAL_HEADER, MAX_RECORD_BYTES

        header = _GLOBAL_HEADER.pack(0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        bogus = struct.pack("<IIII", 0, 0, MAX_RECORD_BYTES + 1, MAX_RECORD_BYTES + 1)
        with pytest.raises(PcapFormatError, match="implausible pcap record length"):
            list(PcapReader(io.BytesIO(header + bogus)))

    def test_read_skips_unparseable_frames_by_default(self, tmp_path):
        path = tmp_path / "mixed.pcap"
        with PcapWriter(path) as writer:
            writer.write_packet(make_udp_packet(1, 2, 3, 4))
            writer.write_frame(b"\xff" * 20)  # not an IPv4 frame
        assert len(read_pcap(path)) == 1
        with pytest.raises(PacketParseError):
            read_pcap(path, strict=True)
