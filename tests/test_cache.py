"""Tests for the cache substrate: set-associative caches, the simulated
hierarchy, contention-set discovery and the symbex cache models."""

import pytest

from repro.cache.contention import ContentionSets, discover_contention_sets
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.model import ContentionSetCacheModel, NoCacheModel
from repro.cache.setassoc import SetAssociativeCache
from repro.ir.module import MemoryRegion
from repro.symbex.expr import Const, Sym, evaluate


def tiny_hierarchy(**overrides) -> MemoryHierarchy:
    config = HierarchyConfig(
        l1_size=1024,
        l1_ways=2,
        l2_size=2048,
        l2_ways=2,
        l3_size=16 * 1024,
        l3_ways=4,
        l3_slices=2,
        page_size=4096,
        **overrides,
    )
    return MemoryHierarchy(config)


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_within_set(self):
        cache = SetAssociativeCache(num_sets=1, associativity=2, line_size=64)
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert cache.access(64) is True
        assert cache.access(0) is False
        assert cache.evictions >= 1

    def test_same_line_different_bytes(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2, line_size=64)
        cache.access(10)
        assert cache.access(63) is True
        assert cache.access(64) is False

    def test_flush_and_occupancy(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        for i in range(5):
            cache.access(i * 64)
        assert cache.occupancy() == 5
        cache.flush()
        assert cache.occupancy() == 0 and cache.hits == 0

    def test_clone_is_independent(self):
        cache = SetAssociativeCache(num_sets=2, associativity=2)
        cache.access(0)
        clone = cache.clone()
        clone.access(64)
        assert clone.occupancy() == 2
        assert cache.occupancy() == 1

    @pytest.mark.parametrize("bad", [dict(num_sets=0, associativity=1), dict(num_sets=1, associativity=0)])
    def test_rejects_bad_geometry(self, bad):
        with pytest.raises(ValueError):
            SetAssociativeCache(**bad)

    def test_access_batch_matches_sequential_access(self):
        """The columnar batch must be flag-for-flag identical to a loop."""
        import random

        rng = random.Random(31)
        # Addresses cluster in a few sets so the batch hits, misses, evicts
        # and revisits lines already touched earlier in the same batch.
        addresses = [rng.randrange(0, 4096) for _ in range(500)]
        batched = SetAssociativeCache(num_sets=4, associativity=2)
        sequential = SetAssociativeCache(num_sets=4, associativity=2)
        flags = batched.access_batch(addresses)
        assert flags == [sequential.access(a) for a in addresses]
        assert (batched.hits, batched.misses, batched.evictions) == (
            sequential.hits, sequential.misses, sequential.evictions
        )
        assert batched._sets == sequential._sets  # identical LRU order

    def test_access_batch_empty(self):
        cache = SetAssociativeCache(num_sets=4, associativity=2)
        assert cache.access_batch([]) == []
        assert cache.hits == 0 and cache.misses == 0


class TestHierarchy:
    def test_levels_progression(self):
        hierarchy = tiny_hierarchy()
        address = 1 << 20
        assert hierarchy.access(address) == "DRAM"
        assert hierarchy.access(address) == "L1"

    def test_l1_capacity_spill_to_l2(self):
        hierarchy = tiny_hierarchy()
        # Touch far more lines than L1 can hold, then re-touch the first.
        addresses = [i * 64 for i in range(64)]
        for address in addresses:
            hierarchy.access(address)
        level = hierarchy.access(addresses[0])
        assert level in ("L2", "L3", "DRAM")

    def test_translation_preserves_page_offset(self):
        hierarchy = tiny_hierarchy()
        vaddr = 5 * 4096 + 123
        assert hierarchy.virtual_to_physical(vaddr) % 4096 == 123

    def test_translation_changes_across_process_runs(self):
        hierarchy = tiny_hierarchy()
        vaddr = 7 * 4096
        first = hierarchy.virtual_to_physical(vaddr)
        hierarchy.new_process_run(99)
        assert hierarchy.virtual_to_physical(vaddr) != first

    def test_access_cycles_match_levels(self):
        hierarchy = tiny_hierarchy()
        level, cycles = hierarchy.access_cycles(0)
        assert level == "DRAM" and cycles == hierarchy.cycle_costs.dram
        level, cycles = hierarchy.access_cycles(0)
        assert level == "L1" and cycles == hierarchy.cycle_costs.l1_hit

    def test_probe_time_detects_associativity_overflow(self):
        hierarchy = tiny_hierarchy()
        # Build a set of addresses that all share one contention set.
        pool = [i * 64 for i in range(2048)]
        by_key = {}
        for address in pool:
            by_key.setdefault(hierarchy.oracle_contention_key(address), []).append(address)
        addresses = max(by_key.values(), key=len)
        ways = hierarchy.l3_associativity
        fits = hierarchy.probe_time(addresses[:ways], repeats=6)
        overflows = hierarchy.probe_time(addresses[: ways + 1], repeats=6)
        gap = hierarchy.cycle_costs.dram - hierarchy.cycle_costs.l3_hit
        assert overflows - fits > gap * 3

    def test_bit_layout_description(self):
        text = tiny_hierarchy().config.describe_bit_layout()
        assert "L3 slice" in text and "byte offset" in text

    def test_rejects_non_power_of_two_geometry(self):
        with pytest.raises(ValueError):
            HierarchyConfig(line_size=48)


class TestContentionDiscovery:
    def test_oracle_groups_match_hierarchy(self):
        hierarchy = tiny_hierarchy()
        addresses = [i * 64 for i in range(512)]
        sets = ContentionSets.from_oracle(hierarchy, addresses)
        assert sets.set_count > 1
        for group in sets.sets:
            keys = {hierarchy.oracle_contention_key(a) for a in group}
            assert len(keys) == 1

    def test_probing_discovery_agrees_with_oracle(self):
        hierarchy = tiny_hierarchy()
        # Addresses sharing one (public) L3 set index, so the hidden slice
        # hash is the only thing separating them into contention sets.
        stride = hierarchy.config.l3_sets_per_slice * 64
        addresses = [i * stride for i in range(48)]
        discovered = discover_contention_sets(hierarchy, addresses, repeats=6, max_sets=2)
        assert discovered.set_count >= 1
        for group in discovered.sets:
            keys = {hierarchy.oracle_contention_key(a) for a in group}
            assert len(keys) == 1, f"probing mixed contention sets: {keys}"

    def test_set_id_lookup(self):
        hierarchy = tiny_hierarchy()
        addresses = [i * 64 for i in range(256)]
        sets = ContentionSets.from_oracle(hierarchy, addresses)
        member = sets.sets[0][0]
        assert sets.set_id_of(member) == 0
        assert sets.set_id_of(10**12) is None


class TestCacheModels:
    def _region(self) -> MemoryRegion:
        return MemoryRegion(name="tbl", length=4096, element_size=64, base_address=1 << 30)

    def _contention_model(self) -> ContentionSetCacheModel:
        hierarchy = tiny_hierarchy()
        region = self._region()
        addresses = [region.base_address + i * 64 for i in range(2048)]
        return ContentionSetCacheModel(ContentionSets.from_oracle(hierarchy, addresses))

    def test_no_cache_model_concrete_access(self):
        model = NoCacheModel()
        decision = model.on_access(self._region(), Const(5), False, lambda c: True, lambda e: 0)
        assert decision.index == 5 and decision.level == "L1" and decision.constraint is None

    def test_contention_model_concrete_miss_then_hit(self):
        model = self._contention_model()
        region = self._region()
        first = model.on_access(region, Const(7), False, lambda c: True, lambda e: 7)
        again = model.on_access(region, Const(7), False, lambda c: True, lambda e: 7)
        assert first.level == "DRAM"
        assert again.level in ("L1", "L3")

    def test_contention_model_targets_one_set(self):
        model = self._contention_model()
        region = self._region()
        symbol = Sym("idx", 32)
        # Seed with one concrete access, then concretize symbolic pointers.
        model.on_access(region, Const(0), False, lambda c: True, lambda e: 0)
        chosen = []
        for _ in range(6):
            decision = model.on_access(region, symbol, False, lambda c: True, lambda e: 1)
            assert decision.constraint is not None
            chosen.append(decision.index)
        keys = {
            model.contention_sets.set_id_of(region.address_of(index))
            for index in chosen
        }
        # All concretized pointers should land in the seeded contention set.
        assert len(keys) == 1

    def test_contention_model_eviction_after_associativity(self):
        model = self._contention_model()
        region = self._region()
        symbol = Sym("idx", 32)
        model.on_access(region, Const(0), False, lambda c: True, lambda e: 0)
        evictions = 0
        for _ in range(model.associativity + 4):
            decision = model.on_access(region, symbol, False, lambda c: True, lambda e: 1)
            evictions += int(decision.caused_eviction)
        assert evictions >= 1

    def test_fallback_prefers_touched_elements(self):
        # A region too small for contention: symbolic pointers should land on
        # previously-touched elements (the collision-steering behaviour).
        hierarchy = tiny_hierarchy()
        small = MemoryRegion(name="buckets", length=64, element_size=8, base_address=1 << 30)
        pool = [small.base_address + i * 64 for i in range(8)]
        model = ContentionSetCacheModel(ContentionSets.from_oracle(hierarchy, pool))
        model.on_access(small, Const(13), False, lambda c: True, lambda e: 13)
        decision = model.on_access(small, Sym("h", 16), False, lambda c: True, lambda e: 1)
        assert decision.index == 13

    def test_touched_elements_window_is_bounded_deque(self):
        from collections import deque

        from repro.cache.model import TOUCHED_ELEMENT_WINDOW

        model = self._contention_model()
        region = self._region()
        for index in range(TOUCHED_ELEMENT_WINDOW + 100):
            model.on_access(region, Const(index % region.length), False, lambda c: True, lambda e: 0)
        touched = model._touched_elements[region.name]
        assert isinstance(touched, deque)
        assert len(touched) == TOUCHED_ELEMENT_WINDOW
        # The oldest entries were trimmed; the newest survive in order.
        assert touched[-1] == (TOUCHED_ELEMENT_WINDOW + 99) % region.length
        assert touched[0] == 100
        # Clones keep the bound.
        clone = model.clone()
        assert clone._touched_elements[region.name].maxlen == TOUCHED_ELEMENT_WINDOW

    def test_clone_isolates_state(self):
        model = self._contention_model()
        region = self._region()
        model.on_access(region, Const(3), False, lambda c: True, lambda e: 3)
        clone = model.clone()
        clone.on_access(region, Const(9), False, lambda c: True, lambda e: 9)
        assert clone.stats.accesses == model.stats.accesses + 1

    def test_constraint_is_consistent_with_index(self):
        model = self._contention_model()
        region = self._region()
        symbol = Sym("idx", 32)
        model.on_access(region, Const(0), False, lambda c: True, lambda e: 0)
        decision = model.on_access(region, symbol, False, lambda c: True, lambda e: 1)
        assert evaluate(decision.constraint, {"idx": decision.index}) == 1


class TestWayPartitioning:
    """Way-partition helpers: same set structure, reduced associativity."""

    def test_way_partition_geometry_and_cold_start(self):
        cache = SetAssociativeCache(num_sets=8, associativity=4, line_size=64)
        cache.access(0)
        part = cache.way_partition(2)
        assert (part.num_sets, part.associativity, part.line_size) == (8, 2, 64)
        assert part.occupancy() == 0  # a new tenant starts cold

    def test_way_partition_same_sets_fewer_ways(self):
        cache = SetAssociativeCache(num_sets=8, associativity=4, line_size=64)
        part = cache.way_partition(2)
        # Three distinct lines of one set fit the 4-way cache but overflow
        # the 2-way partition — same indexing, smaller per-set capacity.
        stride = 8 * 64
        for address in (0, stride, 2 * stride):
            cache.access(address)
            part.access(address)
        assert cache.access(0) is True
        assert part.access(0) is False

    @pytest.mark.parametrize("ways", [0, 5, -1])
    def test_way_partition_rejects_bad_ways(self, ways):
        with pytest.raises(ValueError):
            SetAssociativeCache(num_sets=8, associativity=4).way_partition(ways)

    def test_hierarchy_way_partitioned_keeps_set_structure(self):
        config = tiny_hierarchy().config
        half = config.way_partitioned(2)
        assert half.l3_ways == 2
        assert half.l3_size == config.l3_size // 2
        assert half.l3_sets_per_slice == config.l3_sets_per_slice
        assert half.l3_slices == config.l3_slices
        assert (half.l1_size, half.l2_size) == (config.l1_size, config.l2_size)
        MemoryHierarchy(half)  # the partitioned geometry is still valid

    @pytest.mark.parametrize("ways", [0, 5])
    def test_hierarchy_way_partitioned_rejects_bad_ways(self, ways):
        with pytest.raises(ValueError):
            tiny_hierarchy().config.way_partitioned(ways)


class TestPartitionedCacheModel:
    """``cache_partition="partitioned"``: each chain stage's cache slice
    must reproduce the stage's *standalone* access decisions bit-exactly,
    no matter how the stages' accesses interleave through the chain."""

    @staticmethod
    def _partitioned_model(castan, chain):
        from repro.cache.model import PartitionedCacheModel

        model, contention_sets = castan._build_cache_model(chain)
        assert contention_sets is None
        assert isinstance(model, PartitionedCacheModel)
        return model

    @staticmethod
    def _decision_key(decision):
        constraint = decision.constraint
        return (
            decision.index,
            decision.address,
            decision.level,
            decision.caused_eviction,
            None if constraint is None else repr(constraint),
        )

    @staticmethod
    def _digest(keys) -> str:
        import hashlib

        return hashlib.sha256(repr(keys).encode()).hexdigest()

    @staticmethod
    def _access_stream(region, salt: str):
        """Concrete and symbolic accesses exercising concretization,
        residency and eviction.  The same ``Sym`` objects drive both the
        partitioned and the standalone run, so constraints must intern to
        the same expressions."""
        stream = []
        for i in range(48):
            if i % 3 == 2:
                stream.append(Sym(f"pidx_{salt}_{i}", 32))
            else:
                stream.append(Const((i * 37) % region.length))
        return stream

    def test_partitioned_slices_reproduce_standalone_digests(self):
        from repro.core.castan import Castan
        from repro.core.config import CastanConfig
        from repro.nf.registry import get_nf

        castan = Castan(CastanConfig(cache_partition="partitioned"))
        chain = get_nf("chain-gateway")
        partitioned = self._partitioned_model(castan, chain)

        # One (chain region, standalone region, standalone model) case per
        # stage, plus the access stream both runs will see.
        cases = []
        for stage in chain.chain_stages:
            standalone_nf = get_nf(stage.nf_name)
            standalone_model, _ = Castan(CastanConfig())._build_cache_model(standalone_nf)
            region_name = stage.contention_regions[0]
            chain_region = chain.module.get_region(region_name)
            standalone_region = standalone_nf.module.get_region(
                region_name[len(stage.prefix):]
            )
            assert chain_region.base_address == (
                standalone_region.base_address + stage.address_offset
            )
            stream = self._access_stream(standalone_region, stage.label)
            cases.append((stage, chain_region, standalone_region, standalone_model, stream, []))
        assert len(cases) == 3

        # Interleave the stages' accesses round-robin through the chain's
        # partitioned model: with true per-stage slices the interleaving
        # cannot perturb any stage's decision stream.
        for i in range(len(cases[0][4])):
            for _, chain_region, _, _, stream, observed in cases:
                decision = partitioned.on_access(
                    chain_region, stream[i], False, lambda c: True, lambda e: 1
                )
                observed.append(self._decision_key(decision))

        for stage, _, standalone_region, standalone_model, stream, observed in cases:
            reference = [
                self._decision_key(
                    standalone_model.on_access(
                        standalone_region, expr, False, lambda c: True, lambda e: 1
                    )
                )
                for expr in stream
            ]
            assert self._digest(observed) == self._digest(reference), stage.label

    def test_partitioned_routes_reject_foreign_regions(self):
        from repro.core.castan import Castan
        from repro.core.config import CastanConfig
        from repro.nf.registry import get_nf

        castan = Castan(CastanConfig(cache_partition="partitioned"))
        partitioned = self._partitioned_model(castan, get_nf("chain-gateway"))
        mystery = MemoryRegion(name="mystery", length=64, element_size=8, base_address=1 << 40)
        with pytest.raises(KeyError, match="not assigned to any chain stage"):
            partitioned.on_access(mystery, Const(0), False, lambda c: True, lambda e: 0)

    def test_partitioned_clone_isolates_slices(self):
        from repro.core.castan import Castan
        from repro.core.config import CastanConfig
        from repro.nf.registry import get_nf

        castan = Castan(CastanConfig(cache_partition="partitioned"))
        chain = get_nf("chain-gateway")
        partitioned = self._partitioned_model(castan, chain)
        region = chain.module.get_region(chain.chain_stages[0].contention_regions[0])
        partitioned.on_access(region, Const(3), False, lambda c: True, lambda e: 3)
        clone = partitioned.clone()
        clone.on_access(region, Const(9), False, lambda c: True, lambda e: 9)
        assert clone.stats.accesses == partitioned.stats.accesses + 1
        assert len(clone.stage_stats()) == len(chain.chain_stages)

    def test_rejects_unknown_partition_mode(self):
        from repro.core.castan import Castan
        from repro.core.config import CastanConfig
        from repro.nf.registry import get_nf

        castan = Castan(CastanConfig(cache_partition="sliced"))
        with pytest.raises(ValueError, match="cache_partition"):
            castan._build_cache_model(get_nf("nop"))
