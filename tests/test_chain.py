"""Service-chain NFs (`repro.nf.chain`): spec parsing, module stitching,
per-stage cost attribution, worker/exec-mode identity, and the composition
gate — the chain-synthesized workload must cost more on the full chain than
any single stage's adversarial workload replayed through the same chain."""

from __future__ import annotations

import pytest

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.core.workload import workload_digest
from repro.net.packet import Packet
from repro.nf.chain import (
    CHAIN_PACKET_DEFAULTS,
    PRESET_CHAINS,
    STAGE_ADDRESS_STRIDE,
    parse_chain_spec,
)
from repro.nf.registry import EVALUATION_NF_NAMES, get_nf
from repro.parallel.portfolio import PortfolioRunner
from repro.perf.interpreter import ConcreteInterpreter

SMOKE = dict(max_states=60, num_packets=5, deadline_seconds=None)

_MODES = ("interp", "compiled", "vector")

GATEWAY_LABELS = ["lpm-dpdk", "fw-conntrack", "nat-hash-table"]


@pytest.fixture(scope="module")
def gateway_result():
    """One smoke-scale analysis of the preset gateway chain."""
    return Castan(CastanConfig(**SMOKE)).analyze(get_nf("chain-gateway"))


class TestChainSpecParsing:
    def test_aliases_resolve_to_canonical_names(self):
        assert parse_chain_spec("chain:router,fw,nat") == [
            ("lpm-dpdk", "lpm-dpdk"),
            ("fw-conntrack", "fw-conntrack"),
            ("nat-hash-table", "nat-hash-table"),
        ]

    def test_unknown_stage_names_position_and_suggests(self):
        with pytest.raises(KeyError) as excinfo:
            parse_chain_spec("chain:router,fw-contrack,nat")
        message = str(excinfo.value)
        assert "chain stage 2" in message
        assert "'fw-contrack'" in message
        assert "did you mean" in message and "fw-conntrack" in message

    def test_unknown_stage_without_close_match_lists_options(self):
        with pytest.raises(KeyError, match="available:"):
            parse_chain_spec("chain:router,zzzzz")

    def test_duplicate_stages_need_distinct_labels(self):
        with pytest.raises(KeyError) as excinfo:
            parse_chain_spec("chain:nat,nat")
        message = str(excinfo.value)
        assert "chain stage 2" in message
        assert "duplicates stage 1" in message
        assert "distinct labels" in message and "nat-hash-table@" in message

    def test_duplicate_stages_with_labels_accepted(self):
        assert parse_chain_spec("chain:nat@nat1,nat@nat2") == [
            ("nat-hash-table", "nat1"),
            ("nat-hash-table", "nat2"),
        ]

    def test_nested_chains_rejected(self):
        with pytest.raises(KeyError, match="cannot nest"):
            parse_chain_spec("chain:router,chain-gateway")

    @pytest.mark.parametrize("bad", ["chain:", "chain:router,,nat", "chain:router, "])
    def test_empty_stage_rejected(self, bad):
        with pytest.raises(KeyError, match="empty stage"):
            parse_chain_spec(bad)

    def test_non_chain_spec_rejected(self):
        with pytest.raises(KeyError, match="chain:"):
            parse_chain_spec("lpm-patricia")


class TestChainConstruction:
    def test_presets_are_registered_evaluation_nfs(self):
        for preset in PRESET_CHAINS:
            assert preset in EVALUATION_NF_NAMES
        nf = get_nf("chain-gateway")
        assert nf.is_chain
        assert nf.entry == "process"
        assert [stage.label for stage in nf.chain_stages] == GATEWAY_LABELS

    def test_ad_hoc_spec_builds_same_stages_as_preset(self):
        ad_hoc = get_nf("chain:router,fw,nat")
        preset = get_nf("chain-gateway")
        assert [s.nf_name for s in ad_hoc.chain_stages] == [
            s.nf_name for s in preset.chain_stages
        ]

    def test_stage_symbols_are_prefixed_and_planes_disjoint(self):
        nf = get_nf("chain-gateway")
        for stage in nf.chain_stages:
            assert stage.entry in nf.module.functions
            assert nf.stage_entries[stage.entry] == stage.label
            assert stage.region_names, stage.label
            for region_name in stage.region_names:
                assert region_name.startswith(stage.prefix)
                region = nf.module.get_region(region_name)
                # Every stage's regions live on their own address plane.
                assert (
                    stage.address_offset
                    <= region.base_address
                    < stage.address_offset + STAGE_ADDRESS_STRIDE
                )

    def test_contention_regions_cover_every_stage(self):
        nf = get_nf("chain-gateway")
        for stage in nf.chain_stages:
            assert stage.contention_regions
            for region_name in stage.contention_regions:
                assert region_name in nf.contention_regions
                nf.module.get_region(region_name)  # must resolve

    def test_merged_hints_thread_all_stages(self):
        hints = get_nf("chain-gateway").workload_hints
        # NAT/firewall stages need internal sources; the router stage needs
        # a routed destination — the merged hints carry both.
        assert "src_ip_prefix" in hints
        assert hints["dst_ip"] == CHAIN_PACKET_DEFAULTS["dst_ip"]

    def test_default_packet_traverses_every_stage(self):
        nf = get_nf("chain-gateway")
        interp = ConcreteInterpreter(nf.module, nf.entry)
        good = interp.process_packet(Packet(**CHAIN_PACKET_DEFAULTS))
        # The NAT is the last stage: the verdict is its allocated external
        # port, proving the packet survived router and firewall.
        assert good.action >= 1024
        blocked = interp.process_packet(
            Packet(**{**CHAIN_PACKET_DEFAULTS, "src_ip": 0xC0A80101})
        )
        assert blocked.action == 0  # external source: dropped mid-chain
        assert blocked.cycles < good.cycles

    def test_nat_rewrites_src_port_for_downstream_stages(self):
        assert get_nf("nat-hash-table").chain_result_rewrite == "src_port"
        edge = get_nf("chain-edge")
        assert [stage.nf_name for stage in edge.chain_stages][-2:] == [
            "nat-hash-table",
            "policer-two-choice",
        ]
        # The edge chain still forwards the default packet end to end.
        interp = ConcreteInterpreter(edge.module, edge.entry)
        assert interp.process_packet(Packet(**CHAIN_PACKET_DEFAULTS)).action != 0


class TestChainAnalysis:
    def test_synthesizes_end_to_end(self, gateway_result):
        assert gateway_result.packet_count > 0
        assert gateway_result.best_state_cost > 0
        assert gateway_result.solver_status == "sat"

    def test_stage_attribution_covers_every_stage(self, gateway_result):
        stage_cycles = gateway_result.metrics.stage_cycles
        assert set(stage_cycles) == set(GATEWAY_LABELS)
        assert all(cycles > 0 for cycles in stage_cycles.values())
        # Attribution is exclusive of the glue, so stages sum to at most
        # the best state's total cost.
        assert sum(stage_cycles.values()) <= gateway_result.best_state_cost

    def test_report_includes_attribution(self, gateway_result):
        report = gateway_result.metrics.to_report()
        assert "per-stage attribution" in report
        for label in GATEWAY_LABELS:
            assert label in report

    def test_standalone_nf_has_no_stage_attribution(self):
        config = CastanConfig(max_states=40, num_packets=2, deadline_seconds=None)
        result = Castan(config).analyze(get_nf("lpm-patricia"))
        assert result.metrics.stage_cycles == {}
        assert "per-stage attribution" not in result.metrics.to_report()

    def test_partitioned_cache_mode_analyzes(self):
        config = CastanConfig(cache_partition="partitioned", **SMOKE)
        result = Castan(config).analyze(get_nf("chain-gateway"))
        assert result.best_state_cost > 0
        assert set(result.metrics.stage_cycles) == set(GATEWAY_LABELS)


class TestChainWorkerIdentity:
    """workers=0 vs workers=2 byte-identity for a chain, in every exec mode
    and both parallel modes (shards and portfolio)."""

    @pytest.mark.parametrize("mode", _MODES)
    def test_sharded_beam_identity(self, mode):
        digests = {}
        for workers in (0, 2):
            config = CastanConfig(
                max_states=40,
                num_packets=3,
                deadline_seconds=None,
                search_mode="beam",
                parallel_mode="shards",
                workers=workers,
                exec_mode=mode,
            )
            result = Castan(config).analyze(get_nf("chain-gateway"))
            digests[workers] = (
                workload_digest(result.packets),
                result.best_state_cost,
                result.metrics.stage_cycles,
            )
        assert digests[0] == digests[2]

    def test_portfolio_identity(self):
        config = CastanConfig(max_states=40, num_packets=3, deadline_seconds=None)
        name = "chain-gateway"
        sequential = PortfolioRunner(config=config, workers=0).run_map((name,))[name]
        parallel = PortfolioRunner(config=config, workers=2).run_map((name,))[name]
        assert workload_digest(parallel.packets) == workload_digest(sequential.packets)
        assert parallel.best_state_cost == sequential.best_state_cost
        assert parallel.metrics.stage_cycles == sequential.metrics.stage_cycles


class TestChainBeatsSingleStageWorkloads:
    """The composition gate: per-stage adversaries do not compose — the
    chain-synthesized workload must beat every single-stage CASTAN workload
    when both are replayed through the full chain."""

    def test_chain_workload_dominates_single_stage_workloads(self, gateway_result):
        chain = get_nf("chain-gateway")
        interp = ConcreteInterpreter(chain.module, chain.entry)

        def replay(packets) -> int:
            interp.reset()
            return interp.process_packets(packets).total_cycles

        chain_cost = replay(gateway_result.packets)
        single_costs = {}
        for stage in chain.chain_stages:
            standalone = Castan(CastanConfig(**SMOKE)).analyze(get_nf(stage.nf_name))
            single_costs[stage.label] = replay(standalone.packets)
        assert chain_cost > max(single_costs.values()), (chain_cost, single_costs)
