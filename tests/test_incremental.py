"""Tests for the incremental solving subsystem and copy-on-write forking.

The load-bearing property is *equivalence*: replaying a path's constraint
stream through a :class:`SolverContext` must produce exactly the verdicts
and models that monolithic ``Solver`` calls over the full constraint list
produce.  Streams come from real engine runs and from a seeded random
generator, so both realistic and adversarial shapes are covered.
"""

import random

import pytest

from repro.cache.model import NoCacheModel
from repro.frontend.compiler import compile_nf
from repro.ir.instructions import BinOpKind, CmpKind
from repro.ir.module import Module
from repro.symbex.engine import SymbolicEngine
from repro.symbex.expr import (
    Const,
    Sym,
    evaluate,
    expr_eq,
    expr_ne,
    expr_not,
    make_binop,
    make_cmp,
    symbols_of,
)
from repro.symbex.incremental import (
    CONTEXT_STATS,
    SolverContext,
    clear_incremental_caches,
    replay_context,
)
from repro.symbex.searcher import CastanSearcher
from repro.symbex.solver import Solver
from repro.symbex.state import ExecutionState, Frame, StateStatus


def make_module(source, regions=None):
    module = Module("test")
    for name, (length, size, initial) in (regions or {}).items():
        module.add_region(name, length, size, initial=initial)
    compile_nf(module, source, entry="process")
    return module


def packet_symbols(index=0):
    return [
        Sym(f"p{index}.src_ip", 32),
        Sym(f"p{index}.dst_ip", 32),
        Sym(f"p{index}.src_port", 16),
        Sym(f"p{index}.dst_port", 16),
        Sym(f"p{index}.protocol", 8),
    ]


def assert_stream_equivalent(stream):
    """Replay ``stream`` incrementally and compare every query to monolithic solving."""
    context = SolverContext(Solver())
    prefix = []
    for constraint in stream:
        for probe in (constraint, expr_not(constraint)):
            incremental = context.feasible_with(probe)
            monolithic = Solver().quick_feasible(prefix + [probe])
            assert incremental == monolithic, (
                f"feasibility diverged on probe {probe} after prefix of {len(prefix)}: "
                f"incremental={incremental} monolithic={monolithic}"
            )
        context.add(constraint)
        prefix.append(constraint)
    assert context.unsat == (not Solver().quick_feasible(prefix))
    if context.unsat:
        return
    # Model/value equivalence for every symbol mentioned on the path.
    result = Solver().check(prefix)
    names = sorted({s.name for c in prefix for s in symbols_of(c)})
    for name in names:
        symbol = next(s for c in prefix for s in symbols_of(c) if s.name == name)
        value = context.solve_value(symbol)
        if result.is_sat:
            assert value == result.model.get(name, 0), (
                f"solve_value diverged for {name}: {value} != {result.model.get(name, 0)}"
            )


class TestDifferentialEngineStreams:
    """Replay constraint streams recorded from real symbolic executions."""

    def collect_streams(self, source, regions=None, max_states=200, **engine_kwargs):
        module = make_module(source, regions)
        engine = SymbolicEngine(module, "process", [packet_symbols()], **engine_kwargs)
        stats = engine.run(CastanSearcher(), max_states=max_states)
        states = stats.completed_states + stats.pending_states
        streams = [list(state.constraints) for state in states if state.constraints]
        assert streams, "expected at least one constrained path"
        return streams

    def test_branchy_bit_test_paths(self):
        streams = self.collect_streams(
            """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol != 17:
        return 0
    cost = 0
    i = 0
    while i < 6:
        if (dst_ip >> i) & 1 == 1:
            cost = cost + table[i]
        i = i + 1
    return cost
""",
            regions={"table": (8, 8, {i: 5 for i in range(8)})},
        )
        for stream in streams:
            assert_stream_equivalent(stream)

    def test_ordering_and_range_paths(self):
        streams = self.collect_streams(
            """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if src_port < 1024:
        if dst_port > 8000:
            return 2
        if dst_port != 53:
            return 1
        return 3
    if src_ip == dst_ip:
        return 4
    return 0
"""
        )
        for stream in streams:
            assert_stream_equivalent(stream)

    def test_symbolic_loop_bound_paths(self):
        streams = self.collect_streams(
            """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    i = 0
    while i < dst_port:
        i = i + 1
    return i
""",
            max_states=40,
            max_loop_iterations=8,
        )
        for stream in streams:
            assert_stream_equivalent(stream)


class TestDifferentialRandomStreams:
    """Seeded random constraint streams, including contradictory ones."""

    SYMBOLS = (Sym("x", 32), Sym("y", 32), Sym("z", 16), Sym("p", 8))

    def random_constraint(self, rng):
        sym = rng.choice(self.SYMBOLS)
        shape = rng.randrange(6)
        if shape == 0:  # trie bit test: (sym >> k) & 1 == b
            k = rng.randrange(sym.bits)
            bit = make_binop(BinOpKind.AND, make_binop(BinOpKind.LSHR, sym, Const(k)), Const(1))
            return expr_eq(bit, Const(rng.randrange(2)))
        if shape == 1:  # masked byte: (sym >> k) & 0xFF == c
            k = rng.randrange(max(1, sym.bits - 8))
            masked = make_binop(BinOpKind.AND, make_binop(BinOpKind.LSHR, sym, Const(k)), Const(0xFF))
            return expr_eq(masked, Const(rng.randrange(256)))
        if shape == 2:  # interval bound
            pred = rng.choice([CmpKind.ULT, CmpKind.ULE, CmpKind.UGT, CmpKind.UGE])
            return make_cmp(pred, sym, Const(rng.randrange(1, sym.mask)))
        if shape == 3:  # exclusion
            return expr_ne(sym, Const(rng.randrange(sym.mask + 1)))
        if shape == 4:  # affine equality: sym * a + b == c
            a = rng.choice([3, 5, 7, 9])
            b = rng.randrange(1 << 16)
            expr = make_binop(BinOpKind.ADD, make_binop(BinOpKind.MUL, sym, Const(a)), Const(b))
            return expr_eq(expr, Const(rng.randrange(1 << 32)))
        # xor equality: sym ^ c == d
        return expr_eq(
            make_binop(BinOpKind.XOR, sym, Const(rng.randrange(sym.mask + 1))),
            Const(rng.randrange(sym.mask + 1)),
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_random_streams_match_monolithic(self, seed):
        rng = random.Random(0xD1FF + seed)
        stream = [self.random_constraint(rng) for _ in range(rng.randrange(4, 14))]
        assert_stream_equivalent(stream)

    def test_contradictory_stream_goes_unsat(self):
        x = Sym("x", 32)
        stream = [expr_eq(x, Const(3)), expr_eq(x, Const(4))]
        context = replay_context(Solver(), stream)
        assert context.unsat
        assert not context.feasible_with(expr_eq(x, Const(3)))
        assert context.solve_value(x) is None
        assert context.check().is_unsat


class TestSolverContext:
    def test_constraint_log_survives_forks(self):
        x, y = Sym("x", 32), Sym("y", 32)
        parent = replay_context(Solver(), [expr_eq(x, Const(1))])
        child = parent.fork()
        child.add(expr_eq(y, Const(2)))
        parent.add(expr_ne(y, Const(9)))
        assert [str(c) for c in parent.constraints()] == ["(x eq 1)", "(y ne 9)"]
        assert [str(c) for c in child.constraints()] == ["(x eq 1)", "(y eq 2)"]

    def test_fork_isolation_of_domains(self):
        x = Sym("x", 32)
        parent = replay_context(Solver(), [make_cmp(CmpKind.ULT, x, Const(100))])
        child = parent.fork()
        child.add(expr_eq(x, Const(5)))
        # The child pinned x; the parent must still consider other values.
        assert child.solve_value(x) == 5
        assert parent.feasible_with(expr_eq(x, Const(7)))
        assert not child.feasible_with(expr_eq(x, Const(7)))

    def test_forked_siblings_share_memoised_verdicts(self):
        clear_incremental_caches()
        x = Sym("x", 32)
        parent = replay_context(Solver(), [make_cmp(CmpKind.ULT, x, Const(10))])
        left, right = parent.fork(), parent.fork()
        probe = expr_eq(x, Const(3))
        assert left.feasible_with(probe)
        hits_before = CONTEXT_STATS.memo_hits
        assert right.feasible_with(probe)
        assert CONTEXT_STATS.memo_hits == hits_before + 1

    def test_solve_value_respects_changing_defaults(self):
        # Regression: the value memo must not serve an entry computed under
        # different defaults.
        context = SolverContext(Solver())
        x = Sym("x", 8)
        assert context.solve_value(x, defaults={"x": 5}) == 5
        assert context.solve_value(x, defaults={"x": 7}) == 7
        assert context.solve_value(x) == 0

    def test_clearing_expression_caches_clears_identity_keyed_memos(self):
        # Regression: the memo tables key on id() of interned expressions,
        # so dropping the intern tables must drop the memos with them.
        from repro.symbex.expr import clear_expression_caches
        from repro.symbex.incremental import _FEASIBLE_MEMO, _SET_IDS

        context = replay_context(Solver(), [expr_eq(Sym("x", 32), Const(1))])
        context.feasible_with(expr_ne(Sym("x", 32), Const(2)))
        assert _FEASIBLE_MEMO and _SET_IDS
        clear_expression_caches()
        assert not _FEASIBLE_MEMO and not _SET_IDS

    def test_engine_routes_queries_through_context(self):
        module = make_module(
            """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    if protocol == 17:
        return 1
    return 0
"""
        )
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        queries_before = CONTEXT_STATS.queries
        stats = engine.run(CastanSearcher(), max_states=20)
        assert CONTEXT_STATS.queries > queries_before
        assert len(stats.completed_states) == 2


class TestCopyOnWriteState:
    def make_state(self):
        state = ExecutionState(
            cache_model=NoCacheModel(), num_packets=1, solver_context=SolverContext(Solver())
        )
        state.push_frame(
            Frame(function="f", block="entry", registers={"a": Const(1), "b": Const(2)})
        )
        state.write_memory("tbl", 3, Const(7))
        state.add_constraint(expr_eq(Sym("x", 32), Const(5)))
        return state

    def test_child_writes_do_not_leak_into_parent(self):
        parent = self.make_state()
        child = parent.fork()
        child.write_register("a", Const(99))
        child.write_memory("tbl", 3, Const(42))
        child.write_memory("heap", 0, Const(1))
        child.add_constraint(expr_ne(Sym("y", 32), Const(0)))
        child_frame = child.top_frame
        child_frame.block = "other"
        child_frame.index = 7

        assert parent.read_register("a") == Const(1)
        assert parent.read_memory("tbl", 3) == Const(7)
        assert parent.read_memory("heap", 0, default=0) == Const(0)
        assert len(parent.constraints) == 1
        parent_frame = parent.frames[-1]
        assert parent_frame.block == "entry" and parent_frame.index == 0

    def test_parent_writes_do_not_leak_into_child(self):
        parent = self.make_state()
        child = parent.fork()
        parent.write_register("b", Const(77))
        parent.write_memory("tbl", 3, Const(11))
        parent.add_constraint(expr_eq(Sym("z", 32), Const(1)))
        parent.top_frame.block = "elsewhere"

        assert child.read_register("b") == Const(2)
        assert child.read_memory("tbl", 3) == Const(7)
        assert len(child.constraints) == 1
        assert child.frames[-1].block == "entry"

    def test_deep_frames_stay_shared_until_written(self):
        parent = self.make_state()
        parent.push_frame(Frame(function="g", block="inner", registers={"r": Const(3)}))
        child = parent.fork()
        # Writing in the child's top frame must not corrupt the parent's.
        child.write_register("r", Const(30))
        assert parent.read_register("r") == Const(3)
        # Returning into the shared caller frame copies it on write.
        child.pop_frame()
        child.write_register("a", Const(100))
        assert parent.frames[0].registers["a"] == Const(1)

    def test_fork_during_engine_run_keeps_paths_independent(self):
        module = make_module(
            """
def process(src_ip, dst_ip, src_port, dst_port, protocol):
    counter[0] = counter[0] + 1
    if protocol == 17:
        counter[0] = counter[0] + 10
        return counter[0]
    return counter[0]
""",
            regions={"counter": (1, 8, {})},
        )
        engine = SymbolicEngine(module, "process", [packet_symbols()])
        stats = engine.run(CastanSearcher(), max_states=50)
        actions = sorted(state.packet_actions[0].value for state in stats.completed_states)
        assert actions == [1, 11]
        assert all(state.status is StateStatus.COMPLETED for state in stats.completed_states)
