"""Tests for the workload generators and the simulated testbed."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nf.common import VIP_ADDRESS
from repro.nf.registry import NF_NAMES, get_nf
from repro.testbed.cdf import CDF
from repro.testbed.dut import DeviceUnderTest, TestbedConfig
from repro.testbed.measure import _loss_fraction_at_rate, measure_latency, measure_throughput
from repro.workloads.generators import (
    _flow_for_index,
    make_castan_workload,
    make_manual_workload,
    make_one_packet_workload,
    make_unirand_castan_workload,
    make_unirand_workload,
    make_zipfian_workload,
)
from repro.workloads.zipf import zipf_flow_counts, zipf_sample, zipf_weights


@pytest.fixture(scope="module")
def lb_nf():
    return get_nf("lb-hash-table")


@pytest.fixture(scope="module")
def nat_nf():
    return get_nf("nat-hash-table")


@pytest.fixture(scope="module")
def lpm_nf():
    return get_nf("lpm-patricia")


class TestZipf:
    def test_weights_are_decreasing(self):
        weights = zipf_weights(10)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_sample_range_and_determinism(self):
        sample = zipf_sample(500, 50, seed=3)
        assert all(0 <= rank < 50 for rank in sample)
        assert sample == zipf_sample(500, 50, seed=3)

    def test_flow_counts_sum(self):
        counts = zipf_flow_counts(1000, 40, seed=1)
        assert sum(counts) == 1000
        assert counts[0] > counts[-1]  # heavy head


class TestGenerators:
    def test_one_packet_workload(self, lpm_nf):
        workload = make_one_packet_workload(lpm_nf, packets=10)
        assert workload.packet_count == 10
        assert workload.flow_count == 1

    def test_zipfian_sizes_and_skew(self, lb_nf):
        workload = make_zipfian_workload(lb_nf, num_packets=800, num_flows=60)
        assert workload.packet_count == 800
        assert workload.flow_count <= 60
        assert workload.flow_count > 20

    def test_unirand_every_packet_its_own_flow(self, lb_nf):
        workload = make_unirand_workload(lb_nf, num_packets=300)
        assert workload.packet_count == 300
        assert workload.flow_count == 300

    def test_unirand_castan_flow_count(self, lb_nf):
        workload = make_unirand_castan_workload(lb_nf, castan_flow_count=17)
        assert workload.flow_count == 17

    def test_lb_workloads_respect_vip_hint(self, lb_nf):
        for workload in (
            make_zipfian_workload(lb_nf, num_packets=200, num_flows=20),
            make_unirand_workload(lb_nf, num_packets=100),
        ):
            assert all(p.dst_ip == VIP_ADDRESS for p in workload.packets)

    def test_nat_workloads_respect_internal_prefix(self, nat_nf):
        workload = make_unirand_workload(nat_nf, num_packets=100)
        assert all(p.src_ip >> 24 == 10 for p in workload.packets)

    def test_manual_workload_only_when_defined(self, lpm_nf, lb_nf):
        assert make_manual_workload(lpm_nf) is not None
        assert make_manual_workload(lb_nf) is None

    def test_castan_workload_wrapper_and_looping(self, lpm_nf):
        packets = make_one_packet_workload(lpm_nf, packets=3).packets
        workload = make_castan_workload(packets)
        assert workload.packet_count == 3
        looped = workload.looped(10)
        assert len(looped) == 10
        assert looped[3].flow_tuple == packets[0].flow_tuple


class TestFlowInjectivity:
    """`_flow_for_index` must be injective for every NF's workload hints:
    "unirand" is documented as one flow per packet, so a collision would
    silently break it (regression: the NAT branch's ``| 1`` folded pairs
    of hosts onto one source address)."""

    @pytest.mark.parametrize("nf_name", NF_NAMES)
    def test_dense_index_ranges_are_collision_free(self, nf_name):
        nf = get_nf(nf_name)
        rng = random.Random(0)
        flows = [_flow_for_index(nf, i, rng) for i in range(4000)]
        assert len(set(flows)) == len(flows)

    @pytest.mark.parametrize("nf_name", NF_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=60_000 * 0xFFFF),
            min_size=2,
            max_size=200,
            unique=True,
        )
    )
    def test_scattered_indices_are_collision_free(self, nf_name, indices):
        nf = get_nf(nf_name)
        rng = random.Random(1)
        flows = [_flow_for_index(nf, i, rng) for i in indices]
        assert len(set(flows)) == len(flows)

    def test_nat_hosts_are_not_forced_odd(self):
        nf = get_nf("nat-hash-table")
        rng = random.Random(2)
        hosts = {_flow_for_index(nf, i, rng).src_ip & 0xFFFFFF for i in range(64)}
        assert any(host % 2 == 0 for host in hosts)


class TestCDF:
    def test_median_and_percentiles(self):
        cdf = CDF(samples=list(map(float, range(1, 101))))
        assert cdf.median == 50.0
        assert cdf.p95 == 95.0
        assert cdf.minimum == 1.0 and cdf.maximum == 100.0

    def test_series_is_monotone(self):
        cdf = CDF(samples=[5.0, 1.0, 3.0, 2.0, 4.0])
        series = cdf.series(points=5)
        values = [v for v, _ in series]
        fractions = [p for _, p in series]
        assert values == sorted(values)
        assert fractions[-1] == 1.0

    def test_empty_cdf(self):
        cdf = CDF()
        assert cdf.median == 0.0 and cdf.series() == []

    def test_render_contains_label(self):
        assert "lat" in CDF(samples=[1.0, 2.0]).render(label="lat")

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            CDF(samples=[1.0]).percentile(0.0)


class TestTestbed:
    def test_latency_includes_wire_overhead(self, lpm_nf):
        workload = make_one_packet_workload(lpm_nf)
        result = measure_latency(lpm_nf, workload, replay_packets=200)
        config = TestbedConfig()
        assert result.median_latency_ns > config.wire_overhead_ns
        assert result.replayed_packets == 200

    def test_nop_is_fastest(self):
        nop = get_nf("nop")
        patricia = get_nf("lpm-patricia")
        workload_nop = make_one_packet_workload(nop)
        workload_lpm = make_one_packet_workload(patricia)
        nop_result = measure_latency(nop, workload_nop, replay_packets=300)
        lpm_result = measure_latency(patricia, workload_lpm, replay_packets=300)
        assert lpm_result.median_latency_ns > nop_result.median_latency_ns
        assert lpm_result.deviation_from(nop_result) > 0

    def test_unirand_slower_than_one_packet_for_stateful_nf(self, lb_nf):
        one = measure_latency(lb_nf, make_one_packet_workload(lb_nf), replay_packets=400)
        unirand = measure_latency(
            lb_nf, make_unirand_workload(lb_nf, num_packets=400), replay_packets=400
        )
        assert unirand.counter_summary.median_cycles >= one.counter_summary.median_cycles

    def test_throughput_nop_close_to_calibration(self):
        nop = get_nf("nop")
        result = measure_throughput(nop, make_one_packet_workload(nop), replay_packets=300)
        assert 3.0 < result.max_rate_mpps < 3.8  # calibrated to ~3.45 Mpps
        assert result.loss_at_max < 0.01

    def test_throughput_decreases_with_heavier_workload(self, lb_nf):
        one = measure_throughput(lb_nf, make_one_packet_workload(lb_nf), replay_packets=300)
        unirand = measure_throughput(
            lb_nf, make_unirand_workload(lb_nf, num_packets=300), replay_packets=300
        )
        assert unirand.max_rate_mpps <= one.max_rate_mpps

    def test_dut_reset_restores_cold_state(self, lb_nf):
        dut = DeviceUnderTest(lb_nf)
        workload = make_one_packet_workload(lb_nf)
        first = dut.process(workload.packets[0])
        dut.reset()
        again = dut.process(workload.packets[0])
        assert again.l3_misses >= first.l3_misses  # cold caches again

    @pytest.mark.parametrize("nf_name", ["nop", "lpm-patricia", "lb-hash-table"])
    def test_reported_rate_really_is_loss_free(self, nf_name):
        """Invariant: the loss measured *at the reported rate* is below the
        threshold (loss is not monotone in offered rate, so the bisection
        alone cannot guarantee this)."""
        nf = get_nf(nf_name)
        workload = make_unirand_workload(nf, num_packets=300)
        config = TestbedConfig()
        result = measure_throughput(nf, workload, config=config, replay_packets=300)
        assert result.loss_at_max < config.loss_threshold
        assert result.max_rate_mpps > 0

    def test_loss_simulation_deque_matches_reference(self):
        """The O(1) deque retirement must behave exactly like the old O(n)
        list-filter implementation."""

        def reference_loss(service_times_ns, rate_mpps, queue_capacity):
            if rate_mpps <= 0:
                return 0.0
            interval_ns = 1000.0 / rate_mpps
            queue_free_at = []
            server_free_at = 0.0
            dropped = 0
            now = 0.0
            for service in service_times_ns:
                now += interval_ns
                queue_free_at = [t for t in queue_free_at if t > now]
                if len(queue_free_at) >= queue_capacity:
                    dropped += 1
                    continue
                start = max(now, server_free_at)
                server_free_at = start + service
                queue_free_at.append(server_free_at)
            return dropped / max(1, len(service_times_ns))

        rng = random.Random(42)
        service_times = [rng.uniform(100.0, 4000.0) for _ in range(500)]
        for rate in (0.1, 0.5, 1.0, 2.5, 5.0, 10.0):
            assert _loss_fraction_at_rate(service_times, rate, 32) == pytest.approx(
                reference_loss(service_times, rate, 32)
            )
