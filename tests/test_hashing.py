"""Tests for the flow hash, key packing and rainbow-table inversion."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.compiler import compile_nf
from repro.hashing.functions import (
    FLOW_HASH_BITS,
    FLOW_HASH_DIALECT_SOURCE,
    flow_hash16,
    flow_hash16_column,
    lb_flow_key,
    lb_key_fields,
    nat_forward_key,
    nat_key_fields,
    nat_reverse_key,
)
from repro.hashing.rainbow import (
    BruteForceInverter,
    RainbowTable,
    build_flow_rainbow_table,
    exhaustive_preimages,
    generic_key_sampler,
    udp_flow_key_sampler,
)
from repro.ir.module import Module
from repro.perf.interpreter import ConcreteInterpreter


class TestFlowHash:
    def test_output_width(self):
        for key in (0, 1, 2**64 - 1, 0xDEADBEEF):
            assert 0 <= flow_hash16(key) < (1 << FLOW_HASH_BITS)

    def test_deterministic(self):
        assert flow_hash16(12345) == flow_hash16(12345)

    def test_spreads_over_buckets(self):
        buckets = {flow_hash16(k) % 256 for k in range(2000)}
        assert len(buckets) > 200

    def test_dialect_source_matches_python(self):
        module = Module("hash")
        compile_nf(module, FLOW_HASH_DIALECT_SOURCE, entry="flow_hash16")
        interpreter = ConcreteInterpreter(module, "flow_hash16")
        rng = random.Random(7)
        for _ in range(200):
            key = rng.getrandbits(64)
            assert interpreter.call_function("flow_hash16", [key]) == flow_hash16(key)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    @settings(max_examples=50)
    def test_key_packing_roundtrip(self, ip, sport, dport):
        assert lb_key_fields(lb_flow_key(ip, sport, dport)) == (ip, sport, dport)
        assert nat_key_fields(nat_forward_key(ip, sport, dport)) == (ip, sport, dport)
        assert nat_key_fields(nat_reverse_key(ip, sport, dport)) == (ip, sport, dport)

    def test_nat_keys_share_external_endpoint(self):
        forward = nat_forward_key(0x0A000001, 1234, 80)
        reverse = nat_reverse_key(0x08080808, 80, 20000)
        # The reverse key embeds the destination endpoint of the forward flow.
        assert nat_key_fields(reverse)[1] == nat_key_fields(forward)[2]


class TestFlowHashColumn:
    """The columnar flow hash pinned bit-exact against the scalar reference."""

    def test_column_matches_scalar(self):
        if flow_hash16_column is None:
            pytest.skip("numpy not installed (the [vector] extra)")
        rng = random.Random(17)
        keys = [0, 1, 2**64 - 1, 0xDEADBEEF] + [rng.getrandbits(64) for _ in range(2000)]
        assert flow_hash16_column(keys) == [flow_hash16(k) for k in keys]

    def test_column_returns_python_ints(self):
        if flow_hash16_column is None:
            pytest.skip("numpy not installed (the [vector] extra)")
        for value in flow_hash16_column([3, 2**63]):
            assert type(value) is int

    def test_empty_column(self):
        if flow_hash16_column is None:
            pytest.skip("numpy not installed (the [vector] extra)")
        assert flow_hash16_column([]) == []


class TestTailoredSamplerStream:
    """The inlined getrandbits rejection loops match the naive implementation.

    ``udp_flow_key_sampler`` hand-inlines ``Random.randrange(60000)`` and
    ``Random.choice`` as raw ``getrandbits`` rejection loops; the rainbow
    build's lockstep hoisting relies on the sampler being a pure function of
    its seed.  This pins the stream draw-for-draw against a fresh
    ``random.Random`` running the naive calls.
    """

    @staticmethod
    def _naive_reference(seed: int) -> int:
        service_ports = (53, 80, 123, 443, 8080, 8443)
        rng = random.Random(seed)
        src_ip = 0x0A000000 | rng.getrandbits(24)
        src_port = 1024 + rng.randrange(60000)
        return lb_flow_key(src_ip, src_port, rng.choice(service_ports))

    def test_matches_naive_reference(self):
        rng = random.Random(23)
        seeds = [0, 1, 2**64 - 1] + [rng.getrandbits(64) for _ in range(3000)]
        for seed in seeds:
            assert udp_flow_key_sampler(seed) == self._naive_reference(seed)

    def test_pure_function_of_seed(self):
        # The shared module-level Random must not leak state across calls.
        first = udp_flow_key_sampler(99)
        udp_flow_key_sampler(12345)
        assert udp_flow_key_sampler(99) == first


class TestRainbowTable:
    @pytest.fixture(scope="class")
    def table(self):
        return build_flow_rainbow_table(tailored=True, chain_length=24, num_chains=1500, seed=5)

    def test_inversion_produces_real_preimages(self, table):
        rng = random.Random(3)
        successes = 0
        for _ in range(40):
            key = udp_flow_key_sampler(rng.getrandbits(64))
            target = flow_hash16(key)
            for candidate in table.invert(target, limit=4):
                assert flow_hash16(candidate) == target
                successes += 1
                break
        assert successes > 10  # coverage is probabilistic but must be substantial

    def test_tailored_keys_look_like_udp_flows(self, table):
        key = table.invert(flow_hash16(udp_flow_key_sampler(1)), limit=1)
        if key:
            src_ip, src_port, dst_port = lb_key_fields(key[0])
            assert (src_ip >> 24) == 0x0A
            assert 1024 <= src_port < 65536
            assert dst_port in (53, 80, 123, 443, 8080, 8443)

    def test_coverage_estimate_nontrivial(self, table):
        assert table.coverage_estimate(samples=60, seed=2) > 0.2

    def test_stats_recorded(self, table):
        before = table.stats.lookups
        table.invert(123, limit=1)
        assert table.stats.lookups == before + 1
        assert table.stats.chains == 1500

    def test_rejects_degenerate_chain_length(self):
        with pytest.raises(ValueError):
            RainbowTable(flow_hash16, generic_key_sampler, chain_length=1)

    def test_lockstep_build_matches_per_chain_build(self):
        """The columnar (position-major) build yields the identical table.

        Passing ``flow_hash16`` through a wrapper defeats the ``is`` check
        in ``RainbowTable._build``, forcing the scalar per-chain loop — the
        two construction orders must produce the same chains dict.
        """
        kwargs = dict(
            key_sampler=udp_flow_key_sampler, chain_length=8, num_chains=300, seed=9
        )
        columnar = RainbowTable(hash_fn=flow_hash16, **kwargs)
        scalar = RainbowTable(hash_fn=lambda k: flow_hash16(k), **kwargs)
        assert columnar._chains == scalar._chains
        assert columnar.stats.distinct_endpoints == scalar.stats.distinct_endpoints

    def test_brute_force_inverter(self):
        inverter = BruteForceInverter(flow_hash16, udp_flow_key_sampler)
        target = flow_hash16(udp_flow_key_sampler(42))
        # With a 16-bit hash and a 250k-key budget the expected number of
        # preimages is ~4; the seeded RNG makes the outcome deterministic.
        found = inverter.invert(target, limit=1, budget=250_000)
        assert found and all(flow_hash16(k) == target for k in found)

    def test_exhaustive_preimages_small_space(self):
        keys = list(range(5000))
        table = exhaustive_preimages(flow_hash16, keys)
        for hash_value, preimages in list(table.items())[:20]:
            assert all(flow_hash16(k) == hash_value for k in preimages)
