"""Tables 1-5 of the evaluation (§5.2-5.5).

* Table 1 — maximum throughput (Mpps) per NF and workload
* Table 2 — median instructions retired per packet
* Table 3 — median L3 misses per packet
* Table 4 — CASTAN workload sizes and analysis run times
* Table 5 — median latency deviation from the NOP baseline
"""

from benchmarks.conftest import run_once
from repro.eval.tables import (
    table1_throughput,
    table2_instructions,
    table3_l3_misses,
    table4_analysis,
    table5_deviation,
)


def test_table1_throughput(benchmark, emit):
    rows, text = run_once(benchmark, table1_throughput)
    emit(text)
    # Throughput never exceeds the NOP bound, and UniRand pressure lowers it.
    for nf, value in rows["unirand"].items():
        assert value <= rows["nop"][nf] + 0.01


def test_table2_instructions(benchmark, emit):
    rows, text = run_once(benchmark, table2_instructions)
    emit(text)
    # Algorithmic-complexity NFs: CASTAN's workload retires at least as many
    # instructions per packet as typical Zipfian traffic.
    assert rows["castan"]["nat-unbalanced-tree"] >= rows["zipfian"]["nat-unbalanced-tree"]
    assert rows["castan"]["lpm-patricia"] >= rows["zipfian"]["lpm-patricia"]


def test_table3_l3_misses(benchmark, emit):
    rows, text = run_once(benchmark, table3_l3_misses)
    emit(text)
    # Memory-adversarial NFs: CASTAN induces at least as many L3 misses as
    # the flow-count-matched UniRand control on the 1-stage lookup table.
    assert rows["castan"]["lpm-direct"] >= rows["unirand-castan"]["lpm-direct"]


def test_table4_analysis(benchmark, emit):
    rows, text = run_once(benchmark, table4_analysis)
    emit(text)
    assert len(rows) == 11
    for nf, row in rows.items():
        assert row["packets"] >= 1
        assert row["analysis_seconds"] >= 0.0


def test_table5_deviation(benchmark, emit):
    rows, text = run_once(benchmark, table5_deviation)
    emit(text)
    assert len(rows) == 11
    # Every NF adds latency over the NOP baseline under typical traffic.
    assert all(row["zipfian"] > 0 for row in rows.values())
