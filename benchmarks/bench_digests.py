"""Workload-digest regression check (the ``bench-regression`` CI gate).

Synthesizes the smoke-scale adversarial workload for every evaluation NF
with the byte-stable monolithic search and reduces each to a SHA-256 digest
over the concatenated on-wire packet bytes.  The checked-in
``BENCH_smoke_digests.json`` baseline pins those digests: any revision that
changes the synthesized workloads — intentionally or not — must regenerate
the baseline, and CI fails until it does.

Regenerate the baseline::

    PYTHONPATH=src python benchmarks/bench_digests.py --out BENCH_smoke_digests.json

Check the current tree against it (exit code 1 on drift)::

    PYTHONPATH=src python benchmarks/bench_digests.py --check BENCH_smoke_digests.json

The configuration is pinned in this file (not taken from the environment)
so the digests mean the same thing on every machine; ``--workers N``
optionally computes the portfolio across worker processes, which must not —
and does not — change any digest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.config import CastanConfig
from repro.core.workload import workload_digest
from repro.eval.experiments import EVALUATION_NFS
from repro.parallel.portfolio import PortfolioRunner

#: Pinned smoke-scale configuration: small enough for CI, deterministic
#: (no wall-clock deadline), byte-stable monolithic search.
SMOKE_MAX_STATES = 60
SMOKE_NUM_PACKETS = 5


def smoke_config(exec_mode: str = "compiled", branch_batching: bool = True) -> CastanConfig:
    return CastanConfig(
        max_states=SMOKE_MAX_STATES,
        num_packets=SMOKE_NUM_PACKETS,
        deadline_seconds=None,
        exec_mode=exec_mode,
        branch_batching=branch_batching,
    )


def compute_report(
    nfs: tuple[str, ...] = EVALUATION_NFS,
    workers: int = 0,
    exec_mode: str = "compiled",
    branch_batching: bool = True,
) -> dict:
    """Digest (and cost) of the smoke-scale workload for every NF.

    ``exec_mode`` selects the engine tier; every tier must reproduce the
    same digests, so the baseline check doubles as the cross-tier identity
    gate (the config block deliberately omits the mode — and omits
    ``branch_batching``, which must be output-invariant the same way).
    """
    runner = PortfolioRunner(
        config=smoke_config(exec_mode, branch_batching), workers=workers
    )
    results = runner.run_map(nfs)
    digests = {name: workload_digest(result.packets) for name, result in results.items()}
    best_costs = {name: result.best_state_cost for name, result in results.items()}
    return {
        "benchmark": "bench_digests",
        "config": {
            "max_states": SMOKE_MAX_STATES,
            "num_packets": SMOKE_NUM_PACKETS,
            "search_mode": "monolithic",
        },
        "digests": digests,
        "best_costs": best_costs,
    }


def check_against_baseline(report: dict, baseline: dict) -> list[str]:
    """Human-readable drift descriptions (empty = no drift)."""
    problems: list[str] = []
    if baseline.get("config") != report["config"]:
        problems.append(
            f"config drift: baseline {baseline.get('config')} vs current {report['config']}"
        )
    baseline_digests = baseline.get("digests", {})
    for name, digest in report["digests"].items():
        expected = baseline_digests.get(name)
        if expected is None:
            problems.append(f"{name}: missing from baseline")
        elif expected != digest:
            problems.append(f"{name}: digest {digest[:16]}... != baseline {expected[:16]}...")
    for name in baseline_digests:
        if name not in report["digests"]:
            problems.append(f"{name}: in baseline but not computed")
    return problems


# -- pytest entry point (not collected by tier-1; run explicitly) --------------


def test_digest_determinism_smoke():
    """The digest of one NF is stable across two back-to-back computations."""
    report_a = compute_report(nfs=("lpm-patricia",))
    report_b = compute_report(nfs=("lpm-patricia",))
    assert report_a["digests"] == report_b["digests"]


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nfs", nargs="*", default=list(EVALUATION_NFS), help="NF names to run")
    parser.add_argument("--workers", type=int, default=0, help="portfolio worker processes")
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    parser.add_argument("--check", default=None, help="compare against this baseline JSON")
    parser.add_argument(
        "--exec-mode",
        default="compiled",
        choices=("compiled", "interp", "vector"),
        help="engine tier to run (all tiers must match the same baseline)",
    )
    parser.add_argument(
        "--branch-batching",
        default="on",
        choices=("on", "off"),
        help="vector-tier group branch resolution (both settings must match "
        "the same baseline)",
    )
    args = parser.parse_args(argv)

    report = compute_report(
        tuple(args.nfs),
        workers=args.workers,
        exec_mode=args.exec_mode,
        branch_batching=args.branch_batching == "on",
    )
    for name in args.nfs:
        print(f"{name:>20}: {report['digests'][name]}  cost={report['best_costs'][name]}")
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        problems = check_against_baseline(report, baseline)
        if problems:
            print(f"\nDIGEST DRIFT vs {args.check}:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(f"\nall {len(report['digests'])} digests match {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
