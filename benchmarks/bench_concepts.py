"""Figures 1-3: the concept figures (memory hierarchy bit layout, annotated
ICFG potential costs, hash havoc/reconciliation flow)."""

from benchmarks.conftest import run_once
from repro.cache.hierarchy import HierarchyConfig
from repro.cfg.costs import annotate_costs, render_annotated_cfg
from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.symbex.havoc import havoc_hash_consistency


def test_fig01_memory_hierarchy_layout(benchmark, emit):
    """Figure 1: bit layout of the (simulated) processor memory hierarchy."""

    def run():
        return HierarchyConfig().describe_bit_layout()

    layout = run_once(benchmark, run)
    emit("Figure 1: simulated memory hierarchy\n" + layout)
    assert "L3 slice" in layout


def test_fig02_annotated_icfg(benchmark, emit):
    """Figure 2: ICFG nodes annotated with potential cost (loop bound M=2)."""

    def run():
        nf = get_nf("lpm-patricia")
        annotation = annotate_costs(nf.module, nf.entry, loop_bound=2)
        return render_annotated_cfg(annotation, nf.entry)

    rendering = run_once(benchmark, run)
    emit("Figure 2: annotated ICFG (LPM Patricia trie)\n" + rendering)
    assert "potential cost" in rendering


def test_fig03_hash_reconciliation(benchmark, emit):
    """Figure 3: havoc a hash, then reconcile it with a rainbow table."""

    def run():
        nf = get_nf("lb-hash-table")
        config = CastanConfig(max_states=150, deadline_seconds=8.0, num_packets=4)
        result = Castan(config).analyze(nf)
        outcome = result.havoc_outcome
        consistency = {}
        if outcome is not None:
            consistency = havoc_hash_consistency(
                outcome.reconciled, outcome.model, nf.hash_functions
            )
        return result, outcome, consistency

    result, outcome, consistency = run_once(benchmark, run)
    lines = ["Figure 3: hash havoc / reconciliation flow (LB hash table)"]
    if outcome is None:
        lines.append("no havocs were recorded")
    else:
        lines.append(f"havocs recorded:   {outcome.total}")
        lines.append(f"reconciled:        {len(outcome.reconciled)}")
        lines.append(f"failed:            {len(outcome.failed)}")
        lines.append(f"solver attempts:   {outcome.attempts}")
        lines.append(f"end-to-end hash(key)==value checks: {consistency}")
    emit("\n".join(lines))
    assert result.packet_count > 0
