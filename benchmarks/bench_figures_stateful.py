"""Figures 9-15: the stateful NF experiments (§5.3-5.4).

* Fig. 9  — latency CDF, NAT with an unbalanced tree
* Fig. 10 — CPU reference-cycles CDF, NAT with an unbalanced tree
* Fig. 11 — latency CDF, NAT with a red-black tree
* Fig. 12 — latency CDF, LB with a hash table
* Fig. 13 — latency CDF, LB with a hash ring
* Fig. 14 — latency CDF, NAT with a hash table
* Fig. 15 — latency CDF, NAT with a hash ring
"""

from benchmarks.conftest import run_once
from repro.eval.tables import figure_cycles_cdfs, figure_latency_cdfs, render_figure


def _latency_figure(benchmark, emit, nf_name, title):
    cdfs = run_once(benchmark, lambda: figure_latency_cdfs(nf_name))
    emit(render_figure(title, cdfs))
    assert cdfs["castan"].count > 0
    return cdfs


def test_fig09_nat_unbalanced_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "nat-unbalanced-tree", "Figure 9: latency CDF, NAT unbalanced tree (ns)"
    )
    # The handful of CASTAN packets must beat the typical Zipfian traffic.
    assert cdfs["castan"].median > cdfs["1-packet"].median


def test_fig10_nat_unbalanced_cycles(benchmark, emit):
    cdfs = run_once(benchmark, lambda: figure_cycles_cdfs("nat-unbalanced-tree"))
    emit(render_figure("Figure 10: reference cycles CDF, NAT unbalanced tree", cdfs))
    assert cdfs["manual"].median > cdfs["1-packet"].median


def test_fig11_nat_rbtree_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "nat-red-black-tree", "Figure 11: latency CDF, NAT red-black tree (ns)"
    )
    # Rebalancing defeats the attack: latency tracks flow count, so the big
    # UniRand workload dominates the small CASTAN one.
    assert cdfs["unirand"].median >= cdfs["castan"].median


def test_fig12_lb_hashtable_latency(benchmark, emit):
    _latency_figure(
        benchmark, emit, "lb-hash-table", "Figure 12: latency CDF, LB hash table (ns)"
    )


def test_fig13_lb_hashring_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "lb-hash-ring", "Figure 13: latency CDF, LB hash ring (ns)"
    )
    assert cdfs["castan"].median >= cdfs["1-packet"].median


def test_fig14_nat_hashtable_latency(benchmark, emit):
    _latency_figure(
        benchmark, emit, "nat-hash-table", "Figure 14: latency CDF, NAT hash table (ns)"
    )


def test_fig15_nat_hashring_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "nat-hash-ring", "Figure 15: latency CDF, NAT hash ring (ns)"
    )
    assert cdfs["castan"].median >= cdfs["1-packet"].median
