"""Ablation benchmarks for the design choices DESIGN.md calls out.

* loop bound M (§3.4) — effect on the potential-cost heuristic;
* searcher — CASTAN's max-cost searcher vs DFS/BFS/random;
* cache model — contention-set model vs no cache model on LPM direct lookup;
* rainbow-table tailoring (§3.5) — tailored vs generic key samplers.
"""

from benchmarks.conftest import run_once
from repro.cfg.costs import annotate_costs
from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.hashing.rainbow import build_flow_rainbow_table
from repro.nf.registry import get_nf


def test_ablation_loop_bound(benchmark, emit):
    """Entry potential cost as the loop bound M grows."""

    def run():
        nf = get_nf("lpm-patricia")
        return {
            m: annotate_costs(nf.module, nf.entry, loop_bound=m).entry_cost(nf.entry)
            for m in (1, 2, 3, 4)
        }

    costs = run_once(benchmark, run)
    emit(
        "Ablation: potential-cost loop bound M (LPM Patricia)\n"
        + "\n".join(f"  M={m}: entry potential cost {c} cycles" for m, c in costs.items())
    )
    assert costs[2] > costs[1]
    assert costs[4] >= costs[3] >= costs[2]


def test_ablation_searcher(benchmark, emit):
    """Worst-path cost discovered by each searcher under an equal state budget."""

    def run():
        results = {}
        for searcher in ("castan", "dfs", "bfs", "random"):
            config = CastanConfig(
                max_states=120, deadline_seconds=6.0, num_packets=5, searcher=searcher
            )
            results[searcher] = Castan(config).analyze(get_nf("nat-unbalanced-tree")).best_state_cost
        return results

    costs = run_once(benchmark, run)
    emit(
        "Ablation: searcher (NAT unbalanced tree, 120-state budget)\n"
        + "\n".join(f"  {name:8s}: best path cost {cost} cycles" for name, cost in costs.items())
    )
    assert costs["castan"] >= max(costs["bfs"], costs["random"]) * 0.9


def test_ablation_cache_model(benchmark, emit):
    """Predicted DRAM accesses with and without the contention-set model."""

    def run():
        out = {}
        for model in ("contention", "none"):
            config = CastanConfig(
                max_states=50, deadline_seconds=6.0, num_packets=20, cache_model=model
            )
            result = Castan(config).analyze(get_nf("lpm-direct"))
            out[model] = sum(result.metrics.predicted_dram_accesses_per_packet)
        return out

    dram = run_once(benchmark, run)
    emit(
        "Ablation: cache model (LPM 1-stage direct lookup, 20 packets)\n"
        + "\n".join(f"  {name:10s}: {misses} predicted DRAM accesses" for name, misses in dram.items())
    )
    assert dram["contention"] >= dram["none"]


def test_ablation_rainbow_tailoring(benchmark, emit):
    """Inversion coverage of tailored vs generic rainbow tables (§3.5)."""

    def run():
        tailored = build_flow_rainbow_table(tailored=True, chain_length=24, num_chains=1500)
        generic = build_flow_rainbow_table(tailored=False, chain_length=24, num_chains=1500)
        return {
            "tailored": tailored.coverage_estimate(samples=100),
            "generic": generic.coverage_estimate(samples=100),
        }

    coverage = run_once(benchmark, run)
    emit(
        "Ablation: rainbow-table key sampling\n"
        + "\n".join(f"  {name:9s}: {value:.2%} of hash values invertible" for name, value in coverage.items())
    )
    assert 0.0 <= coverage["generic"] <= 1.0 and 0.0 <= coverage["tailored"] <= 1.0
