"""Parallel portfolio / sharded-beam speedup and output-identity benchmark.

Measures two things for the process-parallel subsystem (``repro.parallel``):

* **speedup** — wall-clock of the 17-NF evaluation portfolio run
  sequentially vs. fanned out over ``--workers`` processes, and of the
  sharded beam search at ``workers=0`` vs. ``workers=N`` on a few NFs;
* **identity** — the parallel runs must synthesize byte-identical workloads
  (and reach equal best-state costs) to their sequential references.  The
  process exits non-zero on any mismatch, which is what lets CI use this
  benchmark as a regression gate.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel.py --workers 4 --out BENCH_parallel.json

or under pytest (smoke-sized identity check)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q

The exploration budget follows ``REPRO_EVAL_SCALE`` (smoke / quick / full);
wall-clock deadlines are disabled so runs are deterministic.  Speedup is
hardware-dependent (a single-core container shows none); identity holds
everywhere.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.core.workload import workload_digest
from repro.eval.experiments import EVALUATION_NFS
from repro.nf.registry import get_nf
from repro.parallel.portfolio import PortfolioRunner

_SCALE_STATES = {"smoke": 60, "quick": 250, "full": 2500}
DEFAULT_WORKERS = 4
#: NFs used for the (more expensive) sharded-beam comparison.
SHARD_NFS = ("lpm-patricia", "nat-hash-table", "lb-red-black-tree")


def _max_states() -> int:
    scale = os.environ.get("REPRO_EVAL_SCALE", "quick").lower()
    return _SCALE_STATES.get(scale, _SCALE_STATES["quick"])


def _digest(result: CastanResult) -> str:
    return workload_digest(result.packets)


def bench_portfolio(nfs: tuple[str, ...], max_states: int, workers: int) -> dict:
    """Sequential vs. parallel portfolio over ``nfs``: speedup + identity."""
    config = CastanConfig(max_states=max_states, deadline_seconds=None)

    start = time.perf_counter()
    sequential = PortfolioRunner(config=config, workers=0).run(nfs)
    wall_sequential = time.perf_counter() - start

    start = time.perf_counter()
    parallel = PortfolioRunner(config=config, workers=workers).run(nfs)
    wall_parallel = time.perf_counter() - start

    records = []
    for name, seq, par in zip(nfs, sequential, parallel):
        records.append(
            {
                "nf": name,
                "digest": _digest(seq),
                "best_state_cost": seq.best_state_cost,
                "identical": _digest(seq) == _digest(par)
                and seq.best_state_cost == par.best_state_cost,
            }
        )
    return {
        "workers": workers,
        "wall_sequential_seconds": round(wall_sequential, 4),
        "wall_parallel_seconds": round(wall_parallel, 4),
        "speedup": round(wall_sequential / wall_parallel, 3) if wall_parallel else None,
        "identical": all(record["identical"] for record in records),
        "nfs": records,
    }


def bench_shards(nfs: tuple[str, ...], max_states: int, workers: int) -> dict:
    """Serial vs. parallel sharded beam search per NF: speedup + identity."""
    records = []
    wall_serial_total = 0.0
    wall_parallel_total = 0.0
    for name in nfs:

        def analyze(worker_count: int) -> tuple[CastanResult, float]:
            config = CastanConfig(
                max_states=max_states,
                deadline_seconds=None,
                search_mode="beam",
                parallel_mode="shards",
                workers=worker_count,
            )
            start = time.perf_counter()
            result = Castan(config).analyze(get_nf(name))
            return result, time.perf_counter() - start

        serial, wall_serial = analyze(0)
        parallel, wall_parallel = analyze(workers)
        wall_serial_total += wall_serial
        wall_parallel_total += wall_parallel
        records.append(
            {
                "nf": name,
                "digest": _digest(serial),
                "best_state_cost": serial.best_state_cost,
                "states_explored": serial.states_explored,
                "search_rounds": serial.search_rounds,
                "wall_serial_seconds": round(wall_serial, 4),
                "wall_parallel_seconds": round(wall_parallel, 4),
                "identical": _digest(serial) == _digest(parallel)
                and serial.best_state_cost == parallel.best_state_cost,
            }
        )
    return {
        "workers": workers,
        "wall_serial_seconds": round(wall_serial_total, 4),
        "wall_parallel_seconds": round(wall_parallel_total, 4),
        "speedup": (
            round(wall_serial_total / wall_parallel_total, 3) if wall_parallel_total else None
        ),
        "identical": all(record["identical"] for record in records),
        "nfs": records,
    }


def run_benchmark(
    nfs: tuple[str, ...] = EVALUATION_NFS,
    max_states: int | None = None,
    workers: int = DEFAULT_WORKERS,
    shard_nfs: tuple[str, ...] = SHARD_NFS,
) -> dict:
    max_states = max_states if max_states is not None else _max_states()

    portfolio = bench_portfolio(nfs, max_states, workers)
    print(
        f"portfolio ({len(nfs)} NFs, workers={workers}): "
        f"{portfolio['wall_sequential_seconds']:.2f}s sequential -> "
        f"{portfolio['wall_parallel_seconds']:.2f}s parallel "
        f"({portfolio['speedup']}x), identical={portfolio['identical']}"
    )

    shards = bench_shards(shard_nfs, max_states, workers)
    print(
        f"shards ({len(shard_nfs)} NFs, workers={workers}): "
        f"{shards['wall_serial_seconds']:.2f}s serial -> "
        f"{shards['wall_parallel_seconds']:.2f}s parallel "
        f"({shards['speedup']}x), identical={shards['identical']}"
    )

    return {
        "benchmark": "bench_parallel",
        "scale": os.environ.get("REPRO_EVAL_SCALE", "quick").lower(),
        "max_states": max_states,
        "cpu_count": os.cpu_count(),
        "portfolio": portfolio,
        "shards": shards,
        "identical": portfolio["identical"] and shards["identical"],
    }


# -- pytest entry point (smoke-sized identity check) ---------------------------


def test_parallel_bench_smoke():
    """Parallel runs stay byte-identical to sequential at smoke scale."""
    report = run_benchmark(
        nfs=("lpm-patricia", "nat-hash-table"),
        max_states=40,
        workers=2,
        shard_nfs=("lpm-patricia",),
    )
    assert report["identical"]


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nfs", nargs="*", default=list(EVALUATION_NFS), help="NF names to run")
    parser.add_argument(
        "--shard-nfs", nargs="*", default=list(SHARD_NFS), help="NFs for the shard comparison"
    )
    parser.add_argument("--max-states", type=int, default=None, help="override exploration budget")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS, help="worker processes")
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = run_benchmark(
        tuple(args.nfs), args.max_states, args.workers, tuple(args.shard_nfs)
    )
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    if not report["identical"]:
        print("FAIL: parallel output diverged from the sequential reference", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
