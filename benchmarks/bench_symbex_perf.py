"""Symbolic-execution hot-loop performance benchmark.

Measures, for full ``Castan`` runs on the LPM-patricia pipeline and the
hash-based NFs: states explored per second, solver queries per second, the
number of *full-list* propagation passes (a ``Solver.check`` /
``Solver.quick_feasible`` call re-simplifies and re-propagates the whole
path constraint list from scratch), and wall time.  When the incremental
subsystem (``repro.symbex.incremental``) is present its query counters are
reported alongside, so the monolithic-vs-incremental split is visible.

Run standalone to (re)generate the ``BENCH_symbex.json`` trajectory file::

    PYTHONPATH=src python benchmarks/bench_symbex_perf.py --out BENCH_symbex.json

or under pytest (smoke-sized, asserts the pipeline still produces output)::

    PYTHONPATH=src python -m pytest benchmarks/bench_symbex_perf.py -q

The exploration budget is taken from ``REPRO_EVAL_SCALE`` (smoke / quick /
full) but the wall-clock deadline is disabled so runs are deterministic and
comparable across machines and revisions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.nf.registry import get_nf
from repro.symbex.solver import Solver

#: The NFs whose symbex hot loop this benchmark times: the patricia-trie LPM
#: (deep branchy lookups) plus the four hash-based NFs (havoc-heavy paths).
BENCH_NFS = (
    "lpm-patricia",
    "nat-hash-table",
    "lb-hash-table",
    "nat-hash-ring",
    "lb-hash-ring",
)

_SCALE_STATES = {"smoke": 60, "quick": 250, "full": 2500}


def _max_states() -> int:
    scale = os.environ.get("REPRO_EVAL_SCALE", "quick").lower()
    return _SCALE_STATES.get(scale, _SCALE_STATES["quick"])


class SolverProbe:
    """Counts full-list propagation passes made through the slow-path Solver.

    Every ``Solver.check`` and ``Solver.quick_feasible`` call simplifies and
    propagates its entire constraint list from scratch, so one call is one
    full-list pass.  ``constraints_seen`` additionally sums the list lengths,
    which approximates total propagation work.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.quick_feasible = 0
        self.constraints_seen = 0
        self._originals: dict[str, object] = {}

    @property
    def full_passes(self) -> int:
        return self.checks + self.quick_feasible

    def install(self) -> None:
        self._originals = {
            "check": Solver.check,
            "quick_feasible": Solver.quick_feasible,
        }
        probe = self

        def counting_check(solver, constraints, *args, **kwargs):
            probe.checks += 1
            probe.constraints_seen += len(constraints)
            return probe._originals["check"](solver, constraints, *args, **kwargs)

        def counting_quick_feasible(solver, constraints, *args, **kwargs):
            probe.quick_feasible += 1
            probe.constraints_seen += len(constraints)
            return probe._originals["quick_feasible"](solver, constraints, *args, **kwargs)

        Solver.check = counting_check
        Solver.quick_feasible = counting_quick_feasible

    def uninstall(self) -> None:
        for name, original in self._originals.items():
            setattr(Solver, name, original)
        self._originals = {}


def _incremental_stats() -> dict[str, int] | None:
    """Global SolverContext counters, when the incremental subsystem exists."""
    try:
        from repro.symbex.incremental import CONTEXT_STATS
    except ImportError:
        return None
    return CONTEXT_STATS.as_dict()


def _reset_incremental_stats() -> None:
    try:
        from repro.symbex.incremental import CONTEXT_STATS
    except ImportError:
        return
    CONTEXT_STATS.reset()


def bench_nf(name: str, max_states: int) -> dict[str, object]:
    """Run one deterministic Castan analysis and collect perf counters."""
    config = CastanConfig(max_states=max_states, deadline_seconds=None)
    probe = SolverProbe()
    _reset_incremental_stats()
    probe.install()
    try:
        start = time.perf_counter()
        result: CastanResult = Castan(config).analyze(get_nf(name))
        wall = time.perf_counter() - start
    finally:
        probe.uninstall()

    incremental = _incremental_stats()
    queries = probe.full_passes + (incremental or {}).get("queries", 0)
    record: dict[str, object] = {
        "nf": name,
        "wall_seconds": round(wall, 4),
        "states_explored": result.states_explored,
        "states_per_second": round(result.states_explored / wall, 2) if wall else 0.0,
        "solver_queries": queries,
        "solver_queries_per_second": round(queries / wall, 2) if wall else 0.0,
        "full_list_propagation_passes": probe.full_passes,
        "full_list_constraints_seen": probe.constraints_seen,
        "forks": result.forks,
        "completed_paths": result.completed_paths,
        # Output identity fields: later revisions must keep these unchanged.
        "best_state_cost": result.best_state_cost,
        "packet_flows": [list(p.flow_tuple) for p in result.packets],
        "solver_status": result.solver_status,
    }
    if incremental is not None:
        record["incremental"] = incremental
    return record


def run_benchmark(nfs: tuple[str, ...] = BENCH_NFS, max_states: int | None = None) -> dict:
    max_states = max_states if max_states is not None else _max_states()
    records = []
    for name in nfs:
        record = bench_nf(name, max_states)
        records.append(record)
        print(
            f"{name:>18}: {record['wall_seconds']:8.2f}s  "
            f"{record['states_per_second']:8.1f} states/s  "
            f"{record['solver_queries_per_second']:9.1f} queries/s  "
            f"{record['full_list_propagation_passes']:6d} full passes  "
            f"cost={record['best_state_cost']}"
        )
    totals = {
        "wall_seconds": round(sum(r["wall_seconds"] for r in records), 4),
        "states_explored": sum(r["states_explored"] for r in records),
        "solver_queries": sum(r["solver_queries"] for r in records),
        "full_list_propagation_passes": sum(r["full_list_propagation_passes"] for r in records),
    }
    return {
        "benchmark": "bench_symbex_perf",
        "scale": os.environ.get("REPRO_EVAL_SCALE", "quick").lower(),
        "max_states": max_states,
        "nfs": records,
        "totals": totals,
    }


# -- pytest entry point (smoke-sized sanity run) -------------------------------


def test_symbex_perf_smoke():
    """The benchmark pipeline runs end to end and produces sane counters."""
    report = run_benchmark(nfs=("lpm-patricia",), max_states=40)
    record = report["nfs"][0]
    assert record["states_explored"] > 0
    assert record["solver_queries"] > 0
    assert record["best_state_cost"] > 0


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nfs", nargs="*", default=list(BENCH_NFS), help="NF names to run")
    parser.add_argument("--max-states", type=int, default=None, help="override exploration budget")
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = run_benchmark(tuple(args.nfs), args.max_states)
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
