"""Symbolic-execution hot-loop performance benchmark (trajectory-keeping).

Measures, for full ``Castan`` runs over the evaluation NFs: states explored
per second, solver queries per second, the number of *full-list*
propagation passes (a ``Solver.check`` / ``Solver.quick_feasible`` call
re-simplifies and re-propagates the whole path constraint list from
scratch), and wall time.  When the incremental subsystem
(``repro.symbex.incremental``) is present its query counters are reported
alongside, so the monolithic-vs-incremental split is visible.

``BENCH_symbex.json`` holds a **trajectory**: one entry per PR (states/sec
across the evaluation NFs), appended — never overwritten — so the perf
history is visible in-repo.  Regenerate / extend with::

    PYTHONPATH=src python benchmarks/bench_symbex_perf.py \
        --out BENCH_symbex.json --label pr5-compiled-engine

``--compact`` replaces each NF record's full ``packet_flows`` list with a
sha256 ``packet_flows_digest`` (the identity contract is unchanged — later
revisions must reproduce the digest instead of the list), keeping the
trajectory file small as entries accumulate.  Entries written this way
carry ``"compact": true``; the gate below works with either layout, since
it only aggregates wall time and states explored.

Gate a change against the committed baseline (used by the ``perf-smoke``
CI step; compares aggregate states/sec over the NFs both runs share)::

    PYTHONPATH=src python benchmarks/bench_symbex_perf.py \
        --check BENCH_symbex.json --min-ratio 0.75

or run under pytest (smoke-sized, asserts the pipeline still produces
output)::

    PYTHONPATH=src python -m pytest benchmarks/bench_symbex_perf.py -q

The exploration budget is taken from ``REPRO_EVAL_SCALE`` (smoke / quick /
full) but the wall-clock deadline is disabled so runs are deterministic and
comparable across machines and revisions.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.nf.registry import EVALUATION_NF_NAMES, get_nf
from repro.symbex.solver import Solver

#: The NFs whose symbex hot loop the *gate* times by default: the
#: patricia-trie LPM (deep branchy lookups) plus the four hash-based NFs
#: (havoc-heavy paths).  Trajectory entries cover every evaluation NF.
BENCH_NFS = (
    "lpm-patricia",
    "nat-hash-table",
    "lb-hash-table",
    "nat-hash-ring",
    "lb-hash-ring",
)

_SCALE_STATES = {"smoke": 60, "quick": 250, "full": 2500}


def _max_states() -> int:
    scale = os.environ.get("REPRO_EVAL_SCALE", "quick").lower()
    return _SCALE_STATES.get(scale, _SCALE_STATES["quick"])


class SolverProbe:
    """Counts full-list propagation passes made through the slow-path Solver.

    Every ``Solver.check`` and ``Solver.quick_feasible`` call simplifies and
    propagates its entire constraint list from scratch, so one call is one
    full-list pass.  ``constraints_seen`` additionally sums the list lengths,
    which approximates total propagation work.
    """

    def __init__(self) -> None:
        self.checks = 0
        self.quick_feasible = 0
        self.constraints_seen = 0
        self._originals: dict[str, object] = {}

    @property
    def full_passes(self) -> int:
        return self.checks + self.quick_feasible

    def install(self) -> None:
        self._originals = {
            "check": Solver.check,
            "quick_feasible": Solver.quick_feasible,
        }
        probe = self

        def counting_check(solver, constraints, *args, **kwargs):
            probe.checks += 1
            probe.constraints_seen += len(constraints)
            return probe._originals["check"](solver, constraints, *args, **kwargs)

        def counting_quick_feasible(solver, constraints, *args, **kwargs):
            probe.quick_feasible += 1
            probe.constraints_seen += len(constraints)
            return probe._originals["quick_feasible"](solver, constraints, *args, **kwargs)

        Solver.check = counting_check
        Solver.quick_feasible = counting_quick_feasible

    def uninstall(self) -> None:
        for name, original in self._originals.items():
            setattr(Solver, name, original)
        self._originals = {}


#: Iterations of the fixed calibration loop (arithmetic + dict writes, the
#: same operation mix the hot loop is made of).
_CALIBRATION_ITERS = 60_000


def calibrate_machine(rounds: int = 5) -> float:
    """Machine-speed score: iterations/sec of a fixed pure-Python loop.

    Stored with every trajectory entry so the perf gate can normalise
    states/sec across machines (a CI runner is gated on *code* speed, not
    on being slower hardware than the machine that committed the
    baseline).  Best-of-``rounds`` to shrug off scheduler noise.
    """
    best = 0.0
    for _ in range(rounds):
        sink: dict[int, int] = {}
        acc = 0
        start = time.perf_counter()
        for i in range(_CALIBRATION_ITERS):
            acc = (acc + i * 17) & 0xFFFFFFFF
            sink[i & 255] = acc
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, _CALIBRATION_ITERS / elapsed)
    return round(best, 1)


def _incremental_stats() -> dict[str, int] | None:
    """Global SolverContext counters, when the incremental subsystem exists."""
    try:
        from repro.symbex.incremental import CONTEXT_STATS
    except ImportError:
        return None
    return CONTEXT_STATS.as_dict()


def _reset_incremental_stats() -> None:
    try:
        from repro.symbex.incremental import CONTEXT_STATS
    except ImportError:
        return
    CONTEXT_STATS.reset()


def bench_nf(name: str, max_states: int, exec_mode: str = "compiled") -> dict[str, object]:
    """Run one deterministic Castan analysis and collect perf counters."""
    config = CastanConfig(max_states=max_states, deadline_seconds=None, exec_mode=exec_mode)
    probe = SolverProbe()
    _reset_incremental_stats()
    probe.install()
    try:
        start = time.perf_counter()
        result: CastanResult = Castan(config).analyze(get_nf(name))
        wall = time.perf_counter() - start
    finally:
        probe.uninstall()

    incremental = _incremental_stats()
    queries = probe.full_passes + (incremental or {}).get("queries", 0)
    record: dict[str, object] = {
        "nf": name,
        "wall_seconds": round(wall, 4),
        "states_explored": result.states_explored,
        "states_per_second": round(result.states_explored / wall, 2) if wall else 0.0,
        "solver_queries": queries,
        "solver_queries_per_second": round(queries / wall, 2) if wall else 0.0,
        "full_list_propagation_passes": probe.full_passes,
        "full_list_constraints_seen": probe.constraints_seen,
        "forks": result.forks,
        "completed_paths": result.completed_paths,
        # Output identity fields: later revisions must keep these unchanged.
        "best_state_cost": result.best_state_cost,
        "packet_flows": [list(p.flow_tuple) for p in result.packets],
        "solver_status": result.solver_status,
    }
    if incremental is not None:
        record["incremental"] = incremental
    return record


def run_benchmark(
    nfs: tuple[str, ...] = BENCH_NFS,
    max_states: int | None = None,
    exec_mode: str = "compiled",
    label: str | None = None,
    compact: bool = False,
) -> dict:
    """One trajectory entry: per-NF records plus aggregate states/sec."""
    max_states = max_states if max_states is not None else _max_states()
    records = []
    for name in nfs:
        record = bench_nf(name, max_states, exec_mode=exec_mode)
        if compact:
            # Same identity contract, two orders of magnitude smaller: the
            # flows digest must stay byte-stable across revisions exactly
            # like the full list it replaces.
            flows = record.pop("packet_flows")
            record["packet_flows_digest"] = hashlib.sha256(
                json.dumps(flows, separators=(",", ":")).encode()
            ).hexdigest()
        records.append(record)
        print(
            f"{name:>20}: {record['wall_seconds']:8.2f}s  "
            f"{record['states_per_second']:8.1f} states/s  "
            f"{record['solver_queries_per_second']:9.1f} queries/s  "
            f"{record['full_list_propagation_passes']:6d} full passes  "
            f"cost={record['best_state_cost']}"
        )
    totals = {
        "wall_seconds": round(sum(r["wall_seconds"] for r in records), 4),
        "states_explored": sum(r["states_explored"] for r in records),
        "solver_queries": sum(r["solver_queries"] for r in records),
        "full_list_propagation_passes": sum(r["full_list_propagation_passes"] for r in records),
    }
    aggregate = (
        round(totals["states_explored"] / totals["wall_seconds"], 2)
        if totals["wall_seconds"]
        else 0.0
    )
    entry = {
        "label": label or "current",
        "scale": os.environ.get("REPRO_EVAL_SCALE", "quick").lower(),
        "max_states": max_states,
        "exec_mode": exec_mode,
        "compact": compact,
        "machine_calibration": calibrate_machine(),
        "nfs": records,
        "totals": totals,
        "aggregate_states_per_second": aggregate,
    }
    return entry


# -- trajectory file handling --------------------------------------------------


def load_trajectory(path: Path) -> dict:
    """Load a trajectory file, converting the pre-trajectory layout in place.

    The PR 1 layout was a single run report; it becomes ``trajectory[0]``
    (its seed-comparison appendix is preserved at the top level).
    """
    data = json.loads(path.read_text())
    if "trajectory" in data:
        return data
    totals = data.get("totals", {})
    aggregate = 0.0
    if totals.get("wall_seconds"):
        aggregate = round(totals["states_explored"] / totals["wall_seconds"], 2)
    entry = {
        "label": "pr1-incremental-solver",
        "scale": data.get("scale", "quick"),
        "max_states": data.get("max_states"),
        "exec_mode": "interp",
        "nfs": data.get("nfs", []),
        "totals": totals,
        "aggregate_states_per_second": aggregate,
    }
    converted = {"benchmark": "bench_symbex_perf", "trajectory": [entry]}
    if "pre_pr_seed_comparison" in data:
        converted["pre_pr_seed_comparison"] = data["pre_pr_seed_comparison"]
    return converted


def append_entry(path: Path, entry: dict) -> dict:
    """Append ``entry`` to the trajectory at ``path`` (created if missing)."""
    if path.exists():
        data = load_trajectory(path)
    else:
        data = {"benchmark": "bench_symbex_perf", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return data


def check_against_baseline(path: Path, entry: dict, min_ratio: float) -> int:
    """Compare ``entry`` with the last committed entry of the same exec mode.

    Aggregates states/sec over the NFs both runs measured; returns a
    non-zero exit code when the current run drops below
    ``min_ratio * baseline`` (the CI perf gate uses 0.75, i.e. "fail on a
    >25% regression").  The baseline is the most recent trajectory entry
    whose ``exec_mode`` matches the current run: the tiers have different
    throughput by design, so a cross-mode ratio would measure the tier gap,
    not a code regression — that mismatch is a hard error, never a warning.
    """
    data = load_trajectory(path)
    if not data["trajectory"]:
        print(f"{path} has no trajectory entries; nothing to compare against")
        return 1
    baseline = None
    for candidate in reversed(data["trajectory"]):
        if candidate.get("exec_mode") == entry["exec_mode"]:
            baseline = candidate
            break
    if baseline is None:
        modes = sorted({e.get("exec_mode") for e in data["trajectory"]})
        print(
            f"ERROR: no trajectory entry in {path} ran with "
            f"exec_mode={entry['exec_mode']!r} (recorded modes: {modes}); "
            "append a same-mode baseline with --out before gating on it"
        )
        return 1
    for knob in ("scale", "max_states"):
        if baseline.get(knob) != entry[knob]:
            print(
                f"warning: baseline entry ({baseline.get('label')}) ran with "
                f"{knob}={baseline.get(knob)!r}, this run with "
                f"{knob}={entry[knob]!r}; a ratio across different settings "
                "does not measure a code regression — comparing anyway"
            )
    current_by_nf = {r["nf"]: r for r in entry["nfs"]}
    shared = [r for r in baseline["nfs"] if r["nf"] in current_by_nf]
    if not shared:
        print("no NFs in common with the committed baseline; nothing to compare")
        return 1

    def aggregate(records) -> float:
        wall = sum(r["wall_seconds"] for r in records)
        states = sum(r["states_explored"] for r in records)
        return states / wall if wall else 0.0

    base_rate = aggregate(shared)
    current_rate = aggregate([current_by_nf[r["nf"]] for r in shared])
    ratio = current_rate / base_rate if base_rate else float("inf")
    # Normalise away machine speed when both entries carry a calibration
    # score, so the gate measures the code, not the runner hardware.
    base_cal = baseline.get("machine_calibration")
    current_cal = entry.get("machine_calibration")
    note = "raw — baseline has no machine calibration"
    if base_cal and current_cal:
        ratio *= base_cal / current_cal
        note = (
            f"normalised by machine calibration {current_cal:.0f} vs "
            f"baseline {base_cal:.0f} it/s"
        )
    print(
        f"aggregate over {len(shared)} shared NFs: baseline "
        f"{base_rate:.1f} states/s ({baseline.get('label')}), current "
        f"{current_rate:.1f} states/s (ratio {ratio:.2f}, floor {min_ratio:.2f}; {note})"
    )
    if ratio < min_ratio:
        print(
            f"PERF REGRESSION: states/sec dropped more than "
            f"{(1 - min_ratio) * 100:.0f}% below the committed baseline"
        )
        return 1
    print("perf gate passed")
    return 0


# -- pytest entry point (smoke-sized sanity run) -------------------------------


def test_symbex_perf_smoke():
    """The benchmark pipeline runs end to end and produces sane counters."""
    report = run_benchmark(nfs=("lpm-patricia",), max_states=40)
    record = report["nfs"][0]
    assert record["states_explored"] > 0
    assert record["solver_queries"] > 0
    assert record["best_state_cost"] > 0


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nfs",
        nargs="*",
        default=None,
        help="NF names to run (default: all evaluation NFs for --out, the "
        "committed gate set for --check)",
    )
    parser.add_argument("--max-states", type=int, default=None, help="override exploration budget")
    parser.add_argument(
        "--exec-mode", default="compiled", choices=("compiled", "interp", "vector"),
        help="engine execution mode to benchmark",
    )
    parser.add_argument("--label", default=None, help="trajectory entry label (e.g. pr5-compiled)")
    parser.add_argument(
        "--out", default=None,
        help="append this run to the trajectory file at this path",
    )
    parser.add_argument(
        "--check", default=None,
        help="compare this run against the last entry of the trajectory file "
        "at this path; exits 1 on a regression beyond --min-ratio",
    )
    parser.add_argument(
        "--compact", action="store_true",
        help="store a sha256 digest of each NF's packet flows instead of the "
        "full list (smaller trajectory entries, same identity contract)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.75,
        help="minimum current/baseline aggregate states/sec ratio (default "
        "0.75: fail on a >25%% drop)",
    )
    args = parser.parse_args(argv)

    if args.nfs:
        nfs = tuple(args.nfs)
    elif args.check:
        nfs = BENCH_NFS
    else:
        nfs = tuple(EVALUATION_NF_NAMES)
    entry = run_benchmark(
        nfs, args.max_states, exec_mode=args.exec_mode, label=args.label, compact=args.compact
    )

    status = 0
    if args.check:
        status = check_against_baseline(Path(args.check), entry, args.min_ratio)
    if args.out:
        append_entry(Path(args.out), entry)
        print(f"appended trajectory entry {entry['label']!r} to {args.out}")
    if not args.check and not args.out:
        json.dump(entry, sys.stdout, indent=2)
        print()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
