"""Monolithic vs. per-packet beam search on the full evaluation suite.

For every evaluation NF this benchmark runs the same ``Castan`` analysis
twice — once with the monolithic all-packets search and once with the
per-packet beam scheduler (``search_mode="beam"``, see
``repro.symbex.batch``) — and compares states explored, best-state cost
and wall time.  The beam scheduler's claim is that forcing per-packet
progress reaches deeper (higher-cost) multi-packet states with *less*
exploration, so the beam run is handicapped: its global state budget is 2%
tighter than the monolithic one, and its strike round additionally stops
early once it converges.  Both explored-state counts are reported, so the
comparison stays transparent.

Run standalone for the comparison table and JSON report::

    PYTHONPATH=src python benchmarks/bench_multipacket.py --out BENCH_multipacket.json

or under pytest (smoke-sized sanity run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_multipacket.py -q

The exploration budget is taken from ``REPRO_EVAL_SCALE`` (smoke / quick /
full) but the wall-clock deadline is disabled so runs are deterministic and
comparable across machines and revisions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.eval.experiments import EVALUATION_NFS
from repro.nf.registry import get_nf

_SCALE_STATES = {"smoke": 60, "quick": 250, "full": 2500}
DEFAULT_BEAM_WIDTH = 3


def _max_states() -> int:
    scale = os.environ.get("REPRO_EVAL_SCALE", "quick").lower()
    return _SCALE_STATES.get(scale, _SCALE_STATES["quick"])


def _beam_budget(max_states: int) -> int:
    """The beam run's (2% tighter) state budget."""
    return max(1, max_states * 49 // 50)


def _analyze(name: str, max_states: int, search_mode: str, beam_width: int) -> dict[str, object]:
    config = CastanConfig(
        max_states=max_states,
        deadline_seconds=None,
        search_mode=search_mode,
        beam_width=beam_width,
    )
    start = time.perf_counter()
    result: CastanResult = Castan(config).analyze(get_nf(name))
    wall = time.perf_counter() - start
    return {
        "search_mode": search_mode,
        "wall_seconds": round(wall, 4),
        "states_explored": result.states_explored,
        "best_state_cost": result.best_state_cost,
        "completed_paths": result.completed_paths,
        "forks": result.forks,
        "search_rounds": result.search_rounds,
        "packet_count": result.packet_count,
        "unique_flows": result.unique_flows,
    }


def bench_nf(name: str, max_states: int, beam_width: int) -> dict[str, object]:
    """Run the monolithic and beam analyses of one NF and compare."""
    mono = _analyze(name, max_states, "monolithic", beam_width)
    beam = _analyze(name, _beam_budget(max_states), "beam", beam_width)
    return {
        "nf": name,
        "monolithic": mono,
        "beam": beam,
        "beam_cost_ratio": (
            round(beam["best_state_cost"] / mono["best_state_cost"], 4)
            if mono["best_state_cost"]
            else None
        ),
        "beam_reaches_mono_cost": beam["best_state_cost"] >= mono["best_state_cost"],
        "beam_explores_fewer_states": beam["states_explored"] < mono["states_explored"],
    }


def run_benchmark(
    nfs: tuple[str, ...] = EVALUATION_NFS,
    max_states: int | None = None,
    beam_width: int = DEFAULT_BEAM_WIDTH,
) -> dict:
    max_states = max_states if max_states is not None else _max_states()
    records = []
    for name in nfs:
        record = bench_nf(name, max_states, beam_width)
        records.append(record)
        mono, beam = record["monolithic"], record["beam"]
        print(
            f"{name:>20}:  mono {mono['best_state_cost']:>7} cost /{mono['states_explored']:>5} states"
            f"  |  beam {beam['best_state_cost']:>7} cost /{beam['states_explored']:>5} states"
            f"  ({record['beam_cost_ratio']}x cost, {beam['search_rounds']} rounds)"
        )
    summary = {
        "nfs_total": len(records),
        "beam_reaches_mono_cost": sum(r["beam_reaches_mono_cost"] for r in records),
        "beam_explores_fewer_states": sum(r["beam_explores_fewer_states"] for r in records),
        "mono_wall_seconds": round(sum(r["monolithic"]["wall_seconds"] for r in records), 4),
        "beam_wall_seconds": round(sum(r["beam"]["wall_seconds"] for r in records), 4),
    }
    print(
        f"beam reaches monolithic cost on {summary['beam_reaches_mono_cost']}/{summary['nfs_total']} NFs, "
        f"explores fewer states on {summary['beam_explores_fewer_states']}/{summary['nfs_total']}"
    )
    return {
        "benchmark": "bench_multipacket",
        "scale": os.environ.get("REPRO_EVAL_SCALE", "quick").lower(),
        "max_states": max_states,
        "beam_width": beam_width,
        "nfs": records,
        "summary": summary,
    }


# -- pytest entry point (smoke-sized sanity run) -------------------------------


def test_multipacket_bench_smoke():
    """Both search modes run end to end and report comparable counters."""
    report = run_benchmark(nfs=("lpm-patricia",), max_states=40)
    record = report["nfs"][0]
    assert record["monolithic"]["best_state_cost"] > 0
    assert record["beam"]["best_state_cost"] > 0
    assert record["beam"]["search_rounds"] > 0
    assert record["monolithic"]["search_rounds"] == 0


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nfs", nargs="*", default=list(EVALUATION_NFS), help="NF names to run")
    parser.add_argument("--max-states", type=int, default=None, help="override exploration budget")
    parser.add_argument(
        "--beam-width", type=int, default=DEFAULT_BEAM_WIDTH, help="beam width for beam mode"
    )
    parser.add_argument("--out", default=None, help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = run_benchmark(tuple(args.nfs), args.max_states, args.beam_width)
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    else:
        json.dump(report, sys.stdout, indent=2)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
