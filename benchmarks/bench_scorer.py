"""Stream-scorer throughput benchmark (trajectory-keeping).

Distills adversarial signatures from a smoke-scale ``nat-hash-table``
analysis, then measures how fast the two scoring tiers turn synthetic
in-class packets into verdict masks:

* **vector** — :func:`repro.scoring.scorer.score_batch_columns` over
  pre-materialized columnar batches (the line-rate tier; the acceptance
  floor of 1M packets/sec applies here, machine-calibration-normalized);
* **scalar** — :func:`repro.scoring.scorer.score_batch_fields` over a
  subsample (the reference tier; measured so a correctness-path regression
  is visible too).

Batch generation is *outside* the timed region — the benchmark measures
scoring, not ``random_flow_columns``.  Every run also asserts the two
tiers byte-agree on the first batch, so the trajectory can never record a
throughput number for a scorer that diverged from its reference.

``BENCH_scorer.json`` holds a trajectory (one entry per PR, appended)::

    PYTHONPATH=src python benchmarks/bench_scorer.py \
        --out BENCH_scorer.json --label pr9-scorer

Gate a change against the committed baseline (the ``scorer-smoke`` CI
step; ratio vs the last entry plus an absolute packets/sec floor, both
normalized by the machine-calibration score)::

    PYTHONPATH=src python benchmarks/bench_scorer.py \
        --check BENCH_scorer.json --min-ratio 0.6 --min-pps 1000000

or run the smoke-sized pytest entry point::

    PYTHONPATH=src python -m pytest benchmarks/bench_scorer.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_symbex_perf import calibrate_machine  # noqa: E402
from repro.core.castan import Castan  # noqa: E402
from repro.core.config import CastanConfig  # noqa: E402
from repro.nf.registry import get_nf  # noqa: E402
from repro.scoring import distill_signatures  # noqa: E402
from repro.scoring.scorer import (  # noqa: E402
    score_batch_columns,
    score_batch_fields,
    verdict_bytes,
)
from repro.scoring.stream import columns_to_fields, random_flow_columns  # noqa: E402
from repro.symbex.expr import HAVE_NUMPY  # noqa: E402

#: The NF whose signatures the benchmark scores against: the hash-table NAT
#: distills both a hash-collision and a cache-set signature at smoke scale,
#: so the timed predicates include the unrolled 16-bit flow hash — the most
#: expensive predicate the distiller emits.
BENCH_NF = "nat-hash-table"

_SCALE_STATES = {"smoke": 40, "quick": 120, "full": 400}


def _max_states() -> int:
    scale = os.environ.get("REPRO_EVAL_SCALE", "smoke").lower()
    return _SCALE_STATES.get(scale, _SCALE_STATES["smoke"])


def prepare_signatures(max_states: int | None = None):
    """Analyze the bench NF and distill its signatures (untimed setup)."""
    nf = get_nf(BENCH_NF)
    config = CastanConfig(
        max_states=max_states if max_states is not None else _max_states(),
        deadline_seconds=None,
        search_mode="beam",
    )
    result = Castan(config).analyze(nf, num_packets=3)
    signature_set = distill_signatures(nf, result, config=config)
    if not signature_set.signatures:
        raise RuntimeError(
            f"distillation produced no signatures for {BENCH_NF} "
            f"(max_states={config.max_states}); nothing to benchmark"
        )
    return nf, signature_set


def bench_scorer(
    signatures,
    nf,
    packets: int = 1_000_000,
    batch_size: int = 8192,
    scalar_packets: int = 16_384,
) -> dict:
    """Time both tiers over a pre-materialized synthetic stream."""
    if not HAVE_NUMPY:
        raise RuntimeError("the vector tier needs numpy (the [vector] extra)")
    import random

    rng = random.Random(0)
    batches = []
    remaining = packets
    while remaining > 0:
        size = min(batch_size, remaining)
        batches.append(random_flow_columns(nf, size, rng))
        remaining -= size

    # Warm the per-signature evaluator caches, then verify the tiers agree
    # on the first batch before timing anything.
    first = batches[0]
    vector_masks = score_batch_columns(signatures.signatures, first)
    scalar_masks = score_batch_fields(signatures.signatures, columns_to_fields(first))
    if verdict_bytes(vector_masks) != verdict_bytes(scalar_masks):
        raise RuntimeError("vector and scalar verdicts diverged; refusing to time")

    start = time.perf_counter()
    matched = 0
    for batch in batches:
        masks = score_batch_columns(signatures.signatures, batch)
        matched += int((masks != 0).sum())
    vector_wall = time.perf_counter() - start

    scalar_sample: list[dict] = []
    for batch in batches:
        scalar_sample.extend(columns_to_fields(batch))
        if len(scalar_sample) >= scalar_packets:
            scalar_sample = scalar_sample[:scalar_packets]
            break
    start = time.perf_counter()
    score_batch_fields(signatures.signatures, scalar_sample)
    scalar_wall = time.perf_counter() - start

    return {
        "signatures": len(signatures.signatures),
        "signature_labels": [s.label for s in signatures.signatures],
        "vector": {
            "packets": packets,
            "batch_size": batch_size,
            "wall_seconds": round(vector_wall, 4),
            "packets_per_second": round(packets / vector_wall, 1) if vector_wall else 0.0,
            "matched": matched,
        },
        "scalar": {
            "packets": len(scalar_sample),
            "wall_seconds": round(scalar_wall, 4),
            "packets_per_second": (
                round(len(scalar_sample) / scalar_wall, 1) if scalar_wall else 0.0
            ),
        },
        "verdicts_byte_identical": True,
    }


def run_benchmark(
    packets: int = 1_000_000,
    batch_size: int = 8192,
    max_states: int | None = None,
    label: str | None = None,
) -> dict:
    nf, signature_set = prepare_signatures(max_states)
    record = bench_scorer(signature_set, nf, packets=packets, batch_size=batch_size)
    entry = {
        "label": label or "current",
        "nf": BENCH_NF,
        "scale": os.environ.get("REPRO_EVAL_SCALE", "smoke").lower(),
        "machine_calibration": calibrate_machine(),
        **record,
    }
    print(
        f"{BENCH_NF}: {record['signatures']} signature(s); vector "
        f"{record['vector']['packets_per_second']:,.0f} pkts/s "
        f"({record['vector']['packets']} packets, "
        f"{record['vector']['wall_seconds']:.2f}s, "
        f"{record['vector']['matched']} matched), scalar "
        f"{record['scalar']['packets_per_second']:,.0f} pkts/s"
    )
    return entry


# -- trajectory file handling --------------------------------------------------


def load_trajectory(path: Path) -> dict:
    return json.loads(path.read_text())


def append_entry(path: Path, entry: dict) -> dict:
    if path.exists():
        data = load_trajectory(path)
    else:
        data = {"benchmark": "bench_scorer", "trajectory": []}
    data["trajectory"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return data


def check_against_baseline(
    path: Path, entry: dict, min_ratio: float, min_pps: float
) -> int:
    """Gate ``entry`` on the committed trajectory.

    Two conditions, both machine-calibration-normalized so the gate
    measures the code rather than the runner hardware:

    * **ratio** — vector packets/sec must stay within ``min_ratio`` of the
      last committed entry;
    * **floor** — vector packets/sec must clear ``min_pps`` outright
      (scaled to the baseline machine when both calibrations are present).
    """
    data = load_trajectory(path)
    if not data.get("trajectory"):
        print(f"{path} has no trajectory entries; nothing to compare against")
        return 1
    baseline = data["trajectory"][-1]
    base_pps = baseline["vector"]["packets_per_second"]
    current_pps = entry["vector"]["packets_per_second"]
    base_cal = baseline.get("machine_calibration")
    current_cal = entry.get("machine_calibration")
    scale = 1.0
    note = "raw — missing machine calibration"
    if base_cal and current_cal:
        scale = base_cal / current_cal
        note = (
            f"normalised by machine calibration {current_cal:.0f} vs "
            f"baseline {base_cal:.0f} it/s"
        )
    normalized_pps = current_pps * scale
    ratio = normalized_pps / base_pps if base_pps else float("inf")
    print(
        f"vector tier: baseline {base_pps:,.0f} pkts/s "
        f"({baseline.get('label')}), current {current_pps:,.0f} pkts/s "
        f"-> {normalized_pps:,.0f} normalized ({note}); "
        f"ratio {ratio:.2f} (floor {min_ratio:.2f}), "
        f"absolute floor {min_pps:,.0f} pkts/s"
    )
    status = 0
    if ratio < min_ratio:
        print(
            f"PERF REGRESSION: scorer throughput dropped more than "
            f"{(1 - min_ratio) * 100:.0f}% below the committed baseline"
        )
        status = 1
    if normalized_pps < min_pps:
        print(
            f"PERF FLOOR MISS: {normalized_pps:,.0f} normalized pkts/s is "
            f"below the {min_pps:,.0f} line-rate floor"
        )
        status = 1
    if status == 0:
        print("scorer perf gate passed")
    return status


# -- pytest entry point (smoke-sized sanity run) -------------------------------


def test_scorer_bench_smoke():
    """The bench pipeline runs end to end and the tiers byte-agree."""
    import pytest

    if not HAVE_NUMPY:
        pytest.skip("vector tier needs numpy")
    nf, signature_set = prepare_signatures(max_states=40)
    record = bench_scorer(signature_set, nf, packets=50_000, batch_size=8192)
    assert record["signatures"] > 0
    assert record["vector"]["packets_per_second"] > 0
    assert record["verdicts_byte_identical"]


# -- CLI ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--packets", type=int, default=1_000_000,
        help="synthetic packets to score through the vector tier",
    )
    parser.add_argument("--batch", type=int, default=8192, help="columnar batch size")
    parser.add_argument(
        "--max-states", type=int, default=None, help="analysis exploration budget"
    )
    parser.add_argument("--label", default=None, help="trajectory entry label")
    parser.add_argument(
        "--out", default=None, help="append this run to the trajectory file"
    )
    parser.add_argument(
        "--check", default=None,
        help="gate this run against the trajectory file's last entry",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=0.6,
        help="minimum current/baseline packets/sec ratio (default 0.6)",
    )
    parser.add_argument(
        "--min-pps", type=float, default=1_000_000,
        help="absolute vector-tier packets/sec floor (default 1M)",
    )
    args = parser.parse_args(argv)

    entry = run_benchmark(
        packets=args.packets,
        batch_size=args.batch,
        max_states=args.max_states,
        label=args.label,
    )
    status = 0
    if args.check:
        status = check_against_baseline(
            Path(args.check), entry, args.min_ratio, args.min_pps
        )
    if args.out:
        append_entry(Path(args.out), entry)
        print(f"appended trajectory entry {entry['label']!r} to {args.out}")
    if not args.check and not args.out:
        json.dump(entry, sys.stdout, indent=2)
        print()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
