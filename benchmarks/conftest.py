"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
Results are computed through the memoised runners in ``repro.eval``, so an
NF is analysed and measured once no matter how many tables reference it.
Set ``REPRO_EVAL_SCALE`` to ``smoke`` / ``quick`` / ``full`` to trade run
time for fidelity before invoking ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end pipelines (not
    micro-kernels), so a single timed round is the meaningful measurement —
    re-running them would only re-read the memoised results.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def emit():
    """Print a rendered table/figure underneath the benchmark output."""

    def _emit(text: str) -> None:
        print("\n" + text + "\n")

    return _emit
