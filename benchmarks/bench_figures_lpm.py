"""Figures 4-8: the LPM experiments (§5.2-5.3).

* Fig. 4 — latency CDF, LPM with 1-stage Direct Lookup
* Fig. 5 — CPU reference-cycles CDF, LPM with 1-stage Direct Lookup
* Fig. 6 — latency CDF, LPM with 2-stage (DPDK-style) Direct Lookup
* Fig. 7 — latency CDF, LPM with a Patricia trie
* Fig. 8 — CPU reference-cycles CDF, LPM with a Patricia trie
"""

from benchmarks.conftest import run_once
from repro.eval.tables import figure_cycles_cdfs, figure_latency_cdfs, render_figure


def _latency_figure(benchmark, emit, nf_name, title):
    cdfs = run_once(benchmark, lambda: figure_latency_cdfs(nf_name))
    emit(render_figure(title, cdfs))
    assert cdfs["castan"].count > 0
    return cdfs


def _cycles_figure(benchmark, emit, nf_name, title):
    cdfs = run_once(benchmark, lambda: figure_cycles_cdfs(nf_name))
    emit(render_figure(title, cdfs))
    assert cdfs["castan"].count > 0
    return cdfs


def test_fig04_lpm_direct_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "lpm-direct", "Figure 4: latency CDF, LPM 1-stage Direct Lookup (ns)"
    )
    # Shape check: the CASTAN workload must hurt at least as much as the
    # flow-count-matched UniRand-CASTAN control.
    assert cdfs["castan"].median >= cdfs["unirand-castan"].median


def test_fig05_lpm_direct_cycles(benchmark, emit):
    cdfs = _cycles_figure(
        benchmark, emit, "lpm-direct", "Figure 5: reference cycles CDF, LPM 1-stage Direct Lookup"
    )
    assert cdfs["castan"].median >= cdfs["zipfian"].median


def test_fig06_lpm_dpdk_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "lpm-dpdk", "Figure 6: latency CDF, LPM 2-stage Direct Lookup (ns)"
    )
    # The paper's point: the small CASTAN workload cannot thrash the smaller
    # first-stage table the way the huge UniRand workload can.
    assert cdfs["castan"].median <= cdfs["unirand"].median * 1.05


def test_fig07_lpm_patricia_latency(benchmark, emit):
    cdfs = _latency_figure(
        benchmark, emit, "lpm-patricia", "Figure 7: latency CDF, LPM Patricia trie (ns)"
    )
    assert "manual" in cdfs


def test_fig08_lpm_patricia_cycles(benchmark, emit):
    cdfs = _cycles_figure(
        benchmark, emit, "lpm-patricia", "Figure 8: reference cycles CDF, LPM Patricia trie"
    )
    # CASTAN and Manual consume noticeably more cycles than Zipfian.
    assert cdfs["manual"].median > cdfs["zipfian"].median
