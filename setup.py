"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e .`` works in offline environments whose pip/setuptools
combination cannot perform PEP 660 editable installs (no ``wheel`` package).
"""

from setuptools import setup

setup()
