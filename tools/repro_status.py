#!/usr/bin/env python3
"""``repro-status``: inspect a running ``repro.service`` server.

With no arguments, prints server health and the job table.  With a job id,
prints that job's full record (add ``--follow`` to stream its remaining
events).  ``--store`` lists the content-addressed result store instead::

    PYTHONPATH=src python tools/repro_status.py
    PYTHONPATH=src python tools/repro_status.py job-0001
    PYTHONPATH=src python tools/repro_status.py job-0001 --follow
    PYTHONPATH=src python tools/repro_status.py --store
    PYTHONPATH=src python tools/repro_status.py --cancel job-0002
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def show_jobs(client: ServiceClient) -> None:
    health = client.health()
    counts = ", ".join(f"{state}={n}" for state, n in sorted(health["jobs"].items()))
    print(f"service ok; jobs: {counts or 'none'}; store entries: {health['store_entries']}")
    jobs = client.jobs()
    if not jobs:
        return
    width = max(len(job["nf"]) for job in jobs)
    for job in jobs:
        tag = " cache-hit" if job.get("cached") else ""
        print(
            f"  {job['job_id']}  {job['nf']:<{width}}  {job['state']:<9} "
            f"attempts={job['attempts']} rounds={job.get('rounds', 0)}{tag}"
        )
        if job.get("error"):
            print(f"      error: {job['error']}")


def show_store(client: ServiceClient) -> None:
    keys = client.store_keys()
    print(f"{len(keys)} stored result(s)")
    for key in keys:
        summary = client.store_meta(key).get("result", {})
        print(
            f"  {key[:16]}…  nf={summary.get('nf')} "
            f"digest={summary.get('result_digest', '')[:16]}…"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("job_id", nargs="?", help="show one job instead of the table")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument("--store", action="store_true", help="list the result store")
    parser.add_argument("--follow", action="store_true", help="stream the job's events")
    parser.add_argument("--cancel", metavar="JOB_ID", help="request cancellation of a job")
    args = parser.parse_args(argv)

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.cancel:
            job = client.cancel(args.cancel)
            print(f"{job['job_id']}: {job['state']}")
        elif args.store:
            show_store(client)
        elif args.job_id and args.follow:
            for event in client.stream(args.job_id):
                print(json.dumps(event, sort_keys=True))
        elif args.job_id:
            print(json.dumps(client.job(args.job_id), indent=2, sort_keys=True))
        else:
            show_jobs(client)
    except ServiceError as error:
        print(f"service error: {error.message}", file=sys.stderr)
        return 1
    except ConnectionError as error:
        print(
            f"cannot reach repro.service at {args.host}:{args.port} ({error}); "
            "start one with: python -m repro.service",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
