#!/usr/bin/env python3
"""Documentation consistency check (the ``docs-check`` CI step).

Four classes of rot are caught:

1. **Broken links/references** — every relative markdown link target and
   every backtick reference to a repo path (``src/...``, ``docs/...``,
   ``benchmarks/...``, ``tests/...``, ``tools/...``, ``examples/...``)
   in ``README.md``, ``docs/*.md`` and ``ROADMAP.md`` must exist.
2. **Stale NF counts** — any "<N> evaluation NFs" / "<N>-NF" phrase must
   match ``len(EVALUATION_NF_NAMES)`` (this is exactly the staleness the
   docs satellite of PR 4 had to clean up).
3. **Gallery completeness** — every registered NF name must appear in the
   README's gallery table.
4. **Knob staleness** — every ``CastanConfig`` field and every
   ``REPRO_*`` environment variable read anywhere under ``src/`` must
   appear (backticked) in the README's knob tables, so adding a knob
   without documenting it fails CI.

Run it from the repo root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Backtick references with one of these top-level prefixes must exist.
PATH_PREFIXES = ("src/", "docs/", "benchmarks/", "tests/", "tools/", "examples/")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)[^)]*\)")
BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+)`")
NF_COUNT_CLAIM = re.compile(r"(\d+)(?:-NF\b|\s+evaluation\s+NFs)")


def doc_files() -> list[Path]:
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path, text: str) -> list[str]:
    problems = []
    for target in MARKDOWN_LINK.findall(text):
        if "://" in target or target.startswith("mailto:"):
            continue  # external URLs are not checked (offline CI)
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path.name}: broken link target {target!r}")
    for ref in BACKTICK_PATH.findall(text):
        if ref.startswith(PATH_PREFIXES) and not ref.endswith("/"):
            if not (REPO / ref).exists():
                problems.append(f"{path.name}: referenced path {ref!r} does not exist")
    return problems


#: Phrases that legitimise an 11-NF claim: either it describes the paper's
#: own Table 4 suite, or it is an explicitly historicised PR note.  Kept to
#: rare multi-word phrases so common words cannot accidentally exempt a
#: genuinely stale claim.
HISTORICAL_MARKERS = ("paper", "at the time", "since pr")


def check_nf_counts(path: Path, text: str, expected: int) -> list[str]:
    problems = []
    for match in NF_COUNT_CLAIM.finditer(text):
        claimed = int(match.group(1))
        if claimed not in (expected, 11):  # 11 = the paper's own Table 4 rows
            problems.append(
                f"{path.name}: claims {claimed} NFs but the registry has {expected} "
                f"(context: {match.group(0)!r})"
            )
        window = text[max(0, match.start() - 120) : match.end() + 120].lower()
        if claimed == 11 and not any(marker in window for marker in HISTORICAL_MARKERS):
            problems.append(
                f"{path.name}: bare '11 NFs' claim without paper/historical context "
                f"looks stale (registry has {expected})"
            )
    return problems


def check_gallery(readme: str, names: tuple[str, ...]) -> list[str]:
    return [
        f"README.md: NF {name!r} missing from the gallery table"
        for name in names
        if f"`{name}`" not in readme
    ]


#: ``REPRO_*`` environment variables referenced anywhere in the source.
REPRO_ENV_VAR = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")


def source_env_vars() -> set[str]:
    """Every REPRO_* environment variable named under ``src/``."""
    found: set[str] = set()
    for path in sorted((REPO / "src").rglob("*.py")):
        found.update(REPRO_ENV_VAR.findall(path.read_text()))
    return found


def check_knobs(readme: str) -> list[str]:
    """Every config field and REPRO_* env var must be documented (backticked)."""
    import dataclasses

    from repro.core.config import CastanConfig

    problems = []
    for field in dataclasses.fields(CastanConfig):
        if f"`{field.name}`" not in readme:
            problems.append(
                f"README.md: CastanConfig field {field.name!r} missing from the knob table"
            )
    for var in sorted(source_env_vars()):
        if f"`{var}`" not in readme:
            problems.append(
                f"README.md: environment variable {var!r} (read under src/) "
                "missing from the knob table"
            )
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.nf.registry import EVALUATION_NF_NAMES, NF_NAMES

    problems: list[str] = []
    for path in doc_files():
        text = path.read_text()
        problems += check_links(path, text)
        problems += check_nf_counts(path, text, len(EVALUATION_NF_NAMES))
    readme = (REPO / "README.md").read_text()
    problems += check_gallery(readme, NF_NAMES)
    problems += check_knobs(readme)

    if problems:
        print("docs-check found problems:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"docs-check ok: {len(doc_files())} files, {len(NF_NAMES)} NFs in gallery, "
        f"{len(source_env_vars())} env knobs documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
