"""cProfile harness for the symbex hot loop (future perf work starts here).

Profiles one full ``Castan`` analysis and prints the top functions, so a
perf PR can see where the next wall of time is before touching code::

    PYTHONPATH=src python tools/profile_symbex.py --nf nat-hash-table
    PYTHONPATH=src python tools/profile_symbex.py --nf lpm-patricia \
        --exec-mode interp --sort tottime --top 40
    PYTHONPATH=src python tools/profile_symbex.py --nf nat-hash-ring \
        --dump /tmp/ring.prof   # then: python -m pstats /tmp/ring.prof

The analysis runs with the wall-clock deadline disabled (like the perf
benchmark) so profiles are comparable across runs.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.nf.registry import NF_NAMES, get_nf


def profile_analysis(
    nf_name: str,
    max_states: int,
    exec_mode: str,
    num_packets: int | None = None,
) -> cProfile.Profile:
    """Run one deterministic analysis under cProfile and return the profile."""
    config = CastanConfig(
        max_states=max_states,
        deadline_seconds=None,
        exec_mode=exec_mode,
        num_packets=num_packets,
    )
    nf = get_nf(nf_name)
    profiler = cProfile.Profile()
    profiler.enable()
    result = Castan(config).analyze(nf)
    profiler.disable()
    print(result.summary(), file=sys.stderr)
    return profiler


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nf", default="nat-hash-table", choices=sorted(NF_NAMES))
    parser.add_argument("--max-states", type=int, default=250)
    parser.add_argument("--num-packets", type=int, default=None)
    parser.add_argument("--exec-mode", default="compiled", choices=("compiled", "interp"))
    parser.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "ncalls", "pcalls"),
    )
    parser.add_argument("--top", type=int, default=30, help="rows to print")
    parser.add_argument("--dump", default=None, help="write raw stats here for pstats/snakeviz")
    args = parser.parse_args(argv)

    profiler = profile_analysis(args.nf, args.max_states, args.exec_mode, args.num_packets)
    stats = pstats.Stats(profiler)
    if args.dump:
        stats.dump_stats(args.dump)
        print(f"wrote {args.dump}", file=sys.stderr)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
