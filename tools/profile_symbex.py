"""Per-phase profile of the symbex hot loop.

Times one full ``Castan`` analysis and attributes wall time to the phases a
perf PR actually argues about — block compilation, engine stepping, solver
work (split into ``solver:query`` feasibility/model time,
``solver:propagate`` constraint commitment and ``solver:group-dedup``
cross-lane branch batching), cache-model decisions and (in vector mode)
frontier grouping — instead of dumping a raw function table::

    PYTHONPATH=src python tools/profile_symbex.py --nf nat-hash-table
    PYTHONPATH=src python tools/profile_symbex.py --nf nat-hash-ring \
        --exec-mode vector --max-states 250

Attribution is exclusive: a solver query made from inside a cache decision
counts as solver time, not cache time, so the phases sum to the measured
wall (plus "other": searcher, workload synthesis, havoc reconciliation).
The classic cProfile table is still available behind ``--cprofile``::

    PYTHONPATH=src python tools/profile_symbex.py --nf lpm-patricia \
        --cprofile --sort tottime --top 40 --dump /tmp/lpm.prof

The analysis runs with the wall-clock deadline disabled (like the perf
benchmark) so profiles are comparable across runs.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from collections import defaultdict

from repro.core.castan import Castan
from repro.core.config import CastanConfig
from repro.nf.registry import NF_NAMES, get_nf

EXEC_MODES = ("compiled", "interp", "vector")


class PhaseClock:
    """Exclusive wall-time attribution over a stack of named phases.

    Entering a phase pushes it; elapsed time always accrues to the phase on
    top of the stack, so nested phases (a solver query inside a cache
    decision inside a step) never double-count.
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = defaultdict(float)
        self.calls: dict[str, int] = defaultdict(int)
        self._stack: list[str] = []
        self._last = 0.0

    def _tick(self, now: float) -> None:
        if self._stack:
            self.totals[self._stack[-1]] += now - self._last
        self._last = now

    def push(self, phase: str) -> None:
        self._tick(time.perf_counter())
        self._stack.append(phase)
        self.calls[phase] += 1

    def pop(self) -> None:
        self._tick(time.perf_counter())
        self._stack.pop()

    def wrap(self, owner, method_name: str, phase: str):
        """Monkeypatch ``owner.method_name`` to run inside ``phase``."""
        original = getattr(owner, method_name)
        clock = self

        def timed(*args, **kwargs):
            clock.push(phase)
            try:
                return original(*args, **kwargs)
            finally:
                clock.pop()

        setattr(owner, method_name, timed)
        return owner, method_name, original


def _install_phase_probes(clock: PhaseClock) -> list:
    """Wrap the phase entry points; returns undo records."""
    from repro.cache.model import ContentionSetCacheModel, NoCacheModel
    from repro.symbex import blockc, vexec
    from repro.symbex.engine import SymbolicEngine
    from repro.symbex.incremental import SolverContext
    from repro.symbex.solver import Solver

    undo = []
    undo.append(clock.wrap(blockc, "_compile_block", "block compile"))
    undo.extend(_install_stage_probes(clock))
    # The solver phase is split three ways: "solver:query" is feasibility /
    # model time (slow-path checks and incremental-context queries),
    # "solver:propagate" is constraint commitment (SolverContext.add wave
    # propagation), "solver:group-dedup" is the vector tier's cross-lane
    # branch batching — exclusive attribution means it shows only the
    # dedup-class bookkeeping, while representative queries made from inside
    # it still count as solver:query.
    undo.append(clock.wrap(Solver, "check", "solver:query"))
    undo.append(clock.wrap(Solver, "quick_feasible", "solver:query"))
    undo.append(clock.wrap(SolverContext, "feasible_with", "solver:query"))
    undo.append(clock.wrap(SolverContext, "solve_value", "solver:query"))
    undo.append(clock.wrap(SolverContext, "add", "solver:propagate"))
    undo.append(
        clock.wrap(vexec.VectorExecutor, "_resolve_branches", "solver:group-dedup")
    )
    for model_cls in (NoCacheModel, ContentionSetCacheModel):
        undo.append(clock.wrap(model_cls, "on_access", "cache"))
    undo.append(clock.wrap(vexec.VectorExecutor, "build_buffers", "vector group"))
    undo.append(clock.wrap(vexec.VectorExecutor, "regroup", "vector group"))
    undo.append(clock.wrap(vexec.VectorExecutor, "apply", "vector apply"))
    return undo


def _install_stage_probes(clock: PhaseClock) -> list:
    """Stage-aware stepping: chain NFs get one ``stage:<label>`` phase per
    stage (exclusive wall share) instead of lumping everything into "step".

    The stage window opens when the entry glue calls a stage entry and
    closes when it returns (mirroring the engine's per-stage cost
    attribution); a state resuming mid-stage re-enters its stage phase at
    the top of the step.
    """
    from repro.symbex.engine import SymbolicEngine

    orig_step = SymbolicEngine.execute_until_fork
    orig_call = SymbolicEngine._execute_call
    orig_return = SymbolicEngine._execute_return

    def timed_step(self, state, *args, **kwargs):
        depth = len(clock._stack)
        clock.push("step")
        if state.active_stage is not None:
            clock.push(f"stage:{state.active_stage}")
        try:
            return orig_step(self, state, *args, **kwargs)
        finally:
            # A state can fork or pause mid-stage; unwind whatever stage
            # phases are still open along with our "step".
            while len(clock._stack) > depth:
                clock.pop()

    def timed_call(self, state, instruction):
        before = state.active_stage
        result = orig_call(self, state, instruction)
        if state.active_stage is not None and state.active_stage is not before:
            clock.push(f"stage:{state.active_stage}")
        return result

    def timed_return(self, state, instruction):
        before = state.active_stage
        result = orig_return(self, state, instruction)
        if (
            before is not None
            and state.active_stage is None
            and clock._stack
            and clock._stack[-1] == f"stage:{before}"
        ):
            clock.pop()
        return result

    SymbolicEngine.execute_until_fork = timed_step
    SymbolicEngine._execute_call = timed_call
    SymbolicEngine._execute_return = timed_return
    return [
        (SymbolicEngine, "execute_until_fork", orig_step),
        (SymbolicEngine, "_execute_call", orig_call),
        (SymbolicEngine, "_execute_return", orig_return),
    ]


def _uninstall(undo: list) -> None:
    for owner, method_name, original in reversed(undo):
        setattr(owner, method_name, original)


def profile_phases(
    nf_name: str, max_states: int, exec_mode: str, num_packets: int | None
) -> int:
    config = CastanConfig(
        max_states=max_states,
        deadline_seconds=None,
        exec_mode=exec_mode,
        num_packets=num_packets,
    )
    clock = PhaseClock()
    undo = _install_phase_probes(clock)
    clock.push("other")  # the root bucket: everything outside a probe
    start = time.perf_counter()
    try:
        result = Castan(config).analyze(get_nf(nf_name))
    finally:
        wall = time.perf_counter() - start
        clock.pop()
        _uninstall(undo)

    print(result.summary(), file=sys.stderr)
    print(f"\n{nf_name} [{exec_mode}] max_states={max_states}: {wall:.3f}s wall")
    print(f"{'phase':>18}  {'seconds':>8}  {'share':>6}  {'calls':>8}")
    ordered = sorted(clock.totals.items(), key=lambda kv: -kv[1])
    for phase, seconds in ordered:
        calls = clock.calls[phase] if phase != "other" else 1
        share = seconds / wall if wall else 0.0
        print(f"{phase:>18}  {seconds:8.3f}  {share:5.1%}  {calls:8d}")
    accounted = sum(clock.totals.values())
    print(f"{'(accounted)':>18}  {accounted:8.3f}  {accounted / wall if wall else 0.0:5.1%}")
    return 0


def profile_cprofile(
    nf_name: str,
    max_states: int,
    exec_mode: str,
    num_packets: int | None,
    sort: str,
    top: int,
    dump: str | None,
) -> int:
    config = CastanConfig(
        max_states=max_states,
        deadline_seconds=None,
        exec_mode=exec_mode,
        num_packets=num_packets,
    )
    nf = get_nf(nf_name)
    profiler = cProfile.Profile()
    profiler.enable()
    result = Castan(config).analyze(nf)
    profiler.disable()
    print(result.summary(), file=sys.stderr)
    stats = pstats.Stats(profiler)
    if dump:
        stats.dump_stats(dump)
        print(f"wrote {dump}", file=sys.stderr)
    stats.sort_stats(sort).print_stats(top)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--nf", default="nat-hash-table",
        help=f"registry name or chain: spec; registered: {', '.join(sorted(NF_NAMES))}",
    )
    parser.add_argument("--max-states", type=int, default=250)
    parser.add_argument("--num-packets", type=int, default=None)
    parser.add_argument("--exec-mode", default="compiled", choices=EXEC_MODES)
    parser.add_argument(
        "--cprofile", action="store_true",
        help="raw cProfile function table instead of the phase breakdown",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        choices=("cumulative", "tottime", "ncalls", "pcalls"),
        help="cProfile sort column (with --cprofile)",
    )
    parser.add_argument("--top", type=int, default=30, help="rows to print (with --cprofile)")
    parser.add_argument(
        "--dump", default=None,
        help="write raw stats here for pstats/snakeviz (with --cprofile)",
    )
    args = parser.parse_args(argv)

    if args.cprofile:
        return profile_cprofile(
            args.nf, args.max_states, args.exec_mode, args.num_packets,
            args.sort, args.top, args.dump,
        )
    return profile_phases(args.nf, args.max_states, args.exec_mode, args.num_packets)


if __name__ == "__main__":
    raise SystemExit(main())
