#!/usr/bin/env python3
"""``repro-score``: score traffic against an NF's distilled signatures.

Offline (default) the full pipeline runs in-process — analyze (or reuse a
``--store`` entry), distill calibrated signatures, then stream the traffic
through the vectorized scorer::

    PYTHONPATH=src python tools/repro_score.py nat-hash-table \\
        --pcap castan-workload.pcap
    PYTHONPATH=src python tools/repro_score.py nat-hash-table \\
        --synthetic 200000 --seed 1 --store /tmp/castan-store --json

With ``--server`` the job runs on a ``repro.service`` instance instead
(``POST /score``) and this tool follows the NDJSON window stream::

    PYTHONPATH=src python tools/repro_score.py nat-hash-table \\
        --synthetic 100000 --server 127.0.0.1:8321

``--set knob=value`` overrides any ``CastanConfig`` field, same syntax as
``repro_submit.py``.  Scorer knobs (``--batch``, ``--window``, ``--top-k``)
default from ``REPRO_SCORE_BATCH`` / ``REPRO_SCORE_WINDOW`` /
``REPRO_SCORE_TOPK``.  Exit status is 0 when the stream scored cleanly,
1 on any submission, distillation, or transport error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import CastanConfig  # noqa: E402
from repro.scoring.scorer import ScorerOptions  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def parse_overrides(pairs: list[str]) -> dict:
    """``--set knob=value`` pairs → config dict (same syntax as repro_submit)."""
    overrides: dict = {}
    for pair in pairs:
        knob, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--set needs knob=value, got {pair!r}")
        try:
            overrides[knob] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[knob] = raw
    return overrides


def _flow_str(flow: list | tuple) -> str:
    src_ip, dst_ip, src_port, dst_port, protocol = flow
    def ip(value: int) -> str:
        return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
    return f"{ip(src_ip)}:{src_port} -> {ip(dst_ip)}:{dst_port} proto={protocol}"


def _print_signatures(payload: dict) -> None:
    print(f"{payload['nf']}: {payload['count']} signature(s) "
          f"[{payload['content_hash'][:12]}]")
    for signature in payload["signatures"]:
        print(f"  [{signature['kind']}] {signature['label']}")
        print(f"    threshold={signature['threshold_cycles']} cycles "
              f"(baseline {signature['baseline_cycles']}, "
              f"{signature['priming_flows']} priming flows)")


def _print_window(window: dict) -> None:
    print(f"window {window['window']}: packets={window['packets']} "
          f"matched={window['matched']} hits={window['signature_hits']}")
    for offender in window["top_offenders"]:
        print(f"    {_flow_str(offender['flow'])}  x{offender['hits']}")


def _print_summary(summary: dict) -> None:
    print(f"total: {summary['packets']} packets, {summary['matched']} matched, "
          f"{summary['windows']} window(s)")
    for signature in summary["signatures"]:
        print(f"  {signature['hits']:>8}  {signature['label']}")


def _traffic_spec(args: argparse.Namespace) -> dict:
    if args.pcap is not None:
        if not Path(args.pcap).exists():
            raise SystemExit(f"no such pcap: {args.pcap}")
        return {"pcap_path": args.pcap}
    return {"synthetic": args.synthetic, "seed": args.seed}


def _run_offline(args: argparse.Namespace, config_overrides: dict) -> int:
    from repro.scoring.jobs import run_score_job
    from repro.service.store import ResultStore

    config = CastanConfig.from_dict(config_overrides)
    store = ResultStore(args.store) if args.store else None
    options = ScorerOptions()
    if args.batch is not None:
        options.batch_size = args.batch
    if args.window is not None:
        options.window_size = args.window
    if args.top_k is not None:
        options.top_k = args.top_k

    events: list[tuple[str, dict]] = []

    def emit(kind: str, payload: dict) -> None:
        if args.json:
            events.append((kind, payload))
        elif kind == "signatures":
            _print_signatures(payload)
        elif kind == "window":
            _print_window(payload)

    try:
        summary = run_score_job(
            args.nf,
            config,
            _traffic_spec(args),
            num_packets=args.packets,
            store=store,
            options=options,
            emit=emit,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"score failed: {message}", file=sys.stderr)
        return 1
    if args.json:
        document = {
            "events": [{"event": kind, **{kind: payload}} for kind, payload in events],
            "summary": summary,
        }
        print(json.dumps(document, sort_keys=True))
    else:
        _print_summary(summary)
    return 0


def _run_server(args: argparse.Namespace, config_overrides: dict) -> int:
    host, _, port = args.server.partition(":")
    client = ServiceClient(host=host or "127.0.0.1", port=int(port or 8321))
    options = {}
    if args.batch is not None:
        options["batch_size"] = args.batch
    if args.window is not None:
        options["window_size"] = args.window
    if args.top_k is not None:
        options["top_k"] = args.top_k
    try:
        job = client.score(
            args.nf,
            _traffic_spec(args),
            config=config_overrides,
            num_packets=args.packets,
            options=options,
        )
        final: dict = {}
        raw_events: list[dict] = []
        for event in client.stream(job["job_id"]):
            kind = event.get("event")
            if args.json:
                raw_events.append(event)
            elif kind == "signatures":
                _print_signatures(event["signatures"])
            elif kind == "window":
                _print_window(event["window"])
            if kind == "end":
                final = event["job"]
    except ServiceError as error:
        print(f"score failed: {error.message}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"events": raw_events, "job": final}, sort_keys=True))
    elif final.get("result"):
        _print_summary(final["result"])
    if final.get("state") != "done":
        if final.get("error"):
            print(f"error: {final['error']}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("nf", help="NF name or chain: spec to score against")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--pcap", default=None, help="pcap file to score")
    source.add_argument(
        "--synthetic", type=int, default=100_000,
        help="synthetic in-class packets to score (default 100000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="synthetic stream seed")
    parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="KNOB=VALUE", help="CastanConfig override (repeatable)",
    )
    parser.add_argument("--packets", type=int, default=None, help="packets to synthesize")
    parser.add_argument(
        "--store", default=None,
        help="result-store root: reuse cached analyses/signatures, persist new ones",
    )
    parser.add_argument("--batch", type=int, default=None, help="scoring batch size")
    parser.add_argument("--window", type=int, default=None, help="report window size")
    parser.add_argument("--top-k", type=int, default=None, help="offenders per window")
    parser.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="run on a repro.service instance instead of in-process",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON document instead of text"
    )
    args = parser.parse_args(argv)

    config_overrides = parse_overrides(args.overrides)
    if args.server:
        return _run_server(args, config_overrides)
    return _run_offline(args, config_overrides)


if __name__ == "__main__":
    raise SystemExit(main())
