#!/usr/bin/env python3
"""End-to-end smoke test for the synthesis service (the CI ``service-smoke`` job).

Boots ``python -m repro.service`` on an ephemeral port with a throwaway
store, then drives the real REST API through :class:`ServiceClient`:

1. submit one NF at smoke scale and follow its stream — assert per-round
   ``RoundStats`` events arrive before the terminal ``end``;
2. resubmit the identical job — assert it is served as a cache hit from the
   content-addressed store, with a byte-identical canonical result digest;
3. fetch the stored perf record and print a one-line verdict.

Exits non-zero on any failed assertion.  Run it locally with::

    PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.service.client import ServiceClient  # noqa: E402

NF = "lpm-patricia"
CONFIG = {"max_states": 40, "deadline_seconds": None, "search_mode": "beam"}
NUM_PACKETS = 3
BOOT_TIMEOUT = 30.0


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"service-smoke FAILED: {message}")
    print(f"  ok: {message}")


def boot_server(store: str) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro.service --port 0`` and parse the bound port."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"), PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", "--store", store],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit(f"service-smoke FAILED: server exited rc={process.returncode}")
        if "listening on http://" in line:
            url = line.split("listening on ", 1)[1].split()[0]
            port = int(url.rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise SystemExit("service-smoke FAILED: server did not report a port in time")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-smoke-store-") as store:
        process, port = boot_server(store)
        try:
            client = ServiceClient(port=port, timeout=120.0)
            health = client.health()
            check(health["ok"], f"server healthy on port {port}")

            job = client.submit(NF, config=CONFIG, num_packets=NUM_PACKETS)
            check(not job["cached"], f"first submission of {NF} is not a cache hit")

            rounds = 0
            final: dict = {}
            for event in client.stream(job["job_id"]):
                if event["event"] == "round":
                    rounds += 1
                elif event["event"] == "end":
                    final = event["job"]
            check(rounds >= NUM_PACKETS, f"streamed {rounds} RoundStats events")
            check(final.get("state") == "done", "job finished in state 'done'")
            digest = final["result"]["result_digest"]

            again = client.submit(NF, config=CONFIG, num_packets=NUM_PACKETS)
            check(bool(again["cached"]), "second submission is a cache hit")
            check(again["state"] == "done", "cache hit is born terminal")
            cached_digest = again["result"]["result_digest"]
            check(cached_digest == digest, "cached result digest matches the fresh run")

            meta = client.result_meta(again["job_id"])
            perf = meta["perf"]
            check(perf["states_per_sec"] > 0, "stored perf record has a throughput figure")
            check(len(client.store_keys()) == 1, "store holds exactly one entry")

            print(
                f"service-smoke PASSED: {NF} x{NUM_PACKETS} packets, {rounds} rounds, "
                f"{perf['states_per_sec']:.0f} states/s, digest {digest[:16]}…"
            )
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
