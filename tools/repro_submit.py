#!/usr/bin/env python3
"""``repro-submit``: submit synthesis jobs to a running ``repro.service``.

Submit one NF (or an ad-hoc ``chain:`` spec), optionally overriding config
knobs, and optionally follow the job's progress stream to completion::

    PYTHONPATH=src python tools/repro_submit.py lpm-patricia --follow
    PYTHONPATH=src python tools/repro_submit.py chain-gateway \\
        --set max_states=120 --set search_mode=beam --packets 4 --follow
    PYTHONPATH=src python tools/repro_submit.py lpm-patricia nat-hash-table

``--set knob=value`` takes any ``CastanConfig`` field; values parse as JSON
first (numbers, booleans, null) and fall back to strings, so
``--set search_mode=beam`` and ``--set deadline_seconds=null`` both work.
A second submission of an unchanged job prints ``cache hit`` and returns
the stored result without running anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def parse_overrides(pairs: list[str]) -> dict:
    overrides: dict = {}
    for pair in pairs:
        knob, separator, raw = pair.partition("=")
        if not separator:
            raise SystemExit(f"--set needs knob=value, got {pair!r}")
        try:
            overrides[knob] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[knob] = raw
    return overrides


def describe(job: dict) -> str:
    tag = " (cache hit)" if job.get("cached") else ""
    return f"{job['job_id']}: {job['nf']} -> {job['state']}{tag}"


def follow(client: ServiceClient, job_id: str) -> dict:
    """Print the job's event stream; returns the final job dict."""
    final: dict = {}
    for event in client.stream(job_id):
        kind = event.get("event")
        if kind == "status":
            print(f"  [{job_id}] {event['state']} (attempt {event['attempts']})")
        elif kind == "round":
            r = event["round"]
            print(
                f"  [{job_id}] round pkt={r['packet_index']} phase={r['phase']} "
                f"explored={r['states_explored']} best={r['best_cost']} "
                f"({r['wall_time_seconds']:.2f}s)"
            )
        elif kind == "end":
            final = event["job"]
    return final


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("nfs", nargs="+", help="NF names or chain: specs to analyze")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321)
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KNOB=VALUE",
        help="CastanConfig override (repeatable)",
    )
    parser.add_argument("--packets", type=int, default=None, help="packets to synthesize")
    parser.add_argument(
        "--follow", action="store_true", help="stream each job's rounds until it finishes"
    )
    args = parser.parse_args(argv)

    client = ServiceClient(host=args.host, port=args.port)
    config = parse_overrides(args.overrides)
    try:
        jobs = client.submit_many(args.nfs, config=config, num_packets=args.packets)
    except ServiceError as error:
        print(f"submission rejected: {error.message}", file=sys.stderr)
        return 1
    except ConnectionError as error:
        print(
            f"cannot reach repro.service at {args.host}:{args.port} ({error}); "
            "start one with: python -m repro.service",
            file=sys.stderr,
        )
        return 1

    for job in jobs:
        print(describe(job))
    if not args.follow:
        return 0

    failed = 0
    for job in jobs:
        if job["state"] == "done":  # cache hits are already terminal
            continue
        final = follow(client, job["job_id"])
        print(describe(final))
        if final.get("result"):
            print(f"  {final['result']['summary']}")
        if final.get("state") != "done":
            failed += 1
            if final.get("error"):
                print(f"  error: {final['error']}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
