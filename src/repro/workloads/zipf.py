"""Zipfian sampling for the typical-traffic workload.

The paper's Zipfian workload uses exponent s = 1.26, computed from a public
university-network trace; flows are ranked and packet counts follow the
Zipf distribution over those ranks.
"""

from __future__ import annotations

import random

DEFAULT_ZIPF_EXPONENT = 1.26


def zipf_weights(num_ranks: int, exponent: float = DEFAULT_ZIPF_EXPONENT) -> list[float]:
    """Unnormalised Zipf weights for ranks 1..num_ranks."""
    if num_ranks <= 0:
        return []
    return [1.0 / (rank ** exponent) for rank in range(1, num_ranks + 1)]


def zipf_sample(
    num_samples: int,
    num_ranks: int,
    exponent: float = DEFAULT_ZIPF_EXPONENT,
    seed: int = 0,
) -> list[int]:
    """Draw ``num_samples`` ranks (0-based) from a Zipf distribution."""
    weights = zipf_weights(num_ranks, exponent)
    rng = random.Random(seed)
    return rng.choices(range(num_ranks), weights=weights, k=num_samples)


def zipf_flow_counts(
    num_packets: int,
    num_flows: int,
    exponent: float = DEFAULT_ZIPF_EXPONENT,
    seed: int = 0,
) -> list[int]:
    """Packets per flow rank such that the total is exactly ``num_packets``."""
    samples = zipf_sample(num_packets, num_flows, exponent, seed)
    counts = [0] * num_flows
    for rank in samples:
        counts[rank] += 1
    return counts
