"""Workload construction (§5.1).

Every workload is a :class:`Workload`: a named, ordered packet sequence
plus flow statistics.  Packet field choices respect the per-NF
``workload_hints`` (e.g. LB traffic targets the VIP; NAT traffic originates
from the internal prefix), mirroring how the paper tailors its generic
workloads to the "only interesting case" for the LB.

The scaled default sizes keep replay times in seconds: the paper's Zipfian
workload has 100,005 packets in 6,674 flows and UniRand has ~1M packets in
~1M flows; the defaults here preserve the packets-per-flow ratios at a few
thousand packets.

Every generator maps flow indices through :func:`_flow_for_index`, which is
injective per NF — "unirand" really does mean one flow per packet:

>>> from repro.nf.registry import get_nf
>>> from repro.workloads.generators import make_unirand_workload
>>> workload = make_unirand_workload(get_nf("fw-conntrack"), num_packets=50)
>>> (workload.packet_count, workload.flow_count)
(50, 50)
>>> all(p.src_ip >> 24 == 10 for p in workload.packets)  # outbound hint
True
>>> make_unirand_workload(get_nf("dpi-trie"), num_packets=40).flow_count
40
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.flows import FlowKey, unique_flows
from repro.net.packet import IPProtocol, Packet
from repro.nf.base import NetworkFunction
from repro.workloads.zipf import DEFAULT_ZIPF_EXPONENT, zipf_flow_counts

WORKLOAD_NAMES = (
    "1-packet",
    "zipfian",
    "unirand",
    "unirand-castan",
    "castan",
    "manual",
)

# Scaled-down default sizes (paper values in comments).
DEFAULT_ZIPFIAN_PACKETS = 4000  # paper: 100,005
DEFAULT_ZIPFIAN_FLOWS = 267  # paper: 6,674 (same ~15 packets/flow ratio)
DEFAULT_UNIRAND_PACKETS = 4000  # paper: 1,000,472 packets in 1,000,001 flows


@dataclass
class Workload:
    """A named packet sequence."""

    name: str
    packets: list[Packet] = field(default_factory=list)
    description: str = ""

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    @property
    def flow_count(self) -> int:
        return len(unique_flows(self.packets))

    def looped(self, total_packets: int) -> list[Packet]:
        """Replay the workload in a loop until ``total_packets`` are emitted."""
        if not self.packets:
            return []
        out: list[Packet] = []
        while len(out) < total_packets:
            remaining = total_packets - len(out)
            out.extend(self.packets[:remaining])
        return out

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, packets={self.packet_count}, flows={self.flow_count})"


# -- flow synthesis respecting per-NF hints -----------------------------------------


def _flow_for_index(nf: NetworkFunction, index: int, rng: random.Random) -> FlowKey:
    """Build the ``index``-th generated flow for this NF's traffic class.

    The map index → flow is **injective** (distinct indices give distinct
    5-tuples): the (src_ip, src_port) pair encodes the index as a mixed-radix
    number, with the IP carrying ``index mod address_space`` and the port
    disambiguating the quotient.  "Unirand" workloads are documented as one
    flow per packet, so a collision here would silently break them.
    """
    hints = nf.workload_hints
    protocol = hints.get("protocol", int(IPProtocol.UDP))
    # NAT-style sources win when both hints are present (chains composing a
    # NAT/firewall with a router pin the destination *and* need internal
    # sources); the hinted destination then rides along.
    if "src_ip_prefix" in hints:  # NAT-style: sources inside the internal prefix
        prefix = hints["src_ip_prefix"]
        bits = hints.get("src_ip_prefix_bits", 8)
        host_space = (1 << (32 - bits)) - 1
        wrap, host_index = divmod(index, host_space + 1)
        # Odd-multiplier Knuth scrambling is a bijection on the host space;
        # forcing a bit (the old ``| 1``) would fold pairs of hosts together.
        src_ip = prefix | ((host_index * 2654435761) & host_space)
        dst_ip = hints.get("dst_ip", 0x08080808)
        src_port = 1024 + ((host_index * 13 + wrap) % 60000)
        dst_port = 80 if index % 2 == 0 else 443
    elif "dst_ip" in hints:  # LB-style: destination pinned to the VIP
        dst_ip = hints["dst_ip"]
        wrap, host = divmod(index, 0xFFFFFF)
        src_ip = 0x0B000000 + host + 1
        src_port = 1024 + ((host * 7 + wrap) % 60000)
        dst_port = 80
    else:  # LPM-style: destinations spread over the address space
        dst_ip = rng.getrandbits(32)
        wrap, host = divmod(index, 0x10000)
        src_ip = 0xC0A80000 | host
        src_port = 1024 + ((host + wrap) % 60000)
        dst_port = 80
    return FlowKey(
        src_ip=src_ip, dst_ip=dst_ip, src_port=src_port, dst_port=dst_port, protocol=protocol
    )


# -- the generic workloads -------------------------------------------------------------


def make_one_packet_workload(nf: NetworkFunction, packets: int = 1) -> Workload:
    """The *1 Packet* workload: one packet replayed in a loop (best case)."""
    rng = random.Random(1)
    flow = _flow_for_index(nf, 0, rng)
    return Workload(
        name="1-packet",
        packets=[flow.to_packet() for _ in range(max(1, packets))],
        description="A single packet replayed in a loop; best-case behaviour.",
    )


def make_zipfian_workload(
    nf: NetworkFunction,
    num_packets: int = DEFAULT_ZIPFIAN_PACKETS,
    num_flows: int = DEFAULT_ZIPFIAN_FLOWS,
    exponent: float = DEFAULT_ZIPF_EXPONENT,
    seed: int = 2,
) -> Workload:
    """Typical real-world traffic: flow popularity follows Zipf(s=1.26)."""
    rng = random.Random(seed)
    flows = [_flow_for_index(nf, i, rng) for i in range(num_flows)]
    counts = zipf_flow_counts(num_packets, num_flows, exponent, seed)
    packets: list[Packet] = []
    for flow, count in zip(flows, counts):
        packets.extend(flow.to_packet() for _ in range(count))
    rng.shuffle(packets)
    return Workload(
        name="zipfian",
        packets=packets,
        description=f"Zipfian (s={exponent}) traffic: {num_packets} packets, {num_flows} flows.",
    )


def make_unirand_workload(
    nf: NetworkFunction,
    num_packets: int = DEFAULT_UNIRAND_PACKETS,
    seed: int = 3,
) -> Workload:
    """Uniform-random traffic: every packet its own flow (stress test / DoS)."""
    rng = random.Random(seed)
    packets = [_flow_for_index(nf, i, rng).to_packet() for i in range(num_packets)]
    return Workload(
        name="unirand",
        packets=packets,
        description=f"Uniformly random traffic: {num_packets} packets, one flow each.",
    )


def make_unirand_castan_workload(
    nf: NetworkFunction, castan_flow_count: int, seed: int = 4
) -> Workload:
    """Uniform traffic with exactly as many flows as the CASTAN workload.

    Used for a fair comparison when sheer flow count is what matters.
    """
    rng = random.Random(seed)
    packets = [
        _flow_for_index(nf, 100_000 + i, rng).to_packet() for i in range(max(1, castan_flow_count))
    ]
    return Workload(
        name="unirand-castan",
        packets=packets,
        description=f"Uniform traffic with {castan_flow_count} flows (CASTAN-sized).",
    )


def make_manual_workload(nf: NetworkFunction, count: int | None = None) -> Workload | None:
    """The hand-crafted adversarial workload, when one exists for this NF."""
    if nf.manual_workload is None:
        return None
    packets = nf.manual_workload(count or nf.castan_packet_count)
    return Workload(
        name="manual",
        packets=packets,
        description="Hand-crafted adversarial workload (the paper's Manual).",
    )


def make_castan_workload(packets: list[Packet]) -> Workload:
    """Wrap a CASTAN-synthesized packet sequence as a workload."""
    return Workload(
        name="castan",
        packets=list(packets),
        description="Adversarial workload synthesized by CASTAN.",
    )
