"""Workload generators for the evaluation (§5.1).

Generic workloads used across all NFs — *1 Packet*, *Zipfian* (s = 1.26),
*UniRand* — plus the NF-specific ones: *CASTAN* (produced by the analysis),
*UniRand CASTAN* (uniform traffic with as many flows as the CASTAN workload)
and *Manual* (hand-crafted adversarial workloads).
"""

from repro.workloads.generators import (
    WORKLOAD_NAMES,
    Workload,
    make_one_packet_workload,
    make_unirand_castan_workload,
    make_unirand_workload,
    make_zipfian_workload,
)
from repro.workloads.zipf import zipf_sample

__all__ = [
    "WORKLOAD_NAMES",
    "Workload",
    "make_one_packet_workload",
    "make_unirand_castan_workload",
    "make_unirand_workload",
    "make_zipfian_workload",
    "zipf_sample",
]
