"""Per-packet performance counters (the libPAPI stand-in).

The evaluation's micro-architectural characterisation reports, per packet:
reference cycles, instructions retired and L3 misses (DRAM accesses).  The
concrete interpreter emits one :class:`PacketCounters` per processed packet;
:func:`aggregate_counters` computes the medians/CDF points the paper's
tables and figures use.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PacketCounters:
    """Counters measured while processing one packet on the simulated DUT."""

    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    l3_misses: int = 0  # DRAM accesses
    action: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores


@dataclass
class CounterSummary:
    """Aggregate view over a sequence of per-packet counters."""

    packets: int = 0
    median_cycles: float = 0.0
    median_instructions: float = 0.0
    median_l3_misses: float = 0.0
    mean_cycles: float = 0.0
    max_cycles: int = 0
    cycles: list[int] = field(default_factory=list)
    instructions: list[int] = field(default_factory=list)
    l3_misses: list[int] = field(default_factory=list)


def _median(values: list[int]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def aggregate_counters(counters: list[PacketCounters]) -> CounterSummary:
    """Summarise per-packet counters (medians, mean, max, raw series)."""
    if not counters:
        return CounterSummary()
    cycles = [c.cycles for c in counters]
    instructions = [c.instructions for c in counters]
    l3_misses = [c.l3_misses for c in counters]
    return CounterSummary(
        packets=len(counters),
        median_cycles=_median(cycles),
        median_instructions=_median(instructions),
        median_l3_misses=_median(l3_misses),
        mean_cycles=sum(cycles) / len(cycles),
        max_cycles=max(cycles),
        cycles=cycles,
        instructions=instructions,
        l3_misses=l3_misses,
    )
