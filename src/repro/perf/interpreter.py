"""Concrete NFIL interpreter with cycle accounting (the simulated DUT CPU).

The interpreter executes the *same* NFIL module that CASTAN analysed, with
concrete packet field values, against the simulated memory hierarchy.  Per
packet it reports reference cycles, instructions retired, loads/stores and
the cache level servicing every access — the quantities the paper measures
with hardware performance counters.  ``castan_havoc`` annotations behave as
in production builds: the hash function is simply called.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import MemoryHierarchy
from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    CmpKind,
    Compare,
    Havoc,
    Jump,
    Load,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.values import Constant, Register, Value
from repro.net.packet import Packet
from repro.perf.counters import PacketCounters
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS

MACHINE_MASK = (1 << 64) - 1


class ExecutionError(RuntimeError):
    """Raised when the concrete interpreter hits an illegal operation."""


@dataclass
class ExecutionResult:
    """Counters for a sequence of processed packets."""

    per_packet: list[PacketCounters] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(c.cycles for c in self.per_packet)

    @property
    def packet_count(self) -> int:
        return len(self.per_packet)


class ConcreteInterpreter:
    """Executes an NFIL module packet-by-packet on the simulated hierarchy."""

    def __init__(
        self,
        module: Module,
        entry: str,
        hierarchy: MemoryHierarchy | None = None,
        cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS,
        max_instructions_per_packet: int = 2_000_000,
    ) -> None:
        self.module = module
        self.entry = entry
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.cycle_costs = cycle_costs
        self.max_instructions_per_packet = max_instructions_per_packet
        self._entry_function = module.get_function(entry)
        self._blocks = {
            name: {block.name: block for block in function.blocks}
            for name, function in module.functions.items()
        }
        # Persistent NF state: region -> {index: value}; unset cells read
        # their declared initial value (default 0).
        self._memory: dict[str, dict[int, int]] = {
            name: dict(region.initial) for name, region in module.regions.items()
        }

    # -- state management ------------------------------------------------------

    def reset(self) -> None:
        """Reset NF state and cold-start the caches (fresh DUT boot)."""
        self._memory = {
            name: dict(region.initial) for name, region in self.module.regions.items()
        }
        self.hierarchy.reset_caches()

    def snapshot_state(self) -> object:
        """Capture NF memory + cache state for :meth:`restore_state`.

        Used by the scoring replay layer to prime an NF with an adversarial
        workload once and then measure many independent probe packets from
        the identical primed state.
        """
        import copy

        return (copy.deepcopy(self._memory), copy.deepcopy(self.hierarchy))

    def restore_state(self, snapshot: object) -> None:
        """Restore a :meth:`snapshot_state` capture (reusable any number of times)."""
        import copy

        memory, hierarchy = snapshot
        self._memory = copy.deepcopy(memory)
        self.hierarchy = copy.deepcopy(hierarchy)

    def read_region(self, region_name: str, index: int) -> int:
        """Inspect NF state (tests and examples)."""
        region = self.module.get_region(region_name)
        return self._memory[region_name].get(index, region.initial.get(index, 0))

    # -- packet processing -------------------------------------------------------

    def process_packet(self, packet: Packet) -> PacketCounters:
        """Process one packet through the entry function."""
        args = [packet.src_ip, packet.dst_ip, packet.src_port, packet.dst_port, packet.protocol]
        return self.call_entry(args)

    def process_packets(self, packets: list[Packet]) -> ExecutionResult:
        """Process a packet sequence, threading NF state across packets."""
        result = ExecutionResult()
        for packet in packets:
            result.per_packet.append(self.process_packet(packet))
        return result

    def call_entry(self, args: list[int]) -> PacketCounters:
        """Call the entry function with raw integer arguments."""
        params = self._entry_function.params
        if len(args) != len(params):
            raise ExecutionError(
                f"entry {self.entry!r} takes {len(params)} args, got {len(args)}"
            )
        counters = PacketCounters()
        value = self._run_function(self.entry, list(args), counters, depth=0)
        counters.action = value
        return counters

    def call_function(self, name: str, args: list[int]) -> int:
        """Call an arbitrary module function concretely (no counters kept)."""
        return self._run_function(name, list(args), PacketCounters(), depth=0)

    # -- interpreter core -----------------------------------------------------------

    def _run_function(self, name: str, args: list[int], counters: PacketCounters, depth: int) -> int:
        if depth > 64:
            raise ExecutionError("call depth limit exceeded")
        function = self.module.get_function(name)
        registers: dict[str, int] = {
            param: arg & MACHINE_MASK for param, arg in zip(function.params, args)
        }
        blocks = self._blocks[name]
        block = function.entry_block
        index = 0
        executed = 0

        def operand(value: Value) -> int:
            if isinstance(value, Constant):
                return value.value
            if isinstance(value, Register):
                try:
                    return registers[value.name]
                except KeyError:
                    raise ExecutionError(
                        f"read of undefined register %{value.name} in {name}"
                    ) from None
            raise ExecutionError(f"unsupported operand {value!r}")

        while True:
            if index >= len(block.instructions):
                raise ExecutionError(f"fell off the end of block {block.name!r} in {name}")
            executed += 1
            if executed > self.max_instructions_per_packet:
                raise ExecutionError(f"instruction budget exceeded in {name}")
            instruction = block.instructions[index]
            counters.instructions += 1

            if isinstance(instruction, BinaryOp):
                result = self._binop(instruction.op, operand(instruction.lhs), operand(instruction.rhs))
                registers[instruction.dest.name] = result
                counters.cycles += self.cycle_costs.instruction_cost(instruction)
                index += 1
            elif isinstance(instruction, Compare):
                result = self._cmp(instruction.pred, operand(instruction.lhs), operand(instruction.rhs))
                registers[instruction.dest.name] = result
                counters.cycles += self.cycle_costs.compare
                index += 1
            elif isinstance(instruction, Select):
                cond = operand(instruction.cond)
                registers[instruction.dest.name] = (
                    operand(instruction.if_true) if cond else operand(instruction.if_false)
                )
                counters.cycles += self.cycle_costs.select
                index += 1
            elif isinstance(instruction, Load):
                region = self.module.get_region(instruction.region)
                element = operand(instruction.index)
                self._check_bounds(region.name, element, region.length)
                level = self._access(region.address_of(element), counters, is_write=False)
                counters.loads += 1
                counters.cycles += self.cycle_costs.memory_cost(level)
                registers[instruction.dest.name] = self._memory[region.name].get(
                    element, region.initial.get(element, 0)
                )
                index += 1
            elif isinstance(instruction, Store):
                region = self.module.get_region(instruction.region)
                element = operand(instruction.index)
                self._check_bounds(region.name, element, region.length)
                level = self._access(region.address_of(element), counters, is_write=True)
                counters.stores += 1
                counters.cycles += self.cycle_costs.memory_cost(level)
                self._memory[region.name][element] = operand(instruction.value) & MACHINE_MASK
                index += 1
            elif isinstance(instruction, Call):
                counters.cycles += self.cycle_costs.call_overhead
                value = self._run_function(
                    instruction.callee, [operand(a) for a in instruction.args], counters, depth + 1
                )
                if instruction.dest is not None:
                    registers[instruction.dest.name] = value
                index += 1
            elif isinstance(instruction, Havoc):
                # Production semantics: just call the annotated hash function.
                counters.cycles += self.cycle_costs.call_overhead
                value = self._run_function(
                    instruction.hash_function, [operand(a) for a in instruction.args], counters, depth + 1
                )
                registers[instruction.dest.name] = value
                index += 1
            elif isinstance(instruction, Jump):
                counters.cycles += self.cycle_costs.jump
                block = blocks[instruction.target]
                index = 0
            elif isinstance(instruction, Branch):
                counters.cycles += self.cycle_costs.branch
                target = instruction.if_true if operand(instruction.cond) else instruction.if_false
                block = blocks[target]
                index = 0
            elif isinstance(instruction, Return):
                counters.cycles += self.cycle_costs.return_cost
                return operand(instruction.value) if instruction.value is not None else 0
            elif isinstance(instruction, Unreachable):
                raise ExecutionError(f"reached unreachable in {name}")
            else:
                raise ExecutionError(f"unknown instruction {instruction!r}")

    # -- helpers ------------------------------------------------------------------------

    def _check_bounds(self, region_name: str, index: int, length: int) -> None:
        if not (0 <= index < length):
            raise ExecutionError(
                f"out-of-bounds access to @{region_name}[{index}] (length {length})"
            )

    def _access(self, address: int, counters: PacketCounters, is_write: bool) -> str:
        level = self.hierarchy.access(address, is_write=is_write)
        if level == "L1":
            counters.l1_hits += 1
        elif level == "L2":
            counters.l2_hits += 1
        elif level == "L3":
            counters.l3_hits += 1
        else:
            counters.l3_misses += 1
        return level

    @staticmethod
    def _binop(op: BinOpKind, lhs: int, rhs: int) -> int:
        if op is BinOpKind.ADD:
            return (lhs + rhs) & MACHINE_MASK
        if op is BinOpKind.SUB:
            return (lhs - rhs) & MACHINE_MASK
        if op is BinOpKind.MUL:
            return (lhs * rhs) & MACHINE_MASK
        if op is BinOpKind.UDIV:
            return (lhs // rhs) & MACHINE_MASK if rhs else MACHINE_MASK
        if op is BinOpKind.UREM:
            return (lhs % rhs) & MACHINE_MASK if rhs else lhs
        if op is BinOpKind.AND:
            return lhs & rhs
        if op is BinOpKind.OR:
            return lhs | rhs
        if op is BinOpKind.XOR:
            return lhs ^ rhs
        if op is BinOpKind.SHL:
            return (lhs << rhs) & MACHINE_MASK if rhs < 64 else 0
        if op is BinOpKind.LSHR:
            return lhs >> rhs if rhs < 64 else 0
        raise ExecutionError(f"unknown binary op {op}")

    @staticmethod
    def _cmp(pred: CmpKind, lhs: int, rhs: int) -> int:
        if pred is CmpKind.EQ:
            return int(lhs == rhs)
        if pred is CmpKind.NE:
            return int(lhs != rhs)
        if pred is CmpKind.ULT:
            return int(lhs < rhs)
        if pred is CmpKind.ULE:
            return int(lhs <= rhs)
        if pred is CmpKind.UGT:
            return int(lhs > rhs)
        if pred is CmpKind.UGE:
            return int(lhs >= rhs)
        raise ExecutionError(f"unknown comparison {pred}")
