"""Per-instruction and per-memory-level cycle costs (§3.3).

The paper assigns each non-memory instruction "a fixed per-instruction cost
learned empirically" and each memory access "a fixed per-memory-level cost".
The defaults below follow published latencies for the Ivy Bridge-EP part
used in the paper (L1 ≈ 4 cycles, L2 ≈ 12, L3 ≈ 40, DRAM ≈ 200) and small
fixed ALU costs.  Both the CASTAN cost heuristic and the concrete DUT
interpreter read from the same table, so the analysis optimises the very
metric the testbed measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    Compare,
    Havoc,
    Instruction,
    Jump,
    Load,
    Return,
    Select,
    Store,
    Unreachable,
)


@dataclass(frozen=True)
class CycleCosts:
    """Cycle cost table for the simulated processor."""

    alu: int = 1
    mul: int = 3
    div: int = 20
    compare: int = 1
    select: int = 1
    branch: int = 2
    jump: int = 1
    call_overhead: int = 5
    return_cost: int = 2
    hash_call: int = 30
    l1_hit: int = 4
    l2_hit: int = 12
    l3_hit: int = 40
    dram: int = 200
    frequency_ghz: float = 3.3
    extra: dict = field(default_factory=dict)

    def memory_cost(self, level: str) -> int:
        """Cycle cost of a memory access serviced at ``level``.

        ``level`` is one of ``"L1"``, ``"L2"``, ``"L3"``, ``"DRAM"``.
        """
        return {
            "L1": self.l1_hit,
            "L2": self.l2_hit,
            "L3": self.l3_hit,
            "DRAM": self.dram,
        }[level]

    def instruction_cost(self, instruction: Instruction, memory_level: str = "L1") -> int:
        """Cycle cost of one instruction.

        Memory instructions are charged the cost of the level that services
        them (defaults to L1, which is what the §3.4 pre-processing stage
        assumes); all other instructions are charged their fixed cost.
        """
        if isinstance(instruction, (Load, Store)):
            return self.memory_cost(memory_level)
        if isinstance(instruction, BinaryOp):
            if instruction.op is BinOpKind.MUL:
                return self.mul
            if instruction.op in (BinOpKind.UDIV, BinOpKind.UREM):
                return self.div
            return self.alu
        if isinstance(instruction, Compare):
            return self.compare
        if isinstance(instruction, Select):
            return self.select
        if isinstance(instruction, Branch):
            return self.branch
        if isinstance(instruction, Jump):
            return self.jump
        if isinstance(instruction, Call):
            return self.call_overhead
        if isinstance(instruction, Havoc):
            # In production a havoc is a hash-function call.
            return self.call_overhead
        if isinstance(instruction, Return):
            return self.return_cost
        if isinstance(instruction, Unreachable):
            return 0
        return self.alu

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count into nanoseconds at the DUT frequency."""
        return cycles / self.frequency_ghz


DEFAULT_CYCLE_COSTS = CycleCosts()
