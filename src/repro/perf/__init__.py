"""Concrete performance model: the simulated DUT CPU.

This subpackage is the stand-in for running the NF on the paper's Intel
Xeon E5-2667v2 testbed and reading hardware performance counters through
libPAPI.  It contains the per-instruction cycle cost table shared with the
analysis side, a concrete NFIL interpreter that executes packets against
the simulated memory hierarchy, and the per-packet counter records
(instructions retired, reference cycles, L3 misses) that the evaluation
tables are built from.

Public names are re-exported lazily to avoid import cycles with
:mod:`repro.cache`.
"""

from repro._lazy import lazy_exports

__all__ = [
    "ConcreteInterpreter",
    "CycleCosts",
    "DEFAULT_CYCLE_COSTS",
    "ExecutionError",
    "ExecutionResult",
    "PacketCounters",
    "aggregate_counters",
]

_EXPORTS = {
    "PacketCounters": (".counters", "PacketCounters"),
    "aggregate_counters": (".counters", "aggregate_counters"),
    "CycleCosts": (".cycles", "CycleCosts"),
    "DEFAULT_CYCLE_COSTS": (".cycles", "DEFAULT_CYCLE_COSTS"),
    "ConcreteInterpreter": (".interpreter", "ConcreteInterpreter"),
    "ExecutionError": (".interpreter", "ExecutionError"),
    "ExecutionResult": (".interpreter", "ExecutionResult"),
}

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
