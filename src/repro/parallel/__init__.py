"""Process-parallel analysis orchestration (portfolio fan-out + beam shards).

Two independent axes of parallelism, selected by
:attr:`repro.core.config.CastanConfig.parallel_mode`:

* ``"portfolio"`` — :class:`~repro.parallel.portfolio.PortfolioRunner` fans a
  *set of NFs* (the 17-NF evaluation suite) out over worker
  processes, one full ``Castan`` analysis per task, and merges the results
  back in registry order.  Per-NF analyses are deterministic and
  independent, so the merged output is byte-identical to a sequential run.
* ``"shards"`` — :func:`~repro.parallel.shards.run_sharded_beam_search`
  parallelises *within* one NF: every beam branch of a priming round and
  every strike-round chunk is a hermetic, independently-seeded engine call
  that can execute in a worker process.  The shard schedule depends only on
  the configuration (never on ``workers``), so a run with ``workers=4`` is
  byte-identical to the same run with ``workers=0``.

States travel between processes through the compact pickle path added to
:class:`~repro.symbex.state.ExecutionState` /
:class:`~repro.symbex.incremental.SolverContext` (expressions re-interned,
constraint chains re-fingerprinted on load).

A third, service-shaped piece lives in :mod:`repro.parallel.lease`: the
:class:`~repro.parallel.lease.WorkerLease` heartbeat/budget supervision the
synthesis service (:mod:`repro.service`) wraps around each per-job worker
process.
"""

from repro.parallel.lease import WorkerLease
from repro.parallel.pool import make_context, make_pool
from repro.parallel.portfolio import PortfolioRunner, analyze_one_nf
from repro.parallel.shards import run_sharded_beam_search

__all__ = [
    "PortfolioRunner",
    "WorkerLease",
    "analyze_one_nf",
    "make_context",
    "make_pool",
    "run_sharded_beam_search",
]
