"""Worker leases: heartbeat-supervised analysis processes.

The synthesis service (:mod:`repro.service`) runs every job in its own
worker process so a wedged or runaway analysis can be revoked without
taking the server down.  A :class:`WorkerLease` is the server-side handle:
it tracks the worker's heartbeats (the worker emits one on its progress
queue every ``heartbeat_interval`` seconds from a daemon thread, so a
long solver round cannot be mistaken for a hang) and the job's wall-clock
budget, and :meth:`revoke` tears the process down — ``terminate`` first,
``kill`` if it refuses to die.

The lease itself is transport-agnostic: it never reads the queue.  The
owner drains events and calls :meth:`touch` on every one (any traffic
proves liveness), then polls :meth:`overdue` to decide whether the worker
lost its lease.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class WorkerLease:
    """Liveness + budget supervision for one worker process."""

    process: object  # multiprocessing.Process (any context)
    job_timeout: float | None = None
    lease_timeout: float | None = 30.0
    started: float = field(default_factory=time.monotonic)
    last_beat: float = field(default_factory=time.monotonic)

    def touch(self) -> None:
        """Record proof of life (any event from the worker counts)."""
        self.last_beat = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def overdue(self) -> str | None:
        """Why this lease should be revoked, or ``None`` while healthy.

        ``"timeout"`` — the job exceeded its wall-clock budget;
        ``"lease"`` — the worker stopped heartbeating (crashed, wedged, or
        lost) for longer than ``lease_timeout``.
        """
        now = time.monotonic()
        if self.job_timeout is not None and now - self.started > self.job_timeout:
            return "timeout"
        if self.lease_timeout is not None and now - self.last_beat > self.lease_timeout:
            return "lease"
        return None

    def alive(self) -> bool:
        return bool(self.process.is_alive())

    def revoke(self, grace_seconds: float = 2.0) -> None:
        """Tear the worker down: terminate, then kill after ``grace_seconds``."""
        if not self.process.is_alive():
            self.process.join(timeout=0)
            return
        self.process.terminate()
        self.process.join(timeout=grace_seconds)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=grace_seconds)
