"""Portfolio analysis: the multi-NF evaluation suite over worker processes.

CASTAN's evaluation analyses 15 NFs end-to-end; each analysis is an
independent, deterministic pipeline (ICFG annotation, cache-model
construction, symbolic search, solving, havoc reconciliation), so the
portfolio is embarrassingly parallel.  :class:`PortfolioRunner` fans the
suite out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
collects results *by NF name*, returning them in the order the names were
given — registry order for the evaluation suite — regardless of worker
completion order.  Workload bytes and best-state costs are identical to a
sequential run of the same configuration (``benchmarks/bench_parallel.py``
checks this on every run, and the ``bench-regression`` CI job pins the
sequential digests).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.parallel.pool import make_pool


def analyze_one_nf(
    name: str,
    config: CastanConfig,
    num_packets: int | None = None,
    on_round=None,
) -> CastanResult:
    """Worker entry point: one full ``Castan`` analysis of one NF.

    ``name`` accepts anything :func:`~repro.nf.registry.get_nf` does,
    including ad-hoc ``chain:`` specs.  ``on_round`` streams per-round
    progress (see :meth:`~repro.core.castan.Castan.analyze`); the synthesis
    service (:mod:`repro.service`) runs its jobs through this same entry
    point so served and portfolio results are produced by identical code.
    """
    from repro.nf.registry import get_nf

    return Castan(config).analyze(get_nf(name), num_packets=num_packets, on_round=on_round)


def _scheduling_weight(name: str) -> int:
    """Expected relative analysis cost of one NF (scheduling hint only).

    Hash-based NFs dominate wall-clock (havoc-heavy paths keep the solver
    busy), and cost grows with the per-NF packet count.  The weight only
    orders *submission* — results are still merged in input order — so a bad
    estimate costs wall-clock, never correctness.
    """
    from repro.nf.registry import get_nf

    nf = get_nf(name)
    return nf.castan_packet_count * (4 if nf.hash_functions else 1)


class PortfolioRunner:
    """Run a set of NF analyses, optionally across worker processes.

    ``workers <= 1`` runs the portfolio serially in-process through the same
    per-NF task function the workers use, so the two execution modes produce
    identical results.  Each parallel task ships only ``(name, config)`` to
    the worker and returns one :class:`~repro.core.castan.CastanResult`.
    """

    def __init__(
        self,
        config: CastanConfig | None = None,
        workers: int = 0,
        num_packets: int | None = None,
    ) -> None:
        self.config = config or CastanConfig()
        self.workers = workers
        self.num_packets = num_packets

    def worker_config(self) -> CastanConfig:
        """The per-NF config shipped to workers.

        ``parallel_mode="portfolio"`` is this runner's own directive, not the
        per-analysis engine's: it is normalised to ``"off"`` so workers never
        try to fan out again.  An explicit ``"shards"`` mode is left intact
        (hierarchical parallelism, if a caller really asks for it).
        """
        if self.config.parallel_mode == "portfolio":
            return replace(self.config, parallel_mode="off", workers=0)
        return self.config

    def run(self, names: Sequence[str]) -> list[CastanResult]:
        """Analyse every NF in ``names``; results come back in input order."""
        names = list(names)
        config = self.worker_config()
        if self.workers <= 1 or len(names) <= 1:
            return [analyze_one_nf(name, config, self.num_packets) for name in names]
        pool = make_pool(min(self.workers, len(names)))
        try:
            # Longest-expected-first submission shrinks the makespan tail
            # (the pool would otherwise start the most expensive NF last).
            order = sorted(
                range(len(names)),
                key=lambda i: (-_scheduling_weight(names[i]), i),
            )
            futures = {}
            for index in order:
                futures[index] = pool.submit(
                    analyze_one_nf,
                    names[index],
                    config,
                    self.num_packets,
                )
            # Deterministic collection: merge by input order, not by
            # completion order.
            return [futures[index].result() for index in range(len(names))]
        finally:
            pool.shutdown()

    def run_map(self, names: Sequence[str]) -> dict[str, CastanResult]:
        """Like :meth:`run`, keyed by NF name."""
        names = list(names)
        return dict(zip(names, self.run(names)))
