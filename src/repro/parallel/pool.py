"""Worker-pool construction shared by the parallel orchestrators."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

#: Start-method preference: ``fork`` keeps worker start-up cheap and lets
#: workers inherit the parent's interned-expression and memo tables (both
#: are pure caches, so inheriting them is sound and saves re-derivation);
#: platforms without ``fork`` fall back to ``spawn``, where the compact
#: pickle path rebuilds everything on load.
_START_METHODS = ("fork", "spawn")


def make_context() -> multiprocessing.context.BaseContext:
    """The preferred multiprocessing context (``fork`` where available).

    Shared by the pool below and by the synthesis service's per-job worker
    processes (:mod:`repro.parallel.lease`), so every process this package
    spawns starts the same way.
    """
    for method in _START_METHODS:
        if method in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


def make_pool(workers: int) -> ProcessPoolExecutor | None:
    """A process pool with ``workers`` workers, or ``None`` for ``workers<=1``.

    ``None`` signals the caller to execute its task list serially in-process
    through the *same* task functions, which is what keeps serial and
    parallel runs byte-identical.
    """
    if workers <= 1:
        return None
    return ProcessPoolExecutor(max_workers=workers, mp_context=make_context())
