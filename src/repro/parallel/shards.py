"""Sharded per-packet beam search: one NF's rounds across worker processes.

PR 2's beam scheduler (:mod:`repro.symbex.batch`) already decomposed
synthesis into resumable per-packet rounds; this module decomposes each
round into *shards* — hermetic ``SymbolicEngine.run`` calls that can execute
in worker processes:

* every **priming-round beam branch** is one shard: the K frontier states
  selected by :func:`~repro.symbex.searcher.select_beam` each explore their
  next packet independently under the slim priming budget;
* every **strike-round chunk** stripes its frontier over a fixed number of
  shards (``strike_shards``, default ``beam_width``), each spending the
  chunk budget on the final packet.

Two properties make ``workers=N`` byte-identical to ``workers=0``:

1. the shard *schedule* (how states are grouped, budgeted and seeded) is a
   pure function of the configuration — ``workers`` only chooses how many
   shards run concurrently;
2. every shard is *hermetic*: it gets a deterministic state-id base (so
   forked states and havoc symbols get the same names wherever the shard
   runs), a freshly seeded searcher, and budgets fixed before the round
   starts.  Shard results are merged in shard order, and the next round's
   seeds are re-selected by the same ``select_beam`` ordering, so worker
   completion order cannot leak into the output.

States cross the process boundary through the compact pickle path:
expressions re-intern on load, and each
:class:`~repro.symbex.incremental.SolverContext` re-fingerprints its
constraint chain against the destination process's tables.
"""

from __future__ import annotations

import itertools
import time

from repro.parallel.pool import make_pool
from repro.symbex.batch import RoundStats, _best_key, _truncate_report
from repro.symbex.engine import SymbexStats, SymbolicEngine
from repro.symbex.searcher import make_searcher, select_beam
from repro.symbex.state import ExecutionState

#: Distance between the state-id bases of consecutive shards.  Each shard
#: run rebases the process-global state-id counter so fork order inside the
#: shard — not which process the shard landed in — determines state ids (and
#: therefore havoc-symbol names and beam tie-breaks).  The stride just has
#: to exceed any single shard's state budget.
SID_STRIDE = 1 << 20


def run_shard(
    engine: SymbolicEngine,
    seeds: list[ExecutionState],
    searcher_name: str,
    searcher_seed: int | None,
    sid_base: int,
    max_states: int | None,
    deadline_seconds: float | None,
    max_instructions_per_state: int,
    stop_at_packet: int | None,
) -> SymbexStats:
    """Execute one hermetic shard (worker entry point, also run in-process).

    Rebasing ``ExecutionState._ids`` is what makes the shard hermetic: state
    ids minted here depend only on ``sid_base`` and the (deterministic) fork
    order, never on process history.
    """
    ExecutionState._ids = itertools.count(sid_base)
    searcher = make_searcher(searcher_name, seed=searcher_seed)
    return engine.run(
        searcher,
        max_states=max_states,
        deadline_seconds=deadline_seconds,
        max_instructions_per_state=max_instructions_per_state,
        # Shard frontiers are live search state: never truncate mid-search.
        max_pending_report=None,
        initial_states=seeds,
        stop_at_packet=stop_at_packet,
    )


def _stripe(states: list[ExecutionState], shard_count: int) -> list[list[ExecutionState]]:
    """Deal ``states`` round-robin into at most ``shard_count`` groups.

    States are first ranked by the ``select_beam`` ordering so each shard
    receives a comparable mix of promising and speculative states; the
    grouping is a pure function of the ranked list.
    """
    ranked = select_beam(states, len(states))
    groups = [ranked[offset::shard_count] for offset in range(shard_count)]
    return [group for group in groups if group]


def run_sharded_beam_search(
    engine: SymbolicEngine,
    searcher_name: str,
    searcher_seed: int | None,
    beam_width: int,
    workers: int = 0,
    max_states: int | None = None,
    deadline_seconds: float | None = None,
    max_instructions_per_state: int = 100_000,
    round_max_states: int | None = None,
    round_deadline_seconds: float | None = None,
    strike_chunk_states: int = 32,
    strike_shards: int | None = None,
    max_pending_report: int | None = 512,
    on_round=None,
) -> SymbexStats:
    """Per-packet beam search with rounds decomposed into parallel shards.

    Budget semantics differ from the sequential scheduler in one documented
    way: priming (``round_max_states``) and strike-chunk
    (``strike_chunk_states``) budgets are *per shard*, since shards cannot
    share a searcher.  ``max_states`` remains a global cap — per-shard caps
    are clamped to the budget remaining before each round, so one round may
    overshoot it by at most ``shards - 1`` shard budgets.

    ``on_round`` (observation only, like the sequential scheduler's) fires
    once per *shard* as each round's results merge — in shard order, after
    the shard completed, so streaming progress never perturbs the schedule.
    """
    num_packets = len(engine.packet_args)
    if beam_width <= 0 or num_packets == 0:
        return engine.run(
            make_searcher(searcher_name, seed=searcher_seed),
            max_states=max_states,
            deadline_seconds=deadline_seconds,
            max_instructions_per_state=max_instructions_per_state,
            max_pending_report=max_pending_report,
        )

    prime_budget = round_max_states if round_max_states is not None else beam_width + 1
    shard_count = max(1, strike_shards if strike_shards is not None else beam_width)
    total = SymbexStats()
    start = time.monotonic()
    best: ExecutionState | None = None
    shard_serial = itertools.count(1)
    last_paused: list[ExecutionState] = []
    last_pending: list[ExecutionState] = []
    rounds_ran = 0

    def remaining_budget() -> int | None:
        if max_states is None:
            return None
        return max_states - total.states_explored

    def call_deadline() -> float | None:
        if deadline_seconds is None:
            return round_deadline_seconds
        left = deadline_seconds - (time.monotonic() - start)
        if round_deadline_seconds is None:
            return left
        return min(round_deadline_seconds, left)

    def out_of_budget() -> bool:
        remaining = remaining_budget()
        if remaining is not None and remaining <= 0:
            return True
        deadline = call_deadline()
        return deadline is not None and deadline <= 0

    pool = make_pool(workers)
    try:
        # Rebase the id counter before the initial state so the whole
        # schedule starts from state id 0 no matter what ran earlier in this
        # process (shard bases are all >= SID_STRIDE, so they never collide
        # with seed ids).
        ExecutionState._ids = itertools.count(0)
        seeds = [engine.make_initial_state()]

        def run_round(
            groups: list[list[ExecutionState]],
            stop_at_packet: int,
            budget_cap: int | None,
            phase: str,
        ) -> tuple[list[SymbexStats], list[ExecutionState]]:
            nonlocal best, last_paused, last_pending, rounds_ran
            # Fix every shard's budget *before* the round: serial execution
            # must not see budget updates between shards that parallel
            # execution could not.
            remaining = remaining_budget()
            if budget_cap is None:
                cap = remaining
            elif remaining is None:
                cap = budget_cap
            else:
                cap = min(budget_cap, remaining)
            deadline = call_deadline()
            jobs = [(next(shard_serial) * SID_STRIDE, group) for group in groups]
            args = [
                (
                    engine,
                    group,
                    searcher_name,
                    searcher_seed,
                    sid_base,
                    cap,
                    deadline,
                    max_instructions_per_state,
                    stop_at_packet,
                )
                for sid_base, group in jobs
            ]
            if pool is None:
                shard_stats = [run_shard(*task) for task in args]
            else:
                futures = [pool.submit(run_shard, *task) for task in args]
                # Deterministic merge: collect in shard order, not in
                # completion order.
                shard_stats = [future.result() for future in futures]
            frontier: list[ExecutionState] = []
            last_paused = []
            last_pending = []
            for (sid_base, group), stats in zip(jobs, shard_stats):
                total.merge_round(stats)
                for state in stats.completed_states:
                    if best is None or _best_key(state) > _best_key(best):
                        best = state
                frontier.extend(stats.paused_states)
                frontier.extend(stats.pending_states)
                last_paused.extend(stats.paused_states)
                last_pending.extend(stats.pending_states)
                reported = stats.paused_states + stats.pending_states + stats.completed_states
                round_best = max((s.current_cost for s in reported), default=0)
                total.rounds.append(
                    RoundStats(
                        packet_index=min(stop_at_packet, num_packets) - 1,
                        phase=phase,
                        seeds=len(group),
                        states_explored=stats.states_explored,
                        forks=stats.forks,
                        paused=len(stats.paused_states),
                        pending=len(stats.pending_states),
                        completed=len(stats.completed_states),
                        infeasible=stats.infeasible_states,
                        errors=stats.error_states,
                        best_cost=round_best,
                        wall_time_seconds=stats.wall_time_seconds,
                    )
                )
                if on_round is not None:
                    on_round(total.rounds[-1])
            rounds_ran += 1
            return shard_stats, frontier

        # -- priming rounds: one shard per beam branch ------------------------
        frontier = seeds
        for packet_index in range(num_packets - 1):
            if out_of_budget():
                break
            beam = select_beam(frontier, beam_width)
            _, frontier = run_round(
                [[state] for state in beam],
                packet_index + 1,
                prime_budget,
                "prime",
            )
            if not frontier:
                break

        # -- strike round: chunks of the final packet, striped over shards ----
        if frontier:
            chunk_seeds = select_beam(frontier, beam_width)
            while not out_of_budget():
                before = best
                shard_stats, frontier = run_round(
                    _stripe(chunk_seeds, shard_count),
                    num_packets,
                    strike_chunk_states,
                    "strike",
                )
                if not frontier:
                    break
                if any(stats.completed_states for stats in shard_stats) and best is before:
                    # Paths are completing but none beats the best seen: the
                    # strike has converged; spend no more of the budget.
                    break
                # Chunks carry the whole frontier, like the sequential
                # scheduler's strike.
                chunk_seeds = frontier
    finally:
        if pool is not None:
            pool.shutdown()

    if rounds_ran:
        total.paused_states = list(last_paused)
        total.pending_states = _truncate_report(last_pending, max_pending_report)
    else:
        # Budget/deadline exhausted before any round ran: report the seed
        # frontier so the caller can still fall back to a partial state.
        total.pending_states = list(seeds)
    total.wall_time_seconds = time.monotonic() - start
    return total
