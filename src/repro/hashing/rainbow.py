"""Rainbow tables for inverting NF hash functions (§3.5).

A rainbow table trades memory for inversion time: chains of alternating
hash and *reduction* steps are precomputed, storing only each chain's start
key and final hash.  To invert a target hash value, the lookup re-applies
the tail of every possible chain position, finds chains whose stored end
matches, and walks those chains from the start to recover candidate keys.

The reduction function maps a hash value (plus the chain position, to avoid
chain merges) back into the *key space*.  CASTAN exploits this degree of
freedom for "custom-tailored" tables: by sampling keys that already satisfy
packet constraints (e.g. UDP only, ports in range), the recovered preimages
are far more likely to survive the solver's compatibility check (§3.5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.hashing.functions import FLOW_HASH_BITS, flow_hash16, flow_hash16_column, lb_flow_key

KeySampler = Callable[[int], int]
HashFn = Callable[[int], int]

#: Bound on the per-table reduction/tail memo dicts; when exceeded they are
#: simply cleared (entries regenerate on demand).
_MEMO_LIMIT = 1 << 18


@dataclass
class RainbowTableStats:
    """Construction/lookup statistics (exposed for the ablation bench)."""

    chains: int = 0
    chain_length: int = 0
    distinct_endpoints: int = 0
    lookups: int = 0
    chain_walks: int = 0
    false_alarms: int = 0
    inversions: int = 0


class RainbowTable:
    """A classic rainbow table over an integer key space."""

    def __init__(
        self,
        hash_fn: HashFn,
        key_sampler: KeySampler,
        chain_length: int = 64,
        num_chains: int = 2048,
        hash_bits: int = FLOW_HASH_BITS,
        seed: int = 0xB0B,
    ) -> None:
        if chain_length < 2:
            raise ValueError("chain_length must be at least 2")
        self.hash_fn = hash_fn
        self.key_sampler = key_sampler
        self.chain_length = chain_length
        self.num_chains = num_chains
        self.hash_bits = hash_bits
        self.hash_mask = (1 << hash_bits) - 1
        self._seed = seed
        self.stats = RainbowTableStats(chains=num_chains, chain_length=chain_length)
        # end hash -> list of chain start keys
        self._chains: dict[int, list[int]] = {}
        # Memo tables for the pure per-table computations below.  The key
        # sampler is deterministic in its seed and the hash function is pure,
        # so reductions, tail walks and chain prefixes can be cached without
        # affecting results; only the stats counters in ``invert`` observe
        # how often the *logical* operations happen, and those stay put.
        self._reduce_memo: dict[tuple[int, int], int] = {}
        self._tail_memo: dict[tuple[int, int], int] = {}
        self._walk_memo: dict[int, list[int]] = {}
        self._build()

    # -- construction -----------------------------------------------------------

    def _reduce(self, hash_value: int, position: int) -> int:
        """Map a hash value (at chain position) back into the key space."""
        memo_key = (hash_value, position)
        key = self._reduce_memo.get(memo_key)
        if key is None:
            seed = (hash_value * 0x9E3779B97F4A7C15 + position * 0xBF58476D1CE4E5B9) & (
                (1 << 64) - 1
            )
            key = self.key_sampler(seed)
            if len(self._reduce_memo) >= _MEMO_LIMIT:
                self._reduce_memo.clear()
            self._reduce_memo[memo_key] = key
        return key

    def _build(self) -> None:
        rng = random.Random(self._seed)
        # One getrandbits draw per chain, in chain order — the same stream
        # the per-chain loop below consumes (key samplers are deterministic
        # in their seed, so hoisting the draws cannot change any key).
        starts = [self.key_sampler(rng.getrandbits(64)) for _ in range(self.num_chains)]
        if self.hash_fn is flow_hash16 and flow_hash16_column is not None:
            # Chains advance in lockstep so each position's hashes run as one
            # numpy column; reductions stay scalar (the sampler's Mersenne
            # stream has no columnar form).  Chain-major and position-major
            # walks call the same (hash, position) reductions, and the final
            # endpoint inserts below replay chain order, so the table is
            # identical to the per-chain build.
            keys = starts
            mask = self.hash_mask
            hashes: list[int] = []
            for position in range(self.chain_length):
                hashes = [h & mask for h in flow_hash16_column(keys)]
                if position < self.chain_length - 1:
                    keys = [self._reduce(h, position) for h in hashes]
            for start_key, hash_value in zip(starts, hashes):
                self._chains.setdefault(hash_value, []).append(start_key)
        else:
            for start_key in starts:
                key = start_key
                hash_value = 0
                for position in range(self.chain_length):
                    hash_value = self.hash_fn(key) & self.hash_mask
                    if position < self.chain_length - 1:
                        key = self._reduce(hash_value, position)
                self._chains.setdefault(hash_value, []).append(start_key)
        self.stats.distinct_endpoints = len(self._chains)

    # -- inversion ---------------------------------------------------------------

    def invert(self, target_hash: int, limit: int = 8) -> list[int]:
        """Candidate keys ``k`` with ``hash_fn(k) == target_hash``."""
        target_hash &= self.hash_mask
        self.stats.lookups += 1
        found: list[int] = []
        seen: set[int] = set()
        # Try every possible position of the target within a chain, from the
        # end of the chain backwards (cheapest first).
        for position in range(self.chain_length - 1, -1, -1):
            end_hash = self._tail(target_hash, position)
            for start_key in self._chains.get(end_hash, ()):
                self.stats.chain_walks += 1
                key = self._walk_chain(start_key, position)
                if key is None:
                    self.stats.false_alarms += 1
                    continue
                if self.hash_fn(key) & self.hash_mask != target_hash:
                    self.stats.false_alarms += 1
                    continue
                if key not in seen:
                    seen.add(key)
                    found.append(key)
                    self.stats.inversions += 1
                    if len(found) >= limit:
                        return found
        return found

    def _tail(self, hash_value: int, position: int) -> int:
        """End-of-chain hash reached from ``hash_value`` at ``position``.

        Tail walks recompute suffixes of real chains, so lookups against
        repeated or colliding targets revisit the same (hash, position)
        states constantly; memoising the suffix result collapses the
        classic O(chain_length²) lookup loop to its distinct prefix.
        """
        memo = self._tail_memo
        stack: list[tuple[int, int]] = []
        last = self.chain_length - 1
        while position < last:
            cached = memo.get((hash_value, position))
            if cached is not None:
                hash_value = cached
                break
            stack.append((hash_value, position))
            hash_value = self.hash_fn(self._reduce(hash_value, position)) & self.hash_mask
            position += 1
        if stack:
            if len(memo) >= _MEMO_LIMIT:
                memo.clear()
            for entry in stack:
                memo[entry] = hash_value
        return hash_value

    def _walk_chain(self, start_key: int, position: int) -> int | None:
        """Return the key at ``position`` within the chain starting at ``start_key``."""
        chain = self._walk_memo.get(start_key)
        if chain is None:
            if len(self._walk_memo) >= self.num_chains * 2:
                self._walk_memo.clear()
            chain = self._walk_memo.setdefault(start_key, [start_key])
        while len(chain) <= position:
            key = chain[-1]
            chain.append(self._reduce(self.hash_fn(key) & self.hash_mask, len(chain) - 1))
        return chain[position]

    # -- introspection ------------------------------------------------------------

    def coverage_estimate(self, samples: int = 512, seed: int = 3) -> float:
        """Fraction of random target hashes that can be inverted (ablation metric)."""
        rng = random.Random(seed)
        successes = 0
        for _ in range(samples):
            target = rng.getrandbits(self.hash_bits)
            if self.invert(target, limit=1):
                successes += 1
        return successes / samples


class BruteForceInverter:
    """Fallback inverter: scan keys from a sampler until the hash matches.

    The paper augments rainbow tables with brute force; this class is that
    augmentation and also serves as the baseline in the rainbow ablation
    benchmark.
    """

    def __init__(self, hash_fn: HashFn, key_sampler: KeySampler, hash_bits: int = FLOW_HASH_BITS) -> None:
        self.hash_fn = hash_fn
        self.key_sampler = key_sampler
        self.hash_mask = (1 << hash_bits) - 1

    def invert(self, target_hash: int, limit: int = 8, budget: int = 200_000, seed: int = 11) -> list[int]:
        target_hash &= self.hash_mask
        rng = random.Random(seed ^ target_hash)
        found: list[int] = []
        for _ in range(budget):
            key = self.key_sampler(rng.getrandbits(64))
            if self.hash_fn(key) & self.hash_mask == target_hash:
                if key not in found:
                    found.append(key)
                    if len(found) >= limit:
                        break
        return found


# -- samplers and prebuilt tables -------------------------------------------------


def generic_key_sampler(seed: int) -> int:
    """Uniformly random 64-bit keys (the *untailored* table of the ablation)."""
    return seed & ((1 << 64) - 1)


#: Reused generator for :func:`udp_flow_key_sampler`.  ``Random.seed(n)``
#: resets the full Mersenne Twister state exactly like ``Random(n)`` does, so
#: reusing one instance is draw-for-draw identical to constructing a fresh
#: one — it just skips the per-call object allocation.  The sampler runs in
#: the single-threaded symbex hot loop (shards are separate processes), so
#: the shared instance is safe.
_SAMPLER_RNG = random.Random()

_SERVICE_PORTS = (53, 80, 123, 443, 8080, 8443)


def udp_flow_key_sampler(seed: int) -> int:
    """Tailored sampler: keys that look like UDP flow keys (§3.5).

    The packed layout matches :func:`repro.hashing.functions.lb_flow_key`:
    a private-range source IP, an ephemeral source port and a small set of
    plausible service ports — so decomposed preimages satisfy the typical
    packet constraints without rejection.

    The draws inline ``Random.randrange``/``Random.choice`` as raw
    ``getrandbits`` rejection loops (the exact ``_randbelow`` algorithm), so
    the value stream is bit-identical to the naive implementation —
    ``tests/test_hashing.py`` pins this equivalence against a reference.
    """
    rng = _SAMPLER_RNG
    rng.seed(seed)
    gb = rng.getrandbits
    src_ip = 0x0A000000 | gb(24)  # 10.0.0.0/8
    # randrange(60000): 16-bit draws rejected until < 60000.
    r = gb(16)
    while r >= 60000:
        r = gb(16)
    src_port = 1024 + r
    # choice(6-tuple): 3-bit draws rejected until < 6.
    c = gb(3)
    while c >= 6:
        c = gb(3)
    return lb_flow_key(src_ip, src_port, _SERVICE_PORTS[c])


def build_flow_rainbow_table(
    tailored: bool = True,
    chain_length: int = 32,
    num_chains: int = 4096,
    seed: int = 0xB0B,
) -> RainbowTable:
    """Build the rainbow table used for the NAT/LB flow hash."""
    sampler = udp_flow_key_sampler if tailored else generic_key_sampler
    return RainbowTable(
        hash_fn=flow_hash16,
        key_sampler=sampler,
        chain_length=chain_length,
        num_chains=num_chains,
        hash_bits=FLOW_HASH_BITS,
        seed=seed,
    )


def exhaustive_preimages(
    hash_fn: HashFn, keys: Iterable[int], hash_bits: int = FLOW_HASH_BITS
) -> dict[int, list[int]]:
    """Exact preimage map over an explicit key set (small key spaces only)."""
    mask = (1 << hash_bits) - 1
    table: dict[int, list[int]] = {}
    for key in keys:
        table.setdefault(hash_fn(key) & mask, []).append(key)
    return table
