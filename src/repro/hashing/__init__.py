"""Hash functions used by the evaluation NFs and rainbow-table inversion.

The NFs index their hash tables/rings with a small non-cryptographic hash
(16-bit output, as the paper notes typical hash values are ~20 bits).  The
same function exists twice by construction: once as NF-dialect source that
gets compiled to NFIL (and is what the concrete DUT executes), and once as
a plain Python callable used by rainbow-table construction and havoc
reconciliation.  A test asserts the two agree bit-for-bit.
"""

from repro.hashing.functions import (
    FLOW_HASH_BITS,
    FLOW_HASH_DIALECT_SOURCE,
    flow_hash16,
    lb_flow_key,
    nat_forward_key,
    nat_reverse_key,
)
from repro.hashing.rainbow import BruteForceInverter, RainbowTable, build_flow_rainbow_table

__all__ = [
    "BruteForceInverter",
    "FLOW_HASH_BITS",
    "FLOW_HASH_DIALECT_SOURCE",
    "RainbowTable",
    "build_flow_rainbow_table",
    "flow_hash16",
    "lb_flow_key",
    "nat_forward_key",
    "nat_reverse_key",
]
