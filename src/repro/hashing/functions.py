"""The flow hash used by the NAT/LB NFs, plus flow-key packing helpers.

``flow_hash16`` is a Jenkins one-at-a-time style mix over the 8 bytes of a
packed 64-bit flow key, reduced to 16 bits.  The identical algorithm is
also provided as NF-dialect source (``FLOW_HASH_DIALECT_SOURCE``) so the
compiled NFs compute exactly the same values the reconciliation code
expects; ``tests/test_hashing.py`` asserts the equivalence.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF
MASK64 = (1 << 64) - 1

FLOW_HASH_BITS = 16
FLOW_HASH_MASK = (1 << FLOW_HASH_BITS) - 1


def flow_hash16(key: int) -> int:
    """Jenkins one-at-a-time hash of a 64-bit key, folded to 16 bits."""
    key &= MASK64
    h = 0
    for byte_index in range(8):
        byte = (key >> (byte_index * 8)) & 0xFF
        h = (h + byte) & MASK32
        h = (h + ((h << 10) & MASK32)) & MASK32
        h = h ^ (h >> 6)
    h = (h + ((h << 3) & MASK32)) & MASK32
    h = h ^ (h >> 11)
    h = (h + ((h << 15) & MASK32)) & MASK32
    return (h ^ (h >> 16)) & FLOW_HASH_MASK


try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the [vector] extra
    _np = None

if _np is None:
    flow_hash16_column = None
else:

    def flow_hash16_column(keys) -> list[int]:
        """Columnar :func:`flow_hash16` over a sequence of 64-bit keys.

        Value-identical to ``[flow_hash16(k) for k in keys]``: the mixing
        runs in uint64 with an explicit 32-bit mask after every step, so no
        intermediate can overflow and every operation matches the scalar
        arithmetic bit for bit (``tests/test_hashing.py`` pins this).
        """
        key = _np.asarray(keys, dtype=_np.uint64)
        m32 = _np.uint64(MASK32)
        h = _np.zeros(len(key), dtype=_np.uint64)
        for byte_index in range(8):
            byte = (key >> _np.uint64(byte_index * 8)) & _np.uint64(0xFF)
            h = (h + byte) & m32
            h = (h + ((h << _np.uint64(10)) & m32)) & m32
            h = h ^ (h >> _np.uint64(6))
        h = (h + ((h << _np.uint64(3)) & m32)) & m32
        h = h ^ (h >> _np.uint64(11))
        h = (h + ((h << _np.uint64(15)) & m32)) & m32
        return [int(v) for v in ((h ^ (h >> _np.uint64(16))) & _np.uint64(FLOW_HASH_MASK))]


# The same function written in the restricted-Python NF dialect.  NF sources
# concatenate this snippet so the compiled module contains a `flow_hash16`
# NFIL function the `castan_havoc` annotation can reference.
FLOW_HASH_DIALECT_SOURCE = '''
def flow_hash16(key):
    h = 0
    for byte_index in range(8):
        byte = (key >> (byte_index * 8)) & 0xFF
        h = (h + byte) & 0xFFFFFFFF
        h = (h + ((h << 10) & 0xFFFFFFFF)) & 0xFFFFFFFF
        h = h ^ (h >> 6)
    h = (h + ((h << 3) & 0xFFFFFFFF)) & 0xFFFFFFFF
    h = h ^ (h >> 11)
    h = (h + ((h << 15) & 0xFFFFFFFF)) & 0xFFFFFFFF
    return (h ^ (h >> 16)) & 0xFFFF
'''


# -- flow key packing ----------------------------------------------------------
#
# Flow keys are packed into a single 64-bit word with disjoint bit fields so
# that the solver can decompose `key == constant` constraints field by field
# (see Solver._decompose_disjoint).  The layouts below are shared between the
# NF dialect sources, the workload generators and the reconciliation code.


def lb_flow_key(src_ip: int, src_port: int, dst_port: int) -> int:
    """LB per-connection key: src IP | src port | VIP service port."""
    return (src_ip & MASK32) | ((src_port & 0xFFFF) << 32) | ((dst_port & 0xFFFF) << 48)


def lb_key_fields(key: int) -> tuple[int, int, int]:
    """Inverse of :func:`lb_flow_key`."""
    return key & MASK32, (key >> 32) & 0xFFFF, (key >> 48) & 0xFFFF


def nat_forward_key(src_ip: int, src_port: int, dst_port: int) -> int:
    """NAT key matching outgoing (internal → external) packets."""
    return (src_ip & MASK32) | ((src_port & 0xFFFF) << 32) | ((dst_port & 0xFFFF) << 48)


def nat_reverse_key(dst_ip: int, dst_port: int, external_port: int) -> int:
    """NAT key matching returning (external → internal) packets.

    Shares the external endpoint (``dst_ip``, ``dst_port``) with the
    forward key of the same flow — the relationship that makes reconciling
    the NAT's two havocs per packet hard (§5.4).
    """
    return (dst_ip & MASK32) | ((dst_port & 0xFFFF) << 32) | ((external_port & 0xFFFF) << 48)


def nat_key_fields(key: int) -> tuple[int, int, int]:
    """Split either NAT key back into its three packed fields."""
    return key & MASK32, (key >> 32) & 0xFFFF, (key >> 48) & 0xFFFF
