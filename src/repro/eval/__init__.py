"""Experiment registry: one entry per table and figure of the paper's §5.

:mod:`repro.eval.experiments` runs (and memoises) the per-NF measurement
suite — CASTAN analysis, workload generation, latency/throughput/counter
measurements — and :mod:`repro.eval.tables` formats the results as the rows
and series the paper reports.  The ``benchmarks/`` directory contains one
pytest-benchmark target per table/figure built on these functions.
"""

from repro.eval.experiments import (
    EVALUATION_NFS,
    EvalSettings,
    castan_result,
    latency_results,
    nf_instance,
    throughput_results,
    workload_suite,
)
from repro.eval.tables import (
    format_table,
    table1_throughput,
    table2_instructions,
    table3_l3_misses,
    table4_analysis,
    table5_deviation,
    figure_latency_cdfs,
    figure_cycles_cdfs,
)

__all__ = [
    "EVALUATION_NFS",
    "EvalSettings",
    "castan_result",
    "figure_cycles_cdfs",
    "figure_latency_cdfs",
    "format_table",
    "latency_results",
    "nf_instance",
    "table1_throughput",
    "table2_instructions",
    "table3_l3_misses",
    "table4_analysis",
    "table5_deviation",
    "throughput_results",
    "workload_suite",
]
