"""Shared, memoised experiment runners behind every table and figure.

All benchmark targets pull from these functions, so running the whole
``benchmarks/`` directory analyses each NF once and replays each workload
once, no matter how many tables reference the same numbers.

Scaling: the defaults in :class:`EvalSettings` are sized for laptop runs
(seconds per NF).  Set the environment variable ``REPRO_EVAL_SCALE=full``
for larger workloads and exploration budgets closer to the paper's, or
``REPRO_EVAL_SCALE=smoke`` for CI-sized runs.  ``REPRO_WORKERS=N`` (N > 1)
fans the per-NF CASTAN analyses out over N worker processes
(:class:`repro.parallel.portfolio.PortfolioRunner`); results are merged in
registry order.  Per-NF analyses are deterministic, so parallel results are
identical to sequential ones *as long as no analysis hits its wall-clock
deadline* — on an oversubscribed machine a deadline-truncated search can
explore fewer states under contention.  (The identity benchmarks and the
CI digest gate disable the deadline entirely for this reason.)
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from functools import lru_cache

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.nf.base import NetworkFunction
from repro.nf.registry import EVALUATION_NF_NAMES, get_nf
from repro.testbed.dut import TestbedConfig
from repro.testbed.measure import LatencyResult, ThroughputResult, measure_latency, measure_throughput
from repro.workloads.generators import (
    Workload,
    make_castan_workload,
    make_manual_workload,
    make_one_packet_workload,
    make_unirand_castan_workload,
    make_unirand_workload,
    make_zipfian_workload,
)

#: The 17 evaluation NFs: the paper's 11 (in the column order of Tables
#: 1-3) followed by the four scenario-expansion NFs (firewall, policer,
#: dedup, DPI) and the two preset service chains.
EVALUATION_NFS: tuple[str, ...] = (
    "lpm-direct",
    "lpm-dpdk",
    "lpm-patricia",
    "lb-unbalanced-tree",
    "nat-unbalanced-tree",
    "lb-red-black-tree",
    "nat-red-black-tree",
    "nat-hash-table",
    "lb-hash-table",
    "nat-hash-ring",
    "lb-hash-ring",
    "fw-conntrack",
    "policer-two-choice",
    "dedup-bloom",
    "dpi-trie",
    "chain-gateway",
    "chain-edge",
)


@dataclass(frozen=True)
class EvalSettings:
    """Knobs shared by every experiment run."""

    castan_max_states: int = 250
    castan_deadline_seconds: float = 10.0
    castan_num_packets: int | None = None  # per-NF paper-sized packet counts
    # Search shape: "monolithic" (byte-stable default) or "beam" — the
    # per-packet round scheduler; see repro.symbex.batch.
    castan_search_mode: str = "monolithic"
    castan_beam_width: int = 3
    # Engine execution mode: "compiled" (block-compiled + concolic fast
    # path, the default) or "interp" (reference interpreter).
    castan_exec_mode: str = "compiled"
    # Vector-tier group branch resolution (REPRO_BRANCH_BATCHING=0 disables
    # it for A/B digest checks; outputs are byte-identical either way).
    castan_branch_batching: bool = True
    # Worker processes for the CASTAN portfolio (0/1 = sequential).
    workers: int = 0
    replay_packets: int = 1200
    zipfian_packets: int = 1600
    zipfian_flows: int = 110
    unirand_packets: int = 1600
    throughput_replay_packets: int = 800

    @classmethod
    def from_environment(cls) -> "EvalSettings":
        scale = os.environ.get("REPRO_EVAL_SCALE", "quick").lower()
        search_mode = os.environ.get("REPRO_SEARCH_MODE", "monolithic").lower()
        exec_mode = os.environ.get("REPRO_EXEC_MODE", "compiled").lower()
        workers_raw = os.environ.get("REPRO_WORKERS", "0")
        batching_raw = os.environ.get("REPRO_BRANCH_BATCHING", "1").lower()
        if batching_raw in ("1", "true", "on", "yes"):
            branch_batching = True
        elif batching_raw in ("0", "false", "off", "no"):
            branch_batching = False
        else:
            warnings.warn(
                f"unrecognized REPRO_BRANCH_BATCHING={batching_raw!r}; falling "
                "back to enabled (options: 0, 1)",
                RuntimeWarning,
                stacklevel=2,
            )
            branch_batching = True
        if exec_mode not in ("compiled", "interp", "vector"):
            warnings.warn(
                f"unrecognized REPRO_EXEC_MODE={exec_mode!r}; falling back to "
                "'compiled' (options: compiled, interp, vector)",
                RuntimeWarning,
                stacklevel=2,
            )
            exec_mode = "compiled"
        try:
            workers = max(0, int(workers_raw))
        except ValueError:
            warnings.warn(
                f"unrecognized REPRO_WORKERS={workers_raw!r}; falling back to 0 "
                "(expected a worker-process count)",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 0
        if scale not in ("quick", "full", "smoke"):
            warnings.warn(
                f"unrecognized REPRO_EVAL_SCALE={scale!r}; falling back to 'quick' "
                "(options: smoke, quick, full)",
                RuntimeWarning,
                stacklevel=2,
            )
            scale = "quick"
        if scale == "full":
            return cls(
                castan_max_states=2500,
                castan_deadline_seconds=120.0,
                castan_num_packets=None,  # per-NF paper-sized packet counts
                castan_search_mode=search_mode,
                castan_exec_mode=exec_mode,
                castan_branch_batching=branch_batching,
                workers=workers,
                replay_packets=6000,
                zipfian_packets=8000,
                zipfian_flows=540,
                unirand_packets=8000,
                throughput_replay_packets=3000,
            )
        if scale == "smoke":
            return cls(
                castan_max_states=60,
                castan_deadline_seconds=4.0,
                castan_num_packets=5,
                castan_search_mode=search_mode,
                castan_exec_mode=exec_mode,
                castan_branch_batching=branch_batching,
                workers=workers,
                replay_packets=300,
                zipfian_packets=400,
                zipfian_flows=40,
                unirand_packets=400,
                throughput_replay_packets=200,
            )
        return cls(
            castan_search_mode=search_mode,
            castan_exec_mode=exec_mode,
            castan_branch_batching=branch_batching,
            workers=workers,
        )


SETTINGS = EvalSettings.from_environment()
_TESTBED_CONFIG = TestbedConfig()


@lru_cache(maxsize=None)
def nf_instance(name: str) -> NetworkFunction:
    """One shared (analysis-side) instance of each NF."""
    return get_nf(name)


def _castan_config() -> CastanConfig:
    return CastanConfig(
        max_states=SETTINGS.castan_max_states,
        deadline_seconds=SETTINGS.castan_deadline_seconds,
        num_packets=SETTINGS.castan_num_packets,
        search_mode=SETTINGS.castan_search_mode,
        beam_width=SETTINGS.castan_beam_width,
        exec_mode=SETTINGS.castan_exec_mode,
        branch_batching=SETTINGS.castan_branch_batching,
        parallel_mode="portfolio" if SETTINGS.workers > 1 else "off",
        workers=SETTINGS.workers,
    )


@lru_cache(maxsize=None)
def _portfolio_results() -> dict[str, CastanResult]:
    """The whole evaluation suite, analysed across REPRO_WORKERS processes."""
    from repro.parallel.portfolio import PortfolioRunner

    runner = PortfolioRunner(config=_castan_config(), workers=SETTINGS.workers)
    return runner.run_map(EVALUATION_NFS)


@lru_cache(maxsize=None)
def castan_result(name: str) -> CastanResult:
    """Run CASTAN once per NF and cache the synthesized workload.

    With ``REPRO_WORKERS > 1`` the first evaluation-suite lookup analyses
    all 15 NFs in one parallel portfolio run and serves every later lookup
    from that cache; other NFs (and the sequential default) run in-process.
    """
    if SETTINGS.workers > 1 and name in EVALUATION_NFS:
        return _portfolio_results()[name]
    return Castan(_castan_config()).analyze(nf_instance(name))


@lru_cache(maxsize=None)
def workload_suite(name: str) -> dict[str, Workload]:
    """All workloads of §5.1 for one NF (keyed by workload name)."""
    nf = nf_instance(name)
    analysis = castan_result(name)
    castan_workload = make_castan_workload(analysis.packets)
    suite: dict[str, Workload] = {
        "1-packet": make_one_packet_workload(nf),
        "zipfian": make_zipfian_workload(
            nf, num_packets=SETTINGS.zipfian_packets, num_flows=SETTINGS.zipfian_flows
        ),
        "unirand": make_unirand_workload(nf, num_packets=SETTINGS.unirand_packets),
        "unirand-castan": make_unirand_castan_workload(nf, castan_workload.flow_count),
        "castan": castan_workload,
    }
    manual = make_manual_workload(nf)
    if manual is not None:
        suite["manual"] = manual
    return suite


@lru_cache(maxsize=None)
def latency_results(name: str) -> dict[str, LatencyResult]:
    """Latency (and counter) measurements for every workload of one NF.

    Includes a ``"nop"`` entry: the NOP NF measured under its own 1-packet
    workload, the baseline every figure and Table 5 subtract from.
    """
    results: dict[str, LatencyResult] = {}
    nop = nf_instance("nop")
    results["nop"] = measure_latency(
        nop,
        make_one_packet_workload(nop),
        config=_TESTBED_CONFIG,
        replay_packets=SETTINGS.replay_packets,
    )
    nf = nf_instance(name)
    for workload_name, workload in workload_suite(name).items():
        results[workload_name] = measure_latency(
            nf, workload, config=_TESTBED_CONFIG, replay_packets=SETTINGS.replay_packets
        )
    return results


@lru_cache(maxsize=None)
def throughput_results(name: str) -> dict[str, ThroughputResult]:
    """Maximum throughput for every workload of one NF (plus the NOP bound)."""
    results: dict[str, ThroughputResult] = {}
    nop = nf_instance("nop")
    results["nop"] = measure_throughput(
        nop,
        make_one_packet_workload(nop),
        config=_TESTBED_CONFIG,
        replay_packets=SETTINGS.throughput_replay_packets,
    )
    nf = nf_instance(name)
    for workload_name, workload in workload_suite(name).items():
        results[workload_name] = measure_throughput(
            nf,
            workload,
            config=_TESTBED_CONFIG,
            replay_packets=SETTINGS.throughput_replay_packets,
        )
    return results


def evaluation_nf_names() -> tuple[str, ...]:
    """The NF column order used by the tables."""
    assert set(EVALUATION_NFS) == set(EVALUATION_NF_NAMES)
    return EVALUATION_NFS
