"""Formatting of the paper's tables and figure series (§5.2–5.5).

Each ``tableN_*`` function returns ``(rows, text)`` where ``rows`` is a
plain data structure (workload -> NF -> value) and ``text`` is the aligned
table the corresponding benchmark prints.  Figure helpers return the CDF
objects (one per workload) whose ASCII rendering stands in for the paper's
plots.
"""

from __future__ import annotations

from repro.eval.experiments import (
    EVALUATION_NFS,
    castan_result,
    latency_results,
    throughput_results,
)
from repro.testbed.cdf import CDF

#: Row order of Tables 1-3 (as in the paper, NOP first).
WORKLOAD_ROWS = ("nop", "1-packet", "zipfian", "unirand", "unirand-castan", "castan", "manual")


def format_table(
    title: str,
    rows: dict[str, dict[str, object]],
    columns: list[str],
    missing: str = "-",
) -> str:
    """Render a workload × NF table as aligned text."""
    col_width = max(12, max((len(c) for c in columns), default=12) + 1)
    header = f"{'workload':<16}" + "".join(f"{c:>{col_width}}" for c in columns)
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for row_name, row in rows.items():
        cells = []
        for column in columns:
            value = row.get(column, missing)
            if isinstance(value, float):
                cells.append(f"{value:>{col_width}.2f}")
            else:
                cells.append(f"{str(value):>{col_width}}")
        lines.append(f"{row_name:<16}" + "".join(cells))
    return "\n".join(lines)


def _collect(metric, nfs: tuple[str, ...] = EVALUATION_NFS) -> dict[str, dict[str, object]]:
    """Build rows[workload][nf] using ``metric(nf_name, workload_name)``."""
    rows: dict[str, dict[str, object]] = {w: {} for w in WORKLOAD_ROWS}
    for nf_name in nfs:
        for workload_name in WORKLOAD_ROWS:
            value = metric(nf_name, workload_name)
            if value is not None:
                rows[workload_name][nf_name] = value
    return {w: r for w, r in rows.items() if r}


# -- Table 1: maximum throughput (Mpps) --------------------------------------------


def table1_throughput(nfs: tuple[str, ...] = EVALUATION_NFS):
    results = {name: throughput_results(name) for name in nfs}

    def metric(nf_name: str, workload_name: str):
        entry = results[nf_name].get(workload_name)
        return entry.max_rate_mpps if entry else None

    rows = _collect(metric, nfs)
    return rows, format_table("Table 1: maximum throughput (Mpps)", rows, list(nfs))


# -- Table 2: median instructions retired per packet ----------------------------------


def table2_instructions(nfs: tuple[str, ...] = EVALUATION_NFS):
    results = {name: latency_results(name) for name in nfs}

    def metric(nf_name: str, workload_name: str):
        entry = results[nf_name].get(workload_name)
        if entry is None:
            return None
        return int(entry.counter_summary.median_instructions)

    rows = _collect(metric, nfs)
    return rows, format_table("Table 2: median instructions retired per packet", rows, list(nfs))


# -- Table 3: median L3 misses per packet -----------------------------------------------


def table3_l3_misses(nfs: tuple[str, ...] = EVALUATION_NFS):
    results = {name: latency_results(name) for name in nfs}

    def metric(nf_name: str, workload_name: str):
        entry = results[nf_name].get(workload_name)
        if entry is None:
            return None
        return int(entry.counter_summary.median_l3_misses)

    rows = _collect(metric, nfs)
    return rows, format_table("Table 3: median L3 misses per packet", rows, list(nfs))


# -- Table 4: CASTAN packets generated and analysis time ---------------------------------


def table4_analysis(nfs: tuple[str, ...] = EVALUATION_NFS):
    rows: dict[str, dict[str, object]] = {}
    for nf_name in nfs:
        result = castan_result(nf_name)
        rows[nf_name] = {
            "packets": result.packet_count,
            "flows": result.unique_flows,
            "analysis_seconds": round(result.analysis_seconds, 2),
            "states": result.states_explored,
        }
    lines = ["Table 4: CASTAN workload sizes and analysis run time",
             f"{'NF':<24}{'packets':>9}{'flows':>7}{'time (s)':>10}{'states':>8}"]
    lines.append("-" * len(lines[1]))
    for nf_name, row in rows.items():
        lines.append(
            f"{nf_name:<24}{row['packets']:>9}{row['flows']:>7}"
            f"{row['analysis_seconds']:>10.2f}{row['states']:>8}"
        )
    return rows, "\n".join(lines)


# -- Table 5: median latency deviation from NOP ---------------------------------------------


def table5_deviation(nfs: tuple[str, ...] = EVALUATION_NFS):
    rows: dict[str, dict[str, object]] = {}
    for nf_name in nfs:
        results = latency_results(nf_name)
        baseline = results["nop"]
        row: dict[str, object] = {}
        for workload_name in ("zipfian", "manual", "castan"):
            if workload_name in results:
                row[workload_name] = round(results[workload_name].deviation_from(baseline), 1)
        rows[nf_name] = row
    lines = ["Table 5: median latency deviation from NOP (ns)",
             f"{'NF':<24}{'Zipfian':>10}{'Manual':>10}{'CASTAN':>10}"]
    lines.append("-" * len(lines[1]))
    for nf_name, row in rows.items():
        zipfian = row.get("zipfian", "-")
        manual = row.get("manual", "-")
        castan = row.get("castan", "-")
        fmt = lambda v: f"{v:>10.1f}" if isinstance(v, float) else f"{str(v):>10}"
        lines.append(f"{nf_name:<24}{fmt(zipfian)}{fmt(manual)}{fmt(castan)}")
    return rows, "\n".join(lines)


# -- Figures: latency and cycle CDFs ------------------------------------------------------------


def figure_latency_cdfs(nf_name: str) -> dict[str, CDF]:
    """The latency CDFs of one NF, one per workload (plus NOP)."""
    return {w: result.latency_ns for w, result in latency_results(nf_name).items()}


def figure_cycles_cdfs(nf_name: str) -> dict[str, CDF]:
    """The reference-cycle CDFs of one NF, one per workload (plus NOP)."""
    return {w: result.cycles for w, result in latency_results(nf_name).items()}


def render_figure(title: str, cdfs: dict[str, CDF]) -> str:
    """ASCII rendering of a multi-series CDF figure."""
    lines = [title, "=" * len(title)]
    for workload_name, cdf in cdfs.items():
        lines.append(cdf.render(label=workload_name))
        lines.append("")
    return "\n".join(lines)
