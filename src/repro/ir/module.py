"""NFIL containers: basic blocks, functions, memory regions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Instruction, TERMINATORS

# Memory regions are laid out on a fixed virtual-address grid so that the
# cache model sees realistic, page-aligned addresses.  The spacing mirrors
# the paper's use of 1GB pages: each region starts on its own "huge page".
REGION_ALIGNMENT = 1 << 21  # 2 MiB stand-in for the paper's 1 GB pages
REGION_BASE_ADDRESS = 1 << 30


@dataclass
class MemoryRegion:
    """A named, statically sized array of fixed-width elements.

    This is the NFIL analogue of a global array in the C NFs (a hash-table
    bucket array, a trie node pool, a direct-lookup table...).  ``initial``
    maps element index to initial value; unset elements read as zero.
    """

    name: str
    length: int
    element_size: int = 8
    initial: dict[int, int] = field(default_factory=dict)
    base_address: int = 0

    @property
    def size_bytes(self) -> int:
        return self.length * self.element_size

    def address_of(self, index: int) -> int:
        """Byte address of element ``index`` (no bounds check)."""
        return self.base_address + index * self.element_size

    def index_of(self, address: int) -> int:
        """Inverse of :meth:`address_of`."""
        return (address - self.base_address) // self.element_size

    def contains_address(self, address: int) -> bool:
        return self.base_address <= address < self.base_address + self.size_bytes


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def append(self, instruction: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(f"block {self.name!r} is already terminated")
        self.instructions.append(instruction)
        return instruction

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Function:
    """An NFIL function: parameters plus an ordered list of basic blocks."""

    name: str
    params: list[str] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)

    @property
    def entry_block(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(f"function {self.name!r} has no block {name!r}")

    def add_block(self, name: str) -> BasicBlock:
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name!r} in {self.name!r}")
        blk = BasicBlock(name=name)
        self.blocks.append(blk)
        return blk

    def instructions(self):
        """Iterate over all instructions in block order."""
        for blk in self.blocks:
            yield from blk.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)


class Module:
    """A compiled NF: functions plus the memory regions they reference.

    The module assigns every region a base virtual address on a huge-page
    aligned grid, so loads and stores translate deterministically to the
    byte addresses the cache model reasons about.
    """

    def __init__(self, name: str = "nf") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.regions: dict[str, MemoryRegion] = {}
        self._next_uid = 0
        self._next_region_base = REGION_BASE_ADDRESS

    # -- functions --------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        self._assign_uids(function)
        return function

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name!r} has no function {name!r}") from None

    def _assign_uids(self, function: Function) -> None:
        for instruction in function.instructions():
            if instruction.uid < 0:
                instruction.uid = self._next_uid
                self._next_uid += 1

    def reassign_uids(self) -> None:
        """Re-number every instruction (after post-construction edits)."""
        self._next_uid = 0
        for function in self.functions.values():
            for instruction in function.instructions():
                instruction.uid = self._next_uid
                self._next_uid += 1

    @property
    def instruction_count(self) -> int:
        return sum(f.instruction_count for f in self.functions.values())

    # -- memory regions ---------------------------------------------------

    def add_region(
        self,
        name: str,
        length: int,
        element_size: int = 8,
        initial: dict[int, int] | None = None,
    ) -> MemoryRegion:
        if name in self.regions:
            raise ValueError(f"duplicate region {name!r}")
        if length <= 0 or element_size <= 0:
            raise ValueError("region length and element size must be positive")
        region = MemoryRegion(
            name=name,
            length=length,
            element_size=element_size,
            initial=dict(initial or {}),
            base_address=self._next_region_base,
        )
        span = region.size_bytes
        aligned = (span + REGION_ALIGNMENT - 1) // REGION_ALIGNMENT * REGION_ALIGNMENT
        self._next_region_base += max(aligned, REGION_ALIGNMENT)
        self.regions[name] = region
        return region

    def get_region(self, name: str) -> MemoryRegion:
        try:
            return self.regions[name]
        except KeyError:
            raise KeyError(f"module {self.name!r} has no region {name!r}") from None

    def region_for_address(self, address: int) -> MemoryRegion | None:
        for region in self.regions.values():
            if region.contains_address(address):
                return region
        return None

    @property
    def total_state_bytes(self) -> int:
        """Total bytes of NF state (all regions)."""
        return sum(r.size_bytes for r in self.regions.values())

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, functions={len(self.functions)}, "
            f"regions={len(self.regions)}, instructions={self.instruction_count})"
        )


def successors_of(block: BasicBlock) -> list[str]:
    """Names of CFG successor blocks of ``block``."""
    terminator = block.terminator
    if terminator is None:
        return []
    from repro.ir.instructions import Branch, Jump

    if isinstance(terminator, Jump):
        return [terminator.target]
    if isinstance(terminator, Branch):
        if terminator.if_true == terminator.if_false:
            return [terminator.if_true]
        return [terminator.if_true, terminator.if_false]
    return []


def is_terminator_class(instruction: Instruction) -> bool:
    return isinstance(instruction, TERMINATORS)
