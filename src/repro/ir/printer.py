"""Textual rendering of NFIL modules (the analogue of ``llvm-dis`` output).

The printed form is intended for debugging and documentation: it is stable,
human-readable and shows instruction uids so that ICFG cost annotations can
be cross-referenced against the listing.
"""

from __future__ import annotations

from repro.ir.module import Function, Module


def print_function(function: Function, show_uids: bool = False) -> str:
    """Render one function as text."""
    lines = [f"func @{function.name}({', '.join('%' + p for p in function.params)}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            prefix = f"  [{instruction.uid:4d}] " if show_uids else "  "
            lines.append(f"{prefix}{instruction}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module, show_uids: bool = False) -> str:
    """Render a whole module (regions first, then functions)."""
    lines = [f"; module {module.name}"]
    for region in module.regions.values():
        lines.append(
            f"region @{region.name}[{region.length} x {region.element_size}B] "
            f"base=0x{region.base_address:x}"
        )
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function, show_uids=show_uids))
    return "\n".join(lines)
