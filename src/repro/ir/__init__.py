"""NFIL: the Network Function Intermediate Language.

NFIL is this reproduction's stand-in for LLVM IR.  It is a small, untyped
(64-bit unsigned) register IR with basic blocks, explicit loads/stores to
named memory regions, calls, and a ``havoc`` instruction implementing the
paper's ``castan_havoc`` annotation.  NF sources written in the restricted
Python dialect are compiled to NFIL by :mod:`repro.frontend`; both the
symbolic execution engine (:mod:`repro.symbex`) and the concrete
cycle-accounting interpreter (:mod:`repro.perf`) consume NFIL modules.
"""

from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    CmpKind,
    Compare,
    Havoc,
    Instruction,
    Jump,
    Load,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function, MemoryRegion, Module
from repro.ir.builder import FunctionBuilder, ModuleBuilder
from repro.ir.printer import print_function, print_module
from repro.ir.values import Constant, Register, Value
from repro.ir.verify import IRVerificationError, verify_module

__all__ = [
    "BasicBlock",
    "BinOpKind",
    "BinaryOp",
    "Branch",
    "Call",
    "CmpKind",
    "Compare",
    "Constant",
    "Function",
    "FunctionBuilder",
    "Havoc",
    "IRVerificationError",
    "Instruction",
    "Jump",
    "Load",
    "MemoryRegion",
    "Module",
    "ModuleBuilder",
    "Register",
    "Return",
    "Select",
    "Store",
    "Unreachable",
    "Value",
    "print_function",
    "print_module",
    "verify_module",
]
