"""NFIL instruction set.

The instruction set is deliberately small — arithmetic/logic, compare,
select, load/store against named memory regions, call, havoc, and the three
terminators (jump, branch, return) — because that is all the evaluation NFs
need and it keeps both interpreters and the cost model simple.  Every
instruction knows its operands so the CFG/ICFG layer and the printers can
treat instructions generically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.values import Constant, Register, Value


class BinOpKind(enum.Enum):
    """Arithmetic and bitwise operations (64-bit unsigned semantics)."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UREM = "urem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    LSHR = "lshr"


class CmpKind(enum.Enum):
    """Comparison predicates (unsigned; result is 0 or 1)."""

    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"


@dataclass
class Instruction:
    """Base class for NFIL instructions.

    ``uid`` is assigned when the instruction is added to a function; it is
    the node identity used by the ICFG and the cost annotation.
    """

    uid: int = field(default=-1, init=False, compare=False)

    @property
    def is_terminator(self) -> bool:
        return False

    @property
    def accesses_memory(self) -> bool:
        return False

    def operands(self) -> list[Value]:
        """Values read by this instruction."""
        return []

    def result(self) -> Register | None:
        """Register written by this instruction (None for void)."""
        return None


@dataclass
class BinaryOp(Instruction):
    """``dest = lhs <op> rhs``."""

    dest: Register
    op: BinOpKind
    lhs: Value
    rhs: Value

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = {self.op.value} {self.lhs}, {self.rhs}"


@dataclass
class Compare(Instruction):
    """``dest = icmp <pred> lhs, rhs`` (dest is 0 or 1)."""

    dest: Register
    pred: CmpKind
    lhs: Value
    rhs: Value

    def operands(self) -> list[Value]:
        return [self.lhs, self.rhs]

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = icmp {self.pred.value} {self.lhs}, {self.rhs}"


@dataclass
class Select(Instruction):
    """``dest = cond ? if_true : if_false`` without branching."""

    dest: Register
    cond: Value
    if_true: Value
    if_false: Value

    def operands(self) -> list[Value]:
        return [self.cond, self.if_true, self.if_false]

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = select {self.cond}, {self.if_true}, {self.if_false}"


@dataclass
class Load(Instruction):
    """``dest = load region[index]``.

    ``region`` names a :class:`~repro.ir.module.MemoryRegion`; the byte
    address handed to the cache model is ``region.base + index * region.element_size``.
    """

    dest: Register
    region: str
    index: Value

    @property
    def accesses_memory(self) -> bool:
        return True

    def operands(self) -> list[Value]:
        return [self.index]

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        return f"{self.dest} = load @{self.region}[{self.index}]"


@dataclass
class Store(Instruction):
    """``store region[index] = value``."""

    region: str
    index: Value
    value: Value

    @property
    def accesses_memory(self) -> bool:
        return True

    def operands(self) -> list[Value]:
        return [self.index, self.value]

    def __str__(self) -> str:
        return f"store @{self.region}[{self.index}] = {self.value}"


@dataclass
class Call(Instruction):
    """``dest = call callee(args...)`` (dest may be None for void calls)."""

    dest: Register | None
    callee: str
    args: list[Value] = field(default_factory=list)

    def operands(self) -> list[Value]:
        return list(self.args)

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call @{self.callee}({args})"


@dataclass
class Havoc(Instruction):
    """The ``castan_havoc(input, output, expr)`` annotation (§3.5, §4).

    In production (concrete) execution the instruction behaves exactly like
    ``dest = call hash_function(args...)``.  Under CASTAN analysis the call
    is *not* executed: the symbolic expression of ``key`` is recorded and
    ``dest`` is bound to a fresh unconstrained symbol, to be reconciled with
    rainbow tables in post-processing.
    """

    dest: Register
    key: Value
    hash_function: str
    args: list[Value] = field(default_factory=list)

    def operands(self) -> list[Value]:
        return [self.key, *self.args]

    def result(self) -> Register | None:
        return self.dest

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.dest} = havoc key={self.key} @{self.hash_function}({args})"


@dataclass
class Jump(Instruction):
    """Unconditional branch to ``target`` block."""

    target: str

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Instruction):
    """Conditional branch: non-zero ``cond`` goes to ``if_true``."""

    cond: Value
    if_true: str
    if_false: str

    @property
    def is_terminator(self) -> bool:
        return True

    def operands(self) -> list[Value]:
        return [self.cond]

    def __str__(self) -> str:
        return f"branch {self.cond}, {self.if_true}, {self.if_false}"


@dataclass
class Return(Instruction):
    """Return from the current function (value may be None)."""

    value: Value | None = None

    @property
    def is_terminator(self) -> bool:
        return True

    def operands(self) -> list[Value]:
        return [self.value] if self.value is not None else []

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


@dataclass
class Unreachable(Instruction):
    """Marks a block that should never execute (used by the verifier)."""

    @property
    def is_terminator(self) -> bool:
        return True

    def __str__(self) -> str:
        return "unreachable"


TERMINATORS = (Jump, Branch, Return, Unreachable)


def is_constant_operand(value: Value) -> bool:
    """True when the operand is an immediate constant."""
    return isinstance(value, Constant)
