"""Convenience builders for constructing NFIL by hand.

The frontend (:mod:`repro.frontend`) uses these builders when lowering the
restricted-Python NF dialect, and tests/examples use them directly when a
tiny hand-written function is clearer than compiling source.
"""

from __future__ import annotations

from repro.ir.instructions import (
    BinaryOp,
    BinOpKind,
    Branch,
    Call,
    CmpKind,
    Compare,
    Havoc,
    Jump,
    Load,
    Return,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Register, Value, as_value


class FunctionBuilder:
    """Builds one NFIL function block-by-block.

    The builder tracks a *current block*; instruction-emitting methods
    append to it and return the destination register (when there is one).
    """

    def __init__(self, name: str, params: list[str] | None = None) -> None:
        self.function = Function(name=name, params=list(params or []))
        self._block: BasicBlock | None = None
        self._temp_counter = 0
        self._block_counter = 0

    # -- registers and blocks ---------------------------------------------

    def param(self, name: str) -> Register:
        if name not in self.function.params:
            raise KeyError(f"{self.function.name!r} has no parameter {name!r}")
        return Register(name)

    def fresh_register(self, hint: str = "t") -> Register:
        self._temp_counter += 1
        return Register(f"{hint}.{self._temp_counter}")

    def fresh_block_name(self, hint: str = "bb") -> str:
        self._block_counter += 1
        return f"{hint}.{self._block_counter}"

    def block(self, name: str | None = None) -> BasicBlock:
        """Create a new basic block (does not switch to it)."""
        return self.function.add_block(name or self.fresh_block_name())

    def switch_to(self, block: BasicBlock) -> BasicBlock:
        """Make ``block`` the current insertion point."""
        self._block = block
        return block

    @property
    def current_block(self) -> BasicBlock:
        if self._block is None:
            raise RuntimeError("no current block; call switch_to() first")
        return self._block

    @property
    def current_terminated(self) -> bool:
        return self._block is not None and self._block.is_terminated

    # -- instruction emitters ---------------------------------------------

    def _emit(self, instruction):
        return self.current_block.append(instruction)

    def binop(self, op: BinOpKind, lhs, rhs, dest: Register | None = None) -> Register:
        dest = dest or self.fresh_register()
        self._emit(BinaryOp(dest=dest, op=op, lhs=as_value(lhs), rhs=as_value(rhs)))
        return dest

    def add(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.ADD, lhs, rhs, dest)

    def sub(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.SUB, lhs, rhs, dest)

    def mul(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.MUL, lhs, rhs, dest)

    def and_(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.AND, lhs, rhs, dest)

    def or_(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.OR, lhs, rhs, dest)

    def xor(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.XOR, lhs, rhs, dest)

    def shl(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.SHL, lhs, rhs, dest)

    def lshr(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.LSHR, lhs, rhs, dest)

    def udiv(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.UDIV, lhs, rhs, dest)

    def urem(self, lhs, rhs, dest: Register | None = None) -> Register:
        return self.binop(BinOpKind.UREM, lhs, rhs, dest)

    def compare(self, pred: CmpKind, lhs, rhs, dest: Register | None = None) -> Register:
        dest = dest or self.fresh_register("cmp")
        self._emit(Compare(dest=dest, pred=pred, lhs=as_value(lhs), rhs=as_value(rhs)))
        return dest

    def select(self, cond, if_true, if_false, dest: Register | None = None) -> Register:
        dest = dest or self.fresh_register("sel")
        self._emit(
            Select(
                dest=dest,
                cond=as_value(cond),
                if_true=as_value(if_true),
                if_false=as_value(if_false),
            )
        )
        return dest

    def load(self, region: str, index, dest: Register | None = None) -> Register:
        dest = dest or self.fresh_register("ld")
        self._emit(Load(dest=dest, region=region, index=as_value(index)))
        return dest

    def store(self, region: str, index, value) -> None:
        self._emit(Store(region=region, index=as_value(index), value=as_value(value)))

    def call(
        self, callee: str, args: list[Value | int], dest: Register | None = None, void: bool = False
    ) -> Register | None:
        if void:
            self._emit(Call(dest=None, callee=callee, args=[as_value(a) for a in args]))
            return None
        dest = dest or self.fresh_register("call")
        self._emit(Call(dest=dest, callee=callee, args=[as_value(a) for a in args]))
        return dest

    def havoc(
        self,
        key,
        hash_function: str,
        args: list[Value | int],
        dest: Register | None = None,
    ) -> Register:
        dest = dest or self.fresh_register("hv")
        self._emit(
            Havoc(
                dest=dest,
                key=as_value(key),
                hash_function=hash_function,
                args=[as_value(a) for a in args],
            )
        )
        return dest

    # -- terminators -------------------------------------------------------

    def jump(self, target: BasicBlock | str) -> None:
        name = target.name if isinstance(target, BasicBlock) else target
        self._emit(Jump(target=name))

    def branch(self, cond, if_true: BasicBlock | str, if_false: BasicBlock | str) -> None:
        true_name = if_true.name if isinstance(if_true, BasicBlock) else if_true
        false_name = if_false.name if isinstance(if_false, BasicBlock) else if_false
        self._emit(Branch(cond=as_value(cond), if_true=true_name, if_false=false_name))

    def ret(self, value=None) -> None:
        self._emit(Return(value=None if value is None else as_value(value)))

    def build(self) -> Function:
        return self.function


class ModuleBuilder:
    """Builds a module out of function builders and memory regions."""

    def __init__(self, name: str = "nf") -> None:
        self.module = Module(name=name)

    def region(
        self,
        name: str,
        length: int,
        element_size: int = 8,
        initial: dict[int, int] | None = None,
    ):
        return self.module.add_region(name, length, element_size, initial)

    def function(self, name: str, params: list[str] | None = None) -> FunctionBuilder:
        builder = FunctionBuilder(name, params)
        # The function is registered on build(); keep a reference for add().
        return builder

    def add(self, builder: FunctionBuilder) -> None:
        self.module.add_function(builder.build())

    def build(self) -> Module:
        return self.module
