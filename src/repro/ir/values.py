"""NFIL values: virtual registers and integer constants.

All NFIL values are 64-bit unsigned integers; narrower quantities are
represented by masking explicitly in the program (exactly how the NF
dialect sources are written).  This keeps the IR, the symbolic expression
language and the solver agreeing on a single machine word.
"""

from __future__ import annotations

from dataclasses import dataclass

MACHINE_BITS = 64
MACHINE_MASK = (1 << MACHINE_BITS) - 1


class Value:
    """Base class for operands of NFIL instructions."""

    __slots__ = ()


@dataclass(frozen=True)
class Register(Value):
    """A virtual register (SSA-ish name; re-assignment is allowed)."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Constant(Value):
    """An immediate 64-bit unsigned constant."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & MACHINE_MASK)

    def __str__(self) -> str:
        return str(self.value)


def as_value(operand: "Value | int") -> Value:
    """Coerce a Python int into a :class:`Constant`, pass values through."""
    if isinstance(operand, Value):
        return operand
    if isinstance(operand, bool):
        return Constant(int(operand))
    if isinstance(operand, int):
        return Constant(operand)
    raise TypeError(f"cannot use {operand!r} as an NFIL operand")
