"""Structural verification of NFIL modules.

The verifier catches frontend bugs early: unterminated blocks, branches to
unknown blocks, calls to unknown functions, loads from undeclared regions,
and use of undefined registers along straight-line code.  It is the NFIL
analogue of ``llvm::verifyModule``.
"""

from __future__ import annotations

from repro.ir.instructions import (
    Branch,
    Call,
    Havoc,
    Jump,
    Load,
    Return,
    Store,
    Unreachable,
)
from repro.ir.module import Function, Module
from repro.ir.values import Register


class IRVerificationError(ValueError):
    """Raised when a module fails structural verification."""


def verify_module(module: Module) -> None:
    """Verify the whole module; raises :class:`IRVerificationError`."""
    errors: list[str] = []
    for function in module.functions.values():
        errors.extend(_verify_function(module, function))
    if errors:
        raise IRVerificationError(
            f"module {module.name!r} failed verification:\n  " + "\n  ".join(errors)
        )


def _verify_function(module: Module, function: Function) -> list[str]:
    errors: list[str] = []
    where = f"function {function.name!r}"
    if not function.blocks:
        return [f"{where}: has no blocks"]

    block_names = {block.name for block in function.blocks}
    if len(block_names) != len(function.blocks):
        errors.append(f"{where}: duplicate block names")

    defined: set[str] = set(function.params)
    for block in function.blocks:
        if not block.is_terminated:
            errors.append(f"{where}, block {block.name!r}: missing terminator")
        for position, instruction in enumerate(block.instructions):
            if instruction.is_terminator and position != len(block.instructions) - 1:
                errors.append(
                    f"{where}, block {block.name!r}: terminator not last instruction"
                )
            errors.extend(_verify_instruction(module, function, block.name, instruction, block_names))
            result = instruction.result()
            if result is not None:
                defined.add(result.name)

    # Register definitions are collected over the whole function first (the
    # frontend guarantees definite assignment before use on every path), so
    # this check only reports registers that are never defined anywhere.
    for block in function.blocks:
        for instruction in block.instructions:
            for operand in instruction.operands():
                if isinstance(operand, Register) and operand.name not in defined:
                    errors.append(
                        f"{where}, block {block.name!r}: use of undefined register "
                        f"%{operand.name} in '{instruction}'"
                    )
    return errors


def _verify_instruction(module, function, block_name, instruction, block_names) -> list[str]:
    errors: list[str] = []
    where = f"function {function.name!r}, block {block_name!r}"
    if isinstance(instruction, Jump):
        if instruction.target not in block_names:
            errors.append(f"{where}: jump to unknown block {instruction.target!r}")
    elif isinstance(instruction, Branch):
        for target in (instruction.if_true, instruction.if_false):
            if target not in block_names:
                errors.append(f"{where}: branch to unknown block {target!r}")
    elif isinstance(instruction, (Load, Store)):
        if instruction.region not in module.regions:
            errors.append(f"{where}: access to undeclared region @{instruction.region}")
    elif isinstance(instruction, Call):
        if instruction.callee not in module.functions:
            errors.append(f"{where}: call to unknown function @{instruction.callee}")
        else:
            callee = module.functions[instruction.callee]
            if len(callee.params) != len(instruction.args):
                errors.append(
                    f"{where}: call to @{instruction.callee} with {len(instruction.args)} "
                    f"args, expected {len(callee.params)}"
                )
    elif isinstance(instruction, Havoc):
        if instruction.hash_function not in module.functions:
            errors.append(
                f"{where}: havoc references unknown hash function @{instruction.hash_function}"
            )
    elif isinstance(instruction, (Return, Unreachable)):
        pass
    return errors
