"""Instruction-level CFG and interprocedural CFG construction.

Nodes are instruction uids (assigned by the module).  Within a basic block
each instruction flows to the next; terminators add block-level edges.  The
interprocedural graph additionally records, for every call site, the callee
and the fall-through instruction to which the callee returns, which is what
the cost annotation needs to account for calling into and returning from
functions (§3.4, footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import Branch, Call, Havoc, Instruction, Jump, Return
from repro.ir.module import Function, Module


@dataclass
class ControlFlowGraph:
    """Intraprocedural CFG of one function, at instruction granularity."""

    function: Function
    nodes: dict[int, Instruction] = field(default_factory=dict)
    successors: dict[int, list[int]] = field(default_factory=dict)
    predecessors: dict[int, list[int]] = field(default_factory=dict)
    entry_uid: int = -1
    exit_uids: list[int] = field(default_factory=list)
    # uid of a call/havoc instruction -> callee name
    call_sites: dict[int, str] = field(default_factory=dict)
    # first instruction uid of each basic block (loop-head detection, display)
    block_heads: dict[str, int] = field(default_factory=dict)

    def successor_uids(self, uid: int) -> list[int]:
        return self.successors.get(uid, [])

    def predecessor_uids(self, uid: int) -> list[int]:
        return self.predecessors.get(uid, [])

    @property
    def node_count(self) -> int:
        return len(self.nodes)


def build_cfg(function: Function) -> ControlFlowGraph:
    """Build the instruction-level CFG of ``function``."""
    cfg = ControlFlowGraph(function=function)
    for block in function.blocks:
        if block.instructions:
            cfg.block_heads[block.name] = block.instructions[0].uid
        for instruction in block.instructions:
            cfg.nodes[instruction.uid] = instruction
            cfg.successors.setdefault(instruction.uid, [])
            cfg.predecessors.setdefault(instruction.uid, [])

    def add_edge(src: int, dst: int) -> None:
        cfg.successors[src].append(dst)
        cfg.predecessors[dst].append(src)

    for block in function.blocks:
        instructions = block.instructions
        for position, instruction in enumerate(instructions):
            if isinstance(instruction, (Call, Havoc)):
                cfg.call_sites[instruction.uid] = (
                    instruction.callee
                    if isinstance(instruction, Call)
                    else instruction.hash_function
                )
            if isinstance(instruction, Return):
                cfg.exit_uids.append(instruction.uid)
                continue
            if isinstance(instruction, Jump):
                add_edge(instruction.uid, cfg.block_heads[instruction.target])
                continue
            if isinstance(instruction, Branch):
                targets = {instruction.if_true, instruction.if_false}
                for target in targets:
                    add_edge(instruction.uid, cfg.block_heads[target])
                continue
            if position + 1 < len(instructions):
                add_edge(instruction.uid, instructions[position + 1].uid)

    if function.blocks and function.entry_block.instructions:
        cfg.entry_uid = function.entry_block.instructions[0].uid
    return cfg


@dataclass
class InterproceduralCFG:
    """Per-function CFGs plus the call graph of a module."""

    module: Module
    cfgs: dict[str, ControlFlowGraph] = field(default_factory=dict)
    # caller name -> set of callee names
    call_graph: dict[str, set[str]] = field(default_factory=dict)

    def cfg_of(self, function_name: str) -> ControlFlowGraph:
        return self.cfgs[function_name]

    def instruction(self, uid: int) -> Instruction:
        for cfg in self.cfgs.values():
            if uid in cfg.nodes:
                return cfg.nodes[uid]
        raise KeyError(f"no instruction with uid {uid}")

    def function_of_uid(self, uid: int) -> str:
        for name, cfg in self.cfgs.items():
            if uid in cfg.nodes:
                return name
        raise KeyError(f"no instruction with uid {uid}")

    def callees_in_topological_order(self, entry: str) -> list[str]:
        """Functions reachable from ``entry``, callees before callers.

        Recursion (direct or mutual) raises ``ValueError`` — the NF dialect
        does not allow it and the cost propagation relies on a bottom-up
        traversal.
        """
        order: list[str] = []
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str, stack: tuple[str, ...]) -> None:
            if state.get(name) == 1:
                return
            if state.get(name) == 0:
                cycle = " -> ".join(stack + (name,))
                raise ValueError(f"recursive call cycle in NF: {cycle}")
            state[name] = 0
            for callee in sorted(self.call_graph.get(name, ())):
                visit(callee, stack + (name,))
            state[name] = 1
            order.append(name)

        visit(entry, ())
        return order

    @property
    def total_nodes(self) -> int:
        return sum(cfg.node_count for cfg in self.cfgs.values())


def build_icfg(module: Module) -> InterproceduralCFG:
    """Build per-function CFGs and the call graph for ``module``."""
    icfg = InterproceduralCFG(module=module)
    for name, function in module.functions.items():
        cfg = build_cfg(function)
        icfg.cfgs[name] = cfg
        icfg.call_graph[name] = set(cfg.call_sites.values())
    return icfg
