"""Potential-cost annotation of the ICFG (§3.4).

For every instruction we estimate the maximum number of cycles that can
still be consumed from that instruction until the entry function returns
(i.e. until "the next packet is received").  The estimate assumes every
memory access is an L1 hit — the cache model refines memory costs during
symbolic execution — and bounds loops by allowing each node to appear at
most ``M`` times on a path (the paper's static "every loop executes exactly
M-1 times" assumption).

The propagation is the paper's "special form of path-vector routing": each
node keeps its best known path (as a multiset of node occurrences) to the
function return, advertises it to predecessors, and a predecessor only
accepts a path in which it already appears fewer than ``M`` times.
Functions are processed bottom-up over the call graph so a call site's
local cost includes the callee's own worst-case internal cost, accounting
for both calling into and returning from it.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from repro.cfg.icfg import ControlFlowGraph, InterproceduralCFG, build_icfg
from repro.ir.instructions import Call, Havoc
from repro.ir.module import Module
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS

DEFAULT_LOOP_BOUND = 2


@dataclass
class CostAnnotation:
    """Potential costs for every instruction of a module."""

    module: Module
    icfg: InterproceduralCFG
    loop_bound: int
    cycle_costs: CycleCosts
    # instruction uid -> estimated max cycles from (and including) that
    # instruction to the return of its enclosing function, interprocedural.
    potential_cost: dict[int, int] = field(default_factory=dict)
    # function name -> worst-case internal cost (entry to return)
    function_cost: dict[str, int] = field(default_factory=dict)
    # instruction uid -> local cost used during propagation
    local_cost: dict[int, int] = field(default_factory=dict)

    def cost_of(self, uid: int) -> int:
        """Potential cost of the instruction with ``uid`` (0 if unknown)."""
        return self.potential_cost.get(uid, 0)

    def entry_cost(self, function_name: str) -> int:
        """Worst-case cost of executing ``function_name`` once."""
        return self.function_cost.get(function_name, 0)


def annotate_costs(
    module: Module,
    entry: str,
    loop_bound: int = DEFAULT_LOOP_BOUND,
    cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS,
    icfg: InterproceduralCFG | None = None,
) -> CostAnnotation:
    """Annotate every reachable instruction with its potential cost."""
    if loop_bound < 1:
        raise ValueError("loop bound M must be at least 1")
    icfg = icfg or build_icfg(module)
    annotation = CostAnnotation(
        module=module,
        icfg=icfg,
        loop_bound=loop_bound,
        cycle_costs=cycle_costs,
    )
    order = icfg.callees_in_topological_order(entry)
    for function_name in order:  # callees first
        cfg = icfg.cfg_of(function_name)
        _annotate_function(annotation, cfg)
        entry_uid = cfg.entry_uid
        annotation.function_cost[function_name] = (
            annotation.potential_cost.get(entry_uid, 0) if entry_uid >= 0 else 0
        )
    return annotation


def _local_cost(annotation: CostAnnotation, cfg: ControlFlowGraph, uid: int) -> int:
    """Cycle cost of one node, folding callee costs into call sites."""
    instruction = cfg.nodes[uid]
    cost = annotation.cycle_costs.instruction_cost(instruction, memory_level="L1")
    if isinstance(instruction, (Call, Havoc)):
        callee = cfg.call_sites.get(uid)
        if callee is not None:
            cost += annotation.function_cost.get(callee, 0)
    return cost


def _annotate_function(annotation: CostAnnotation, cfg: ControlFlowGraph) -> None:
    """Bounded path-vector propagation over one function's CFG."""
    loop_bound = annotation.loop_bound
    local: dict[int, int] = {}
    for uid in cfg.nodes:
        local[uid] = _local_cost(annotation, cfg, uid)
        annotation.local_cost[uid] = local[uid]

    # best[uid] = (cost, occurrence Counter of the best path starting at uid)
    best: dict[int, tuple[int, Counter]] = {}
    worklist: deque[int] = deque()
    queued: set[int] = set()

    for uid in cfg.exit_uids:
        best[uid] = (local[uid], Counter({uid: 1}))
        for pred in cfg.predecessor_uids(uid):
            if pred not in queued:
                worklist.append(pred)
                queued.add(pred)

    # Nodes with no successors that are not returns (e.g. trailing
    # unreachable) still get their local cost.
    for uid, successors in cfg.successors.items():
        if not successors and uid not in best:
            best[uid] = (local[uid], Counter({uid: 1}))
            for pred in cfg.predecessor_uids(uid):
                if pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)

    iterations = 0
    max_iterations = max(1000, cfg.node_count * cfg.node_count * loop_bound * 4)
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            # Safety valve: fall back to whatever has been computed so far.
            break
        uid = worklist.popleft()
        queued.discard(uid)
        candidate: tuple[int, Counter] | None = None
        for successor in cfg.successor_uids(uid):
            successor_best = best.get(successor)
            if successor_best is None:
                continue
            successor_cost, successor_path = successor_best
            if successor_path.get(uid, 0) >= loop_bound:
                continue
            cost = local[uid] + successor_cost
            if candidate is None or cost > candidate[0]:
                new_path = Counter(successor_path)
                new_path[uid] += 1
                candidate = (cost, new_path)
        if candidate is None:
            # All successor paths already contain this node M times: the
            # node can still advertise just its own local cost.
            candidate = (local[uid], Counter({uid: 1}))
        current = best.get(uid)
        if current is None or candidate[0] > current[0]:
            best[uid] = candidate
            for pred in cfg.predecessor_uids(uid):
                if pred not in queued:
                    worklist.append(pred)
                    queued.add(pred)

    for uid in cfg.nodes:
        if uid in best:
            annotation.potential_cost[uid] = best[uid][0]
        else:
            # Unreachable-from-exit nodes (e.g. infinite loops, which the
            # dialect should not produce) get their local cost only.
            annotation.potential_cost[uid] = local[uid]


def render_annotated_cfg(annotation: CostAnnotation, function_name: str) -> str:
    """Render one function with per-instruction potential costs.

    Mirrors the paper's Fig. 2: every node shows its estimated maximum
    distance (in cycles) to the function's return point.
    """
    cfg = annotation.icfg.cfg_of(function_name)
    lines = [f"func @{function_name} (potential cost, M={annotation.loop_bound})"]
    for block in cfg.function.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            cost = annotation.potential_cost.get(instruction.uid, 0)
            lines.append(f"  [{cost:6d}] {instruction}")
    return "\n".join(lines)
