"""Control-flow graph extraction and potential-cost annotation (§3.4).

CASTAN's directed search relies on a pre-processing stage that extracts the
NF's interprocedural control-flow graph (ICFG) and annotates every node
(instruction) with an estimate of the maximum cycles that can still be
consumed before the next packet is received.  This subpackage implements
that stage: :mod:`repro.cfg.icfg` builds instruction-level CFGs and the
call graph, :mod:`repro.cfg.costs` runs the bounded path-vector propagation
that produces the per-instruction potential costs.
"""

from repro.cfg.icfg import ControlFlowGraph, InterproceduralCFG, build_cfg, build_icfg
from repro.cfg.costs import CostAnnotation, annotate_costs

__all__ = [
    "ControlFlowGraph",
    "CostAnnotation",
    "InterproceduralCFG",
    "annotate_costs",
    "build_cfg",
    "build_icfg",
]
