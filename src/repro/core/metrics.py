"""Per-path CPU-model metrics emitted alongside each generated workload (§4).

A successful CASTAN run produces, next to the packet sequence, a report of
the expected performance of the selected path: per packet, the number of
non-memory instructions, loads/stores, and how many accesses the cache
model predicts to hit or miss.  These are the numbers developers use to
understand *why* the workload is slow before ever replaying it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.symbex.state import ExecutionState


@dataclass
class PathMetrics:
    """The analysis-side performance prediction for one selected path."""

    packets: int = 0
    total_estimated_cycles: int = 0
    estimated_cycles_per_packet: list[int] = field(default_factory=list)
    instructions_per_packet: list[int] = field(default_factory=list)
    loads_per_packet: list[int] = field(default_factory=list)
    stores_per_packet: list[int] = field(default_factory=list)
    predicted_l3_hits_per_packet: list[int] = field(default_factory=list)
    predicted_dram_accesses_per_packet: list[int] = field(default_factory=list)
    havocs: int = 0
    havocs_reconciled: int = 0
    path_constraints: int = 0
    # Chain NFs: stage label -> estimated cycles spent inside that stage
    # across all packets (empty for standalone NFs).
    stage_cycles: dict[str, int] = field(default_factory=dict)

    @property
    def max_estimated_cycles_per_packet(self) -> int:
        return max(self.estimated_cycles_per_packet, default=0)

    @property
    def mean_estimated_cycles_per_packet(self) -> float:
        if not self.estimated_cycles_per_packet:
            return 0.0
        return sum(self.estimated_cycles_per_packet) / len(self.estimated_cycles_per_packet)

    def to_report(self) -> str:
        """Human-readable per-packet table (what the KTEST companion file lists)."""
        lines = [
            "packet  est.cycles  instructions  loads  stores  L3-hit  DRAM",
        ]
        for i in range(self.packets):
            lines.append(
                f"{i:6d}  {self.estimated_cycles_per_packet[i]:10d}  "
                f"{self.instructions_per_packet[i]:12d}  {self.loads_per_packet[i]:5d}  "
                f"{self.stores_per_packet[i]:6d}  {self.predicted_l3_hits_per_packet[i]:6d}  "
                f"{self.predicted_dram_accesses_per_packet[i]:4d}"
            )
        lines.append(
            f"total estimated cycles: {self.total_estimated_cycles} "
            f"(max/packet {self.max_estimated_cycles_per_packet})"
        )
        lines.append(f"havocs reconciled: {self.havocs_reconciled}/{self.havocs}")
        if self.stage_cycles:
            total = self.total_estimated_cycles or 1
            lines.append("per-stage attribution:")
            for label, cycles in self.stage_cycles.items():
                lines.append(
                    f"  stage {label}: {cycles} cycles ({100.0 * cycles / total:.1f}%)"
                )
        return "\n".join(lines)


def metrics_from_state(state: ExecutionState, havocs_reconciled: int = 0) -> PathMetrics:
    """Extract :class:`PathMetrics` from the selected execution state."""
    metrics = PathMetrics(
        packets=len(state.packet_metrics),
        total_estimated_cycles=state.current_cost,
        havocs=len(state.havoc_records),
        havocs_reconciled=havocs_reconciled,
        path_constraints=len(state.constraints),
        stage_cycles=dict(state.stage_costs),
    )
    for packet in state.packet_metrics:
        metrics.estimated_cycles_per_packet.append(packet.cycles)
        metrics.instructions_per_packet.append(packet.instructions)
        metrics.loads_per_packet.append(packet.loads)
        metrics.stores_per_packet.append(packet.stores)
        metrics.predicted_l3_hits_per_packet.append(packet.l3_hits + packet.l1_hits)
        metrics.predicted_dram_accesses_per_packet.append(packet.dram_accesses)
    return metrics
