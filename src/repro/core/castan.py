"""The CASTAN pipeline (§3.1, §4).

Given a :class:`~repro.nf.base.NetworkFunction`, an analysis run:

1. builds the ICFG and annotates it with potential costs (loop bound M);
2. builds the cache model: candidate addresses over the NF's large regions
   are grouped into L3 contention sets (either via the §3.2 probing
   discovery against the simulated hierarchy, or via the equivalent oracle);
3. symbolically executes the NF over N symbolic packets under the
   max-cost searcher, with the cache model concretizing symbolic pointers
   and ``castan_havoc`` suppressing hash functions — either as one
   monolithic search or, with ``search_mode="beam"``, as the per-packet
   beam-batched round schedule of :mod:`repro.symbex.batch`;
4. picks the highest-cost state, solves its path constraint, reconciles
   havocs with rainbow tables, and materialises N concrete packets plus the
   per-path CPU-model metrics.

A minimal run (tiny budgets; see :class:`~repro.core.config.CastanConfig`
for the real knobs):

>>> from repro.core.castan import Castan
>>> from repro.core.config import CastanConfig
>>> from repro.nf.registry import get_nf
>>> config = CastanConfig(max_states=40, num_packets=2, deadline_seconds=None)
>>> result = Castan(config).analyze(get_nf("lpm-patricia"))
>>> result.packet_count
2
>>> result.best_state_cost > 0
True
>>> result.summary().startswith("CASTAN[lpm-patricia]")
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.cache.contention import ContentionSets, discover_contention_sets
from repro.cache.hierarchy import MemoryHierarchy
from repro.cache.model import CacheModel, ContentionSetCacheModel, NoCacheModel
from repro.cfg.costs import CostAnnotation, annotate_costs
from repro.core.config import CastanConfig
from repro.core.metrics import PathMetrics, metrics_from_state
from repro.core.workload import make_packet_symbols, packets_from_model, symbol_defaults
from repro.hashing.rainbow import RainbowTable, build_flow_rainbow_table
from repro.net.packet import Packet
from repro.net.pcap import write_pcap
from repro.nf.base import NetworkFunction
from repro.symbex.batch import run_beam_search
from repro.symbex.engine import SymbexStats, SymbolicEngine
from repro.symbex.havoc import ReconciliationOutcome, reconcile_havocs
from repro.symbex.searcher import make_searcher
from repro.symbex.solver import Model, Solver
from repro.symbex.state import ExecutionState

#: Process-global rainbow-table cache, keyed by the build parameters
#: (tailored, chain_length, num_chains, seed).  Construction is
#: deterministic in those parameters, so sharing across analyses cannot
#: change any output.
_RAINBOW_TABLE_CACHE: dict[tuple, RainbowTable] = {}


@dataclass
class CastanResult:
    """Everything a CASTAN run produces for one NF."""

    nf_name: str
    packets: list[Packet] = field(default_factory=list)
    metrics: PathMetrics = field(default_factory=PathMetrics)
    analysis_seconds: float = 0.0
    states_explored: int = 0
    completed_paths: int = 0
    forks: int = 0
    best_state_cost: int = 0
    havoc_outcome: ReconciliationOutcome | None = None
    solver_status: str = ""
    contention_sets_used: int = 0
    search_mode: str = "monolithic"
    search_rounds: int = 0
    parallel_mode: str = "off"
    workers: int = 0
    notes: str = ""

    @property
    def packet_count(self) -> int:
        return len(self.packets)

    @property
    def unique_flows(self) -> int:
        return len({p.flow_tuple for p in self.packets})

    def write_pcap(self, path: str | Path) -> int:
        """Write the synthesized workload to a pcap file."""
        return write_pcap(path, self.packets)

    def summary(self) -> str:
        return (
            f"CASTAN[{self.nf_name}]: {self.packet_count} packets in {self.unique_flows} flows, "
            f"estimated cost {self.best_state_cost} cycles, "
            f"analysis {self.analysis_seconds:.2f}s, "
            f"{self.states_explored} states explored"
        )


class Castan:
    """The analysis tool.  Construct once, call :meth:`analyze` per NF."""

    def __init__(self, config: CastanConfig | None = None) -> None:
        self.config = config or CastanConfig()

    # -- public API -----------------------------------------------------------

    def analyze(
        self,
        nf: NetworkFunction,
        num_packets: int | None = None,
        on_round=None,
    ) -> CastanResult:
        """Synthesize an adversarial workload for ``nf``.

        ``on_round`` is an optional observation-only progress callback
        (``RoundStats -> None``): beam and sharded-beam searches call it
        after every round, and a monolithic search calls it once with a
        single summarising pseudo-round (phase ``"monolithic"``), so a
        caller streaming progress — the synthesis service — always sees at
        least one round before the result.  The callback must not mutate
        its argument; it cannot influence the search.
        """
        config = self.config
        start = time.monotonic()
        # `is None`, not truthiness: an explicit num_packets=0 must not be
        # silently replaced by the per-NF default (see CastanConfig.packets_for).
        packet_count = (
            num_packets if num_packets is not None else config.packets_for(nf.castan_packet_count)
        )

        annotation = self._annotate(nf)
        cache_model, contention_sets = self._build_cache_model(nf)
        solver = Solver(search_budget=config.solver_budget, seed=config.seed)

        packet_sets = make_packet_symbols(packet_count)
        defaults = symbol_defaults(packet_sets, nf.packet_defaults)

        engine = SymbolicEngine(
            module=nf.module,
            entry=nf.entry,
            packet_args=[ps.args for ps in packet_sets],
            annotation=annotation,
            cache_model=cache_model,
            solver=solver,
            cycle_costs=config.cycle_costs,
            defaults=defaults,
            hash_output_bits=nf.hash_output_bits,
            max_loop_iterations=config.max_loop_iterations,
            exec_mode=config.exec_mode,
            stage_entries=nf.stage_entries or None,
            branch_batching=config.branch_batching,
        )
        stats = self._run_search(engine, on_round=on_round)

        best = stats.best_state()
        if best is None:
            return CastanResult(
                nf_name=nf.name,
                analysis_seconds=time.monotonic() - start,
                states_explored=stats.states_explored,
                search_mode=config.search_mode,
                search_rounds=len(stats.rounds),
                parallel_mode=config.parallel_mode,
                workers=config.workers,
                notes="no state survived exploration",
            )

        model, solver_status, havoc_outcome = self._solve_state(nf, best, solver, defaults)
        packets = packets_from_model(packet_sets, model, nf.packet_defaults)
        packets = packets[: best.packets_processed] or packets[:1]

        reconciled = len(havoc_outcome.reconciled) if havoc_outcome else 0
        result = CastanResult(
            nf_name=nf.name,
            packets=packets,
            metrics=metrics_from_state(best, havocs_reconciled=reconciled),
            analysis_seconds=time.monotonic() - start,
            states_explored=stats.states_explored,
            completed_paths=len(stats.completed_states),
            forks=stats.forks,
            best_state_cost=best.current_cost,
            havoc_outcome=havoc_outcome,
            solver_status=solver_status,
            contention_sets_used=contention_sets.set_count if contention_sets else 0,
            search_mode=config.search_mode,
            search_rounds=len(stats.rounds),
            parallel_mode=config.parallel_mode,
            workers=config.workers,
        )
        return result

    # -- pipeline stages -----------------------------------------------------------

    def _run_search(self, engine: SymbolicEngine, on_round=None) -> SymbexStats:
        """Dispatch to the monolithic, beam, or sharded-beam search."""
        config = self.config
        if config.search_mode not in ("monolithic", "beam"):
            raise ValueError(
                f"unknown search_mode {config.search_mode!r}; options: monolithic, beam"
            )
        if config.parallel_mode not in ("off", "portfolio", "shards"):
            raise ValueError(
                f"unknown parallel_mode {config.parallel_mode!r}; "
                "options: off, portfolio, shards"
            )

        def searcher_factory():
            return make_searcher(config.searcher, seed=config.seed)

        if config.parallel_mode == "shards":
            if config.search_mode != "beam" or config.beam_width <= 0:
                raise ValueError(
                    "parallel_mode='shards' decomposes the beam scheduler's rounds; "
                    "it requires search_mode='beam' with beam_width > 0"
                )
            # Imported here: repro.parallel.portfolio imports this module.
            from repro.parallel.shards import run_sharded_beam_search

            return run_sharded_beam_search(
                engine,
                searcher_name=config.searcher,
                searcher_seed=config.seed,
                beam_width=config.beam_width,
                workers=config.workers,
                max_states=config.max_states,
                deadline_seconds=config.deadline_seconds,
                max_instructions_per_state=config.max_instructions_per_state,
                round_max_states=config.round_max_states,
                round_deadline_seconds=config.round_deadline_seconds,
                strike_chunk_states=config.strike_chunk_states,
                strike_shards=config.strike_shards,
                on_round=on_round,
            )

        if config.search_mode == "beam" and config.beam_width > 0:
            return run_beam_search(
                engine,
                searcher_factory,
                beam_width=config.beam_width,
                max_states=config.max_states,
                deadline_seconds=config.deadline_seconds,
                max_instructions_per_state=config.max_instructions_per_state,
                round_max_states=config.round_max_states,
                round_deadline_seconds=config.round_deadline_seconds,
                strike_chunk_states=config.strike_chunk_states,
                on_round=on_round,
            )
        stats = engine.run(
            searcher_factory(),
            max_states=config.max_states,
            deadline_seconds=config.deadline_seconds,
            max_instructions_per_state=config.max_instructions_per_state,
        )
        if on_round is not None:
            # One summarising pseudo-round, so progress subscribers see the
            # same event shape regardless of search_mode.  Not appended to
            # stats.rounds: a monolithic search still reports 0 rounds.
            from repro.symbex.batch import RoundStats

            frontier = stats.paused_states + stats.pending_states
            on_round(
                RoundStats(
                    packet_index=len(engine.packet_args) - 1,
                    phase="monolithic",
                    seeds=1,
                    states_explored=stats.states_explored,
                    forks=stats.forks,
                    paused=len(stats.paused_states),
                    pending=len(stats.pending_states),
                    completed=len(stats.completed_states),
                    infeasible=stats.infeasible_states,
                    errors=stats.error_states,
                    best_cost=max(
                        (s.current_cost for s in frontier + stats.completed_states),
                        default=0,
                    ),
                    wall_time_seconds=stats.wall_time_seconds,
                )
            )
        return stats

    def _annotate(self, nf: NetworkFunction) -> CostAnnotation:
        return annotate_costs(
            nf.module,
            nf.entry,
            loop_bound=self.config.loop_bound,
            cycle_costs=self.config.cycle_costs,
        )

    def _build_cache_model(self, nf: NetworkFunction) -> tuple[CacheModel, ContentionSets | None]:
        """Build the cache model over the NF's large memory regions."""
        config = self.config
        if config.cache_partition not in ("shared", "partitioned"):
            raise ValueError(
                f"unknown cache_partition {config.cache_partition!r}; "
                "options: shared, partitioned"
            )
        if config.cache_model == "none" or not nf.contention_regions:
            return NoCacheModel(), None
        if config.cache_partition == "partitioned" and nf.is_chain:
            return self._build_partitioned_cache_model(nf), None

        hierarchy = MemoryHierarchy(config.hierarchy, cycle_costs=config.cycle_costs)
        addresses = self._candidate_addresses(nf, hierarchy)
        if not addresses:
            return NoCacheModel(), None
        contention_sets = self._contention_sets(hierarchy, addresses)
        model = ContentionSetCacheModel(contention_sets)
        return model, contention_sets

    def _contention_sets(
        self, hierarchy: MemoryHierarchy, addresses: list[int]
    ) -> ContentionSets:
        config = self.config
        if config.contention_source == "probing":
            return discover_contention_sets(
                hierarchy,
                addresses,
                max_sets=None,
                runs=1,
                seed=config.seed,
            )
        return ContentionSets.from_oracle(hierarchy, addresses)

    def _build_partitioned_cache_model(self, nf: NetworkFunction) -> CacheModel:
        """Per-stage cache slices for a chain NF.

        Every stage gets its own full-geometry hierarchy and contention
        sets, built over the stage's *standalone* region layout (chain base
        minus the stage's address plane offset).  A stage therefore sees
        bit-for-bit the cache decisions it would see analysed alone —
        modelling way/set-partitioned slices with no cross-stage contention.
        """
        from repro.cache.model import PartitionedCacheModel
        from repro.ir.module import MemoryRegion

        config = self.config
        submodels: list[CacheModel] = []
        routes: dict[str, tuple[int, MemoryRegion]] = {}
        for slot, stage in enumerate(nf.chain_stages):
            proxies: dict[str, MemoryRegion] = {}
            for region_name in stage.region_names:
                region = nf.module.get_region(region_name)
                proxies[region_name] = MemoryRegion(
                    name=region_name,
                    length=region.length,
                    element_size=region.element_size,
                    initial=region.initial,
                    base_address=region.base_address - stage.address_offset,
                )
            submodel: CacheModel = NoCacheModel()
            if stage.contention_regions:
                hierarchy = MemoryHierarchy(config.hierarchy, cycle_costs=config.cycle_costs)
                addresses = self._sample_region_addresses(
                    [proxies[name] for name in stage.contention_regions], hierarchy
                )
                if addresses:
                    submodel = ContentionSetCacheModel(
                        self._contention_sets(hierarchy, addresses)
                    )
            submodels.append(submodel)
            for region_name, proxy in proxies.items():
                routes[region_name] = (slot, proxy)
        return PartitionedCacheModel(submodels, routes)

    def _candidate_addresses(self, nf: NetworkFunction, hierarchy: MemoryHierarchy) -> list[int]:
        """Sample line-aligned candidate addresses inside the NF's big regions."""
        regions = [nf.module.get_region(name) for name in nf.contention_regions]
        return self._sample_region_addresses(regions, hierarchy)

    def _sample_region_addresses(self, regions, hierarchy: MemoryHierarchy) -> list[int]:
        config = self.config
        line = hierarchy.config.line_size
        addresses: list[int] = []
        if config.contention_source == "probing":
            # Probing a pool that spans every L3 set would need tens of
            # thousands of measurements, so exploit what is public knowledge
            # (Fig. 1): the set index within a slice comes from known address
            # bits; only the slice hash is proprietary.  Sampling addresses
            # that all share one set index concentrates the pool on a handful
            # of hidden contention sets, which is all the workload needs.
            stride = hierarchy.config.l3_sets_per_slice * line
            for region in regions:
                count = min(config.probing_pool_lines, max(1, region.size_bytes // stride))
                for i in range(count):
                    addresses.append(region.base_address + i * stride)
            return addresses
        pool_lines = config.contention_pool_lines
        for region in regions:
            total_lines = max(1, region.size_bytes // line)
            step = max(1, total_lines // pool_lines)
            for line_index in range(0, total_lines, step):
                addresses.append(region.base_address + line_index * line)
        return addresses

    def _solve_state(
        self,
        nf: NetworkFunction,
        state: ExecutionState,
        solver: Solver,
        defaults: dict[str, int],
    ) -> tuple[Model, str, ReconciliationOutcome | None]:
        """Solve the selected state's path constraint and reconcile havocs."""
        result = solver.check(state.constraints, defaults=defaults)
        if not result.is_sat:
            # Fall back to defaults-only packets; keep the status for the report.
            return Model(values=dict(defaults)), result.status, None
        model = result.model
        havoc_outcome: ReconciliationOutcome | None = None
        if state.havoc_records and nf.hash_functions:
            tables = self._rainbow_tables(nf)
            havoc_outcome = reconcile_havocs(
                records=state.havoc_records,
                constraints=state.constraints,
                model=model,
                solver=solver,
                rainbow_tables=tables,
                hash_functions=nf.hash_functions,
                defaults=defaults,
                max_candidates_per_havoc=self.config.max_candidates_per_havoc,
            )
            model = havoc_outcome.model
        return model, result.status, havoc_outcome

    def _rainbow_tables(self, nf: NetworkFunction) -> dict[str, RainbowTable]:
        """One (cached) rainbow table per hash function the NF uses.

        Tables are pure functions of their build parameters, so the cache is
        process-global: every NF (and every ``Castan`` instance) analysed in
        this process with the same rainbow settings shares one table instead
        of re-deriving the chains per analysis.
        """
        tables: dict[str, RainbowTable] = {}
        for name in nf.hash_functions:
            key = (
                self.config.rainbow_tailored,
                self.config.rainbow_chain_length,
                self.config.rainbow_chains,
                self.config.seed,
            )
            table = _RAINBOW_TABLE_CACHE.get(key)
            if table is None:
                table = build_flow_rainbow_table(
                    tailored=self.config.rainbow_tailored,
                    chain_length=self.config.rainbow_chain_length,
                    num_chains=self.config.rainbow_chains,
                    seed=self.config.seed,
                )
                _RAINBOW_TABLE_CACHE[key] = table
            tables[name] = table
        return tables
