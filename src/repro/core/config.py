"""Configuration of a CASTAN analysis run."""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from repro.cache.hierarchy import HierarchyConfig
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS

#: Version tag mixed into every :meth:`CastanConfig.content_hash`.  Bump it
#: whenever the canonical form below changes meaning (a field is renamed,
#: a default's semantics change), so stored service results keyed by the
#: old form can never be served for the new one.
CONFIG_HASH_VERSION = "castan-config-v2"


def _canonical_value(value):
    """Reduce a config value to plain JSON-stable data.

    Dataclasses become ``{field: value}`` dicts (sorted by the JSON dump),
    dicts get stringified keys, and containers canonicalize element-wise.
    Only data that survives a JSON round-trip unchanged is allowed — config
    must stay declarative so its hash can address stored results.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise TypeError(f"config value {value!r} is not canonicalizable")


@dataclass
class CastanConfig:
    """Knobs of the analysis (§3, §4).

    The defaults are sized so that a full analysis of any evaluation NF
    finishes in seconds on a laptop; the paper's runs take minutes to hours
    on the real KLEE-based prototype (Table 4).
    """

    # Number of symbolic packets to synthesize (``None`` = per-NF default).
    num_packets: int | None = None
    # Exploration budget: states popped from the searcher, and a wall-clock
    # cap standing in for the paper's time budget.
    max_states: int = 2000
    deadline_seconds: float | None = 60.0
    # Loop bound M for the potential-cost annotation (§3.4).
    loop_bound: int = 2
    # Search shape: "monolithic" explores all N packets in one search;
    # "beam" runs the per-packet round scheduler (repro.symbex.batch),
    # carrying the beam_width highest-priority frontier states between
    # rounds.  beam_width=0 makes "beam" fall back to the monolithic search.
    # A narrow beam (3) measures best across the evaluation NFs: priming
    # rounds only need to carry a few diverse lineages forward.
    search_mode: str = "monolithic"
    beam_width: int = 3
    # Pop budget of one priming round (None = beam_width + 1) and chunk
    # size of the final strike round, which gets the whole remaining
    # max_states budget; round_deadline_seconds caps any single round.
    round_max_states: int | None = None
    round_deadline_seconds: float | None = None
    strike_chunk_states: int = 32
    # Parallel execution (repro.parallel).  "off" runs everything in-process;
    # "portfolio" marks a config whose multi-NF suite should fan out over
    # worker processes (consumed by PortfolioRunner, a no-op for a single
    # analyze() call); "shards" runs the beam scheduler's rounds as hermetic
    # shards that execute on up to `workers` processes (requires
    # search_mode="beam").  The shard schedule never depends on `workers`,
    # so changing the worker count never changes the synthesized workload.
    parallel_mode: str = "off"
    workers: int = 0
    # Number of shards a strike chunk is striped over (None = beam_width).
    strike_shards: int | None = None
    # Engine execution mode: "compiled" (default) runs block-compiled steps
    # with the concolic fast path (repro.symbex.blockc); "interp" is the
    # reference per-instruction interpreter; "vector" adds columnar
    # many-states frontier stepping (repro.symbex.vexec) on top of the
    # compiled tier, degrading to it when numpy is missing.  Outputs are
    # byte-identical in all modes — "interp" is the semantic baseline.
    exec_mode: str = "compiled"
    # Group-level branch resolution in the vector tier: branch conditions of
    # a lane group get their shadow verdicts from one columnar lockstep pass
    # and their feasibility queries deduped across (constraint-chain
    # fingerprint, constraint) classes.  Outputs are byte-identical either
    # way (the off switch exists for A/B digest checks); ignored outside
    # exec_mode="vector".
    branch_batching: bool = True
    # Searcher: "castan", "dfs", "bfs" or "random" (ablation).
    searcher: str = "castan"
    # Cache model: "contention" (default), "none" (ablation).
    cache_model: str = "contention"
    # Hierarchy sharing for chain NFs: "shared" (default) runs every stage
    # against one cache hierarchy (stages contend in L1/L2/L3, the deployed
    # single-core picture); "partitioned" gives each stage its own slice so
    # it sees exactly the cache behaviour of its standalone analysis.
    cache_partition: str = "shared"
    # Where contention sets come from: "oracle" uses the hierarchy's
    # ground-truth slice/set mapping (equivalent to exhaustive probing, fast);
    # "probing" runs the §3.2 discovery for real over a sampled address pool.
    contention_source: str = "oracle"
    # Number of candidate addresses sampled per large region when building
    # the cache model ("probing" mode samples fewer for runtime reasons).
    contention_pool_lines: int = 4096
    probing_pool_lines: int = 192
    # Rainbow-table settings for havoc reconciliation (§3.5).
    rainbow_tailored: bool = True
    rainbow_chains: int = 4096
    rainbow_chain_length: int = 32
    max_candidates_per_havoc: int = 12
    # Simulated processor geometry and cycle costs (shared with the testbed).
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS
    # Engine safety valves.
    max_instructions_per_state: int = 100_000
    max_loop_iterations: int = 256
    # Solver search budget (backtracking nodes).
    solver_budget: int = 8000
    seed: int = 0xCA57A

    # -- canonical form and content addressing --------------------------------

    def to_canonical_dict(self) -> dict:
        """The config as plain, JSON-serialisable data.

        Field order is irrelevant (hashing sorts keys); nested dataclasses
        (``hierarchy``, ``cycle_costs``) flatten recursively.  The inverse
        is :meth:`from_dict`.
        """
        return _canonical_value(self)

    def content_hash(self) -> str:
        """Stable SHA-256 over the canonical form of every field.

        Two configs hash equal iff every field (including the nested
        hierarchy geometry and cycle-cost table) is equal, regardless of
        construction order or process.  The service result store uses this
        hash — together with the NF fingerprint — as the content address of
        an analysis, so *any* drift in canonicalization would silently
        repoint stored results; ``tests/test_config_hash.py`` pins a golden
        hash against exactly that.
        """
        payload = json.dumps(
            [CONFIG_HASH_VERSION, self.to_canonical_dict()],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "CastanConfig":
        """Build a config from (possibly partial) plain-dict overrides.

        Unknown keys raise ``ValueError`` (a typoed knob in a service job
        must fail the submission, not silently analyze with defaults);
        nested ``hierarchy`` / ``cycle_costs`` dicts override field-wise on
        top of their defaults.
        """
        known = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(
                f"unknown CastanConfig field(s) {', '.join(map(repr, unknown))}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        kwargs = dict(data)
        if isinstance(kwargs.get("hierarchy"), dict):
            kwargs["hierarchy"] = HierarchyConfig(**kwargs["hierarchy"])
        if isinstance(kwargs.get("cycle_costs"), dict):
            kwargs["cycle_costs"] = CycleCosts(**kwargs["cycle_costs"])
        return cls(**kwargs)

    def packets_for(self, nf_default: int) -> int:
        """Resolve the packet count for an NF with the given default.

        Only ``None`` means "use the NF's default": an explicit
        ``num_packets=0`` (however degenerate) must not silently become the
        default, so the check is ``is None`` rather than truthiness.
        """
        return self.num_packets if self.num_packets is not None else nf_default
