"""Symbolic packet sets and conversion of solver models into packets.

CASTAN's input is a sequence of N symbolic packets; each packet contributes
five symbols (the IPv4 five-tuple).  After the highest-cost state is solved
(and its havocs reconciled), the model is turned back into concrete
:class:`~repro.net.packet.Packet` objects and, optionally, a pcap file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.net.packet import Packet, PacketField
from repro.symbex.expr import Expr, Sym
from repro.symbex.solver import Model

#: Order of entry-function parameters for every evaluation NF.
FIELD_ORDER = (
    PacketField.SRC_IP,
    PacketField.DST_IP,
    PacketField.SRC_PORT,
    PacketField.DST_PORT,
    PacketField.PROTOCOL,
)


@dataclass
class PacketSymbolSet:
    """The five symbols describing one symbolic packet."""

    index: int
    symbols: dict[str, Sym]

    @property
    def args(self) -> list[Expr]:
        """Arguments for the NF entry function, in parameter order."""
        return [self.symbols[field.field_name] for field in FIELD_ORDER]

    def symbol_name(self, field: PacketField) -> str:
        return self.symbols[field.field_name].name


def make_packet_symbols(num_packets: int) -> list[PacketSymbolSet]:
    """Create the symbol sets for ``num_packets`` symbolic packets."""
    sets: list[PacketSymbolSet] = []
    for index in range(num_packets):
        symbols = {
            field.field_name: Sym(f"pkt{index}.{field.field_name}", bits=field.bits)
            for field in FIELD_ORDER
        }
        sets.append(PacketSymbolSet(index=index, symbols=symbols))
    return sets


def symbol_defaults(
    packet_sets: list[PacketSymbolSet], per_field_defaults: dict[str, int]
) -> dict[str, int]:
    """Expand per-field defaults into per-symbol defaults for the solver.

    A small per-packet perturbation is added to IP/port defaults so that
    unconstrained packets still form distinct flows (matching how the paper
    reports "N packets, N flows" workloads).
    """
    defaults: dict[str, int] = {}
    for packet_set in packet_sets:
        for field in FIELD_ORDER:
            name = packet_set.symbol_name(field)
            base = per_field_defaults.get(field.field_name, 0)
            if field in (PacketField.SRC_PORT,):
                base = (base + packet_set.index) & field.mask
            elif field is PacketField.SRC_IP:
                base = (base + packet_set.index) & field.mask
            defaults[name] = base & field.mask
    return defaults


def workload_digest(packets: Sequence[Packet]) -> str:
    """SHA-256 over the concatenated on-wire bytes of a workload.

    This is *the* definition of "byte-identical" used by the parallel
    identity checks (``benchmarks/bench_parallel.py``, ``tests``) and the
    ``bench-regression`` CI digest gate (``benchmarks/bench_digests.py``).
    """
    payload = b"".join(packet.to_bytes() for packet in packets)
    return hashlib.sha256(payload).hexdigest()


def packets_from_model(
    packet_sets: list[PacketSymbolSet],
    model: Model,
    per_field_defaults: dict[str, int],
) -> list[Packet]:
    """Materialise concrete packets from a solver model."""
    defaults = symbol_defaults(packet_sets, per_field_defaults)
    packets: list[Packet] = []
    for packet_set in packet_sets:
        fields: dict[str, int] = {}
        for field in FIELD_ORDER:
            name = packet_set.symbol_name(field)
            fields[field.field_name] = model.get(name, defaults[name]) & field.mask
        packets.append(
            Packet(
                src_ip=fields["src_ip"],
                dst_ip=fields["dst_ip"],
                src_port=fields["src_port"],
                dst_port=fields["dst_port"],
                protocol=fields["protocol"],
            )
        )
    return packets
