"""CASTAN proper: the end-to-end adversarial workload synthesis pipeline."""

from repro._lazy import lazy_exports

__all__ = ["Castan", "CastanConfig", "CastanResult", "PacketSymbolSet"]

_EXPORTS = {
    "Castan": (".castan", "Castan"),
    "CastanResult": (".castan", "CastanResult"),
    "CastanConfig": (".config", "CastanConfig"),
    "PacketSymbolSet": (".workload", "PacketSymbolSet"),
}

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
