"""Line-rate scoring of packet streams against adversarial signatures.

Per packet the scorer produces a **verdict mask**: a 64-bit word whose bit
*i* is set iff the packet matches signature *i*.  Two execution tiers
produce it, mirroring the engine's interp/compiled/vector discipline:

* the **scalar reference** (:func:`score_batch_fields`) evaluates each
  predicate per packet through the DAG-aware scalar evaluator — the tier
  that defines correctness and runs without numpy;
* the **vectorized tier** (:func:`score_batch_columns`) evaluates each
  predicate once over columnar field arrays via
  :func:`~repro.symbex.expr.column_evaluator` and packs the verdict bits
  lanewise.

Both tiers must agree *byte for byte*: :func:`verdict_bytes` renders any
batch of masks as little-endian ``u64`` and ``tests/test_scoring.py`` pins
``verdict_bytes(vector) == verdict_bytes(scalar)`` on captures and
hypothesis-generated batches.

:class:`StreamScorer` adds the online part — lifetime and windowed
per-signature hit counters plus a top-K offender report per window — with
knobs read from the environment (``REPRO_SCORE_BATCH``,
``REPRO_SCORE_WINDOW``, ``REPRO_SCORE_TOPK``).
"""

from __future__ import annotations

import os
import struct
from collections import Counter
from dataclasses import dataclass, field

from repro.scoring.signatures import AdversarialSignature
from repro.scoring.stream import FIELD_ORDER, batch_flows
from repro.symbex.expr import HAVE_NUMPY, column_evaluator, dag_evaluator

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - numpy ships with the [vector] extra
    _np = None

#: A verdict mask is one 64-bit word, so a scorer carries at most 64
#: signatures (far above anything the distiller emits per NF).
MAX_SIGNATURES = 64

#: Environment knobs (documented in the README knob table).
ENV_BATCH = "REPRO_SCORE_BATCH"
ENV_WINDOW = "REPRO_SCORE_WINDOW"
ENV_TOPK = "REPRO_SCORE_TOPK"

DEFAULT_BATCH = 8192
DEFAULT_WINDOW = 65536
DEFAULT_TOPK = 5


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None
    if parsed < 1:
        raise ValueError(f"{name} must be positive, got {parsed}")
    return parsed


def _check_signatures(signatures: list[AdversarialSignature]) -> None:
    if len(signatures) > MAX_SIGNATURES:
        raise ValueError(
            f"at most {MAX_SIGNATURES} signatures fit one verdict mask, "
            f"got {len(signatures)}"
        )


def score_batch_fields(
    signatures: list[AdversarialSignature], fields: list[dict[str, int]]
) -> list[int]:
    """Scalar reference verdict masks for a batch of per-packet field dicts."""
    _check_signatures(signatures)
    evaluators = [dag_evaluator(signature.predicate) for signature in signatures]
    masks = []
    for packet in fields:
        mask = 0
        for bit, evaluator in enumerate(evaluators):
            if evaluator(packet) != 0:
                mask |= 1 << bit
        masks.append(mask)
    return masks


def score_batch_columns(signatures: list[AdversarialSignature], columns):
    """Vectorized verdict masks over one columnar batch (uint64 array).

    Value-identical to :func:`score_batch_fields` on the same packets; the
    differential tests hold the two tiers byte-equal via
    :func:`verdict_bytes`.
    """
    if _np is None:
        raise RuntimeError("score_batch_columns requires numpy (the [vector] extra)")
    _check_signatures(signatures)
    size = len(columns[FIELD_ORDER[0]])
    masks = _np.zeros(size, dtype=_np.uint64)
    zero = _np.uint64(0)
    for bit, signature in enumerate(signatures):
        verdict = column_evaluator(signature.predicate)(columns)
        lanes = _np.broadcast_to(_np.asarray(verdict), (size,))
        masks |= _np.where(_np.not_equal(lanes, zero), _np.uint64(1 << bit), zero)
    return masks


def verdict_bytes(masks) -> bytes:
    """Canonical little-endian ``u64`` rendering of a batch of verdict masks.

    The byte-identity surface of the two tiers: equal packets must yield
    equal bytes whether ``masks`` is a Python list (scalar tier) or a numpy
    array (vector tier).
    """
    if _np is not None and isinstance(masks, _np.ndarray):
        return masks.astype("<u8").tobytes()
    return struct.pack(f"<{len(masks)}Q", *masks)


@dataclass
class ScoreWindow:
    """One completed scoring window: counters plus the top-K offenders."""

    index: int
    start_packet: int
    packets: int
    matched: int
    signature_hits: list[int]
    top_offenders: list[tuple[tuple[int, int, int, int, int], int]]

    def to_dict(self) -> dict:
        return {
            "window": self.index,
            "start_packet": self.start_packet,
            "packets": self.packets,
            "matched": self.matched,
            "signature_hits": list(self.signature_hits),
            "top_offenders": [
                {"flow": list(flow), "hits": hits} for flow, hits in self.top_offenders
            ],
        }


class StreamScorer:
    """Windowed stream scoring with per-signature counters and top-K flows.

    Feed batches in either representation (columnar dict of uint64 arrays,
    or a list of per-packet field dicts); each :meth:`feed` returns the
    windows that *completed* inside that batch, and :meth:`finish` flushes
    the final partial window.  All counters are derived purely from the
    verdict masks, so scalar- and vector-fed scorers of the same packets
    report identical windows.
    """

    def __init__(
        self,
        signatures: list[AdversarialSignature],
        window_size: int | None = None,
        top_k: int | None = None,
    ) -> None:
        _check_signatures(list(signatures))
        self.signatures = list(signatures)
        self.window_size = window_size if window_size is not None else _env_int(
            ENV_WINDOW, DEFAULT_WINDOW
        )
        self.top_k = top_k if top_k is not None else _env_int(ENV_TOPK, DEFAULT_TOPK)
        if self.window_size < 1:
            raise ValueError(f"window_size must be positive, got {self.window_size}")
        self.total_packets = 0
        self.total_matched = 0
        self.total_hits = [0] * len(self.signatures)
        self.windows_emitted = 0
        self._window_start = 0
        self._window_packets = 0
        self._window_matched = 0
        self._window_hits = [0] * len(self.signatures)
        self._window_offenders: Counter = Counter()

    # -- feeding --------------------------------------------------------------

    def feed(self, batch) -> list[ScoreWindow]:
        """Score one batch; returns the windows completed by it."""
        if isinstance(batch, list):
            masks = score_batch_fields(self.signatures, batch)
        else:
            masks = score_batch_columns(self.signatures, batch)
        return self.ingest(masks, batch_flows(batch))

    def ingest(self, masks, flows) -> list[ScoreWindow]:
        """Account one batch's verdict masks against the window state.

        ``masks`` is whatever tier produced it (list or numpy array);
        ``flows`` the parallel 5-tuples.  Window boundaries may fall inside
        the batch — packets are attributed to windows in stream order.
        """
        completed: list[ScoreWindow] = []
        for mask, flow in zip(masks, flows):
            mask = int(mask)
            self.total_packets += 1
            self._window_packets += 1
            if mask:
                self.total_matched += 1
                self._window_matched += 1
                self._window_offenders[flow] += 1
                bits = mask
                while bits:
                    bit = (bits & -bits).bit_length() - 1
                    self.total_hits[bit] += 1
                    self._window_hits[bit] += 1
                    bits &= bits - 1
            if self._window_packets >= self.window_size:
                completed.append(self._close_window())
        return completed

    def _close_window(self) -> ScoreWindow:
        offenders = sorted(
            self._window_offenders.items(), key=lambda item: (-item[1], item[0])
        )[: self.top_k]
        window = ScoreWindow(
            index=self.windows_emitted,
            start_packet=self._window_start,
            packets=self._window_packets,
            matched=self._window_matched,
            signature_hits=list(self._window_hits),
            top_offenders=offenders,
        )
        self.windows_emitted += 1
        self._window_start += self._window_packets
        self._window_packets = 0
        self._window_matched = 0
        self._window_hits = [0] * len(self.signatures)
        self._window_offenders = Counter()
        return window

    def finish(self) -> ScoreWindow | None:
        """Close and return the trailing partial window (``None`` if empty)."""
        if self._window_packets == 0:
            return None
        return self._close_window()

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """Lifetime totals (JSON-safe)."""
        return {
            "packets": self.total_packets,
            "matched": self.total_matched,
            "windows": self.windows_emitted,
            "signatures": [
                {
                    "label": signature.label,
                    "kind": signature.kind,
                    "threshold_cycles": signature.threshold_cycles,
                    "hits": hits,
                }
                for signature, hits in zip(self.signatures, self.total_hits)
            ],
        }


@dataclass
class ScorerOptions:
    """Resolved scorer knobs (environment defaults, explicit overrides win)."""

    batch_size: int = field(default_factory=lambda: _env_int(ENV_BATCH, DEFAULT_BATCH))
    window_size: int = field(
        default_factory=lambda: _env_int(ENV_WINDOW, DEFAULT_WINDOW)
    )
    top_k: int = field(default_factory=lambda: _env_int(ENV_TOPK, DEFAULT_TOPK))
