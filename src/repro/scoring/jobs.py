"""The score job: analyze (or cache-hit) → distill → stream windows.

One entry point shared by the service's ``POST /score`` executor and the
``tools/repro_score.py`` CLI, so both wire the same pipeline:

1. **result** — reuse the content-addressed store entry for
   ``(nf, config, num_packets)`` when present, otherwise run the analysis
   (and persist it, so the next score job for the same triple is free);
2. **signatures** — distill calibrated signatures from the result, cached
   in the store's signature shelf under the set's own content address;
3. **stream** — score the requested traffic (an uploaded pcap or a
   synthetic in-class stream) in batches, emitting one event per completed
   window plus a terminal summary.

``emit(kind, payload)`` receives ``("signatures", ...)`` once, then
``("window", ...)`` per window; the returned summary carries lifetime
counters.  ``should_cancel`` is polled between batches, so a cancelled job
stops within one batch of traffic.
"""

from __future__ import annotations

import io

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.nf.base import NetworkFunction
from repro.nf.registry import get_nf
from repro.scoring.distill import DistillReport, distill_signatures
from repro.scoring.scorer import ScorerOptions, StreamScorer
from repro.scoring.signatures import SignatureSet
from repro.scoring.stream import (
    fields_to_columns,
    iter_pcap_batches,
    packets_to_fields,
    synthetic_batches,
)
from repro.symbex.expr import HAVE_NUMPY


def obtain_result(
    nf: NetworkFunction,
    config: CastanConfig,
    num_packets: int | None = None,
    store=None,
) -> CastanResult:
    """The analysis result for ``(nf, config, num_packets)``, store-first."""
    if store is not None:
        key = store.key_for(nf, config, num_packets)
        entry = store.get(key)
        if entry is not None:
            return entry[0]
    result = Castan(config).analyze(nf, num_packets=num_packets)
    if store is not None:
        store.put(store.key_for(nf, config, num_packets), result)
    return result


def obtain_signatures(
    nf: NetworkFunction,
    result: CastanResult,
    config: CastanConfig,
    store=None,
    report: DistillReport | None = None,
) -> SignatureSet:
    """Distilled signatures for ``result``, cached on the store's sig shelf."""
    if store is not None:
        from repro.service.store import canonical_result_digest

        probe = SignatureSet(
            nf_name=nf.name,
            nf_fingerprint=nf.fingerprint(),
            source_result_digest=canonical_result_digest(result),
        )
        cached = store.get_signatures(probe.store_key())
        if cached is not None:
            return cached
    signature_set = distill_signatures(nf, result, config=config, report=report)
    if store is not None:
        store.put_signatures(signature_set)
    return signature_set


def _traffic_batches(nf: NetworkFunction, traffic: dict, options: ScorerOptions):
    """Batches for one traffic spec: ``pcap_bytes``/``pcap_path`` or ``synthetic``."""
    if "pcap_bytes" in traffic or "pcap_path" in traffic:
        source = (
            io.BytesIO(traffic["pcap_bytes"])
            if "pcap_bytes" in traffic
            else traffic["pcap_path"]
        )
        for packets in iter_pcap_batches(source, options.batch_size):
            fields = packets_to_fields(packets)
            yield fields_to_columns(fields) if HAVE_NUMPY else fields
        return
    if "synthetic" in traffic:
        count = int(traffic["synthetic"])
        if count < 0:
            raise ValueError(f"synthetic packet count must be >= 0, got {count}")
        seed = int(traffic.get("seed", 0))
        yield from synthetic_batches(nf, count, options.batch_size, seed=seed)
        return
    raise ValueError(
        "traffic spec needs 'pcap_bytes', 'pcap_path' or 'synthetic' "
        f"(got keys {sorted(traffic)})"
    )


def run_score_job(
    nf_spec: str,
    config: CastanConfig,
    traffic: dict,
    num_packets: int | None = None,
    store=None,
    options: ScorerOptions | None = None,
    emit=None,
    should_cancel=None,
) -> dict:
    """Run one score job end to end; returns the terminal summary dict."""
    options = options or ScorerOptions()
    emit = emit or (lambda kind, payload: None)
    nf = get_nf(nf_spec)
    result = obtain_result(nf, config, num_packets, store=store)
    report = DistillReport()
    signature_set = obtain_signatures(nf, result, config, store=store, report=report)
    emit(
        "signatures",
        {
            "nf": nf.name,
            "count": len(signature_set),
            "store_key": signature_set.store_key(),
            "content_hash": signature_set.content_hash(),
            "signatures": [
                {
                    "kind": s.kind,
                    "label": s.label,
                    "threshold_cycles": s.threshold_cycles,
                    "baseline_cycles": s.baseline_cycles,
                    "priming_flows": len(s.priming_flows),
                }
                for s in signature_set
            ],
        },
    )

    scorer = StreamScorer(
        signature_set.signatures,
        window_size=options.window_size,
        top_k=options.top_k,
    )
    cancelled = False
    for batch in _traffic_batches(nf, traffic, options):
        if should_cancel is not None and should_cancel():
            cancelled = True
            break
        for window in scorer.feed(batch):
            emit("window", window.to_dict())
    if not cancelled:
        trailing = scorer.finish()
        if trailing is not None:
            emit("window", trailing.to_dict())

    summary = scorer.summary()
    summary["nf"] = nf.name
    summary["cancelled"] = cancelled
    summary["signature_store_key"] = signature_set.store_key()
    return summary
