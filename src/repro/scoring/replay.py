"""Replay calibration: probe-packet cost on an adversarially primed NF.

The distiller's claim about a signature is *behavioural*: after the NF has
absorbed the synthesized adversarial workload, a fresh matching packet is
expensive and a fresh background packet is not.  :class:`PrimedReplay`
measures exactly that, on the same concrete interpreter + simulated memory
hierarchy the testbed uses: prime once, snapshot the NF memory and cache
state, then restore the snapshot before every probe so each measurement is
independent of probe order.
"""

from __future__ import annotations

from repro.cache.hierarchy import MemoryHierarchy
from repro.net.flows import FlowKey
from repro.net.packet import Packet
from repro.nf.base import NetworkFunction
from repro.perf.interpreter import ConcreteInterpreter

Flow = tuple[int, int, int, int, int]


def flow_packet(flow: Flow) -> Packet:
    src_ip, dst_ip, src_port, dst_port, protocol = flow
    return Packet(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
    )


def flow_fields(flow: Flow) -> dict[str, int]:
    src_ip, dst_ip, src_port, dst_port, protocol = flow
    return {
        "src_ip": src_ip,
        "dst_ip": dst_ip,
        "src_port": src_port,
        "dst_port": dst_port,
        "protocol": protocol,
    }


def flow_of_packet(packet: Packet) -> Flow:
    return (packet.src_ip, packet.dst_ip, packet.src_port, packet.dst_port, packet.protocol)


class PrimedReplay:
    """Measure per-packet cycle cost from one primed NF state.

    >>> from repro.nf.registry import get_nf
    >>> nf = get_nf("lpm-patricia")
    >>> replay = PrimedReplay(nf, priming_flows=[])
    >>> replay.probe_cost((0xC0A80001, 0x08080808, 2000, 80, 17)) > 0
    True
    """

    def __init__(
        self,
        nf: NetworkFunction,
        priming_flows: list[Flow],
        hierarchy: MemoryHierarchy | None = None,
    ) -> None:
        self.nf = nf
        self.interpreter = ConcreteInterpreter(
            nf.module, nf.entry, hierarchy=hierarchy or MemoryHierarchy()
        )
        for flow in priming_flows:
            self.interpreter.process_packet(flow_packet(flow))
        self._snapshot = self.interpreter.snapshot_state()

    def probe_cost(self, flow: Flow | FlowKey | Packet) -> int:
        """Reference cycles for one probe packet against the primed state."""
        if isinstance(flow, Packet):
            packet = flow
        elif isinstance(flow, FlowKey):
            packet = flow.to_packet()
        else:
            packet = flow_packet(flow)
        self.interpreter.restore_state(self._snapshot)
        return self.interpreter.process_packet(packet).cycles

    def probe_costs(self, flows: list[Flow]) -> list[int]:
        return [self.probe_cost(flow) for flow in flows]
