"""Adversarial-traffic scoring: distilled signatures + line-rate stream scoring.

The deployable half of the pipeline (ROADMAP item 4): distill a CASTAN
analysis into :class:`~repro.scoring.signatures.AdversarialSignature`
predicates, then score live traffic against them at columnar speed —
:mod:`repro.scoring.distill` builds and replay-calibrates the signatures,
:mod:`repro.scoring.scorer` executes them over packet streams, and
:mod:`repro.scoring.jobs` wires both into the service's ``POST /score``
job and the ``tools/repro_score.py`` CLI.
"""

from repro.scoring.distill import DistillReport, distill_signatures
from repro.scoring.replay import PrimedReplay
from repro.scoring.scorer import (
    ScorerOptions,
    ScoreWindow,
    StreamScorer,
    score_batch_columns,
    score_batch_fields,
    verdict_bytes,
)
from repro.scoring.signatures import (
    SIGNATURE_VERSION,
    AdversarialSignature,
    SignatureSet,
    signature_from_dict,
    signature_set_from_dict,
    signature_set_from_json,
)

__all__ = [
    "SIGNATURE_VERSION",
    "AdversarialSignature",
    "DistillReport",
    "PrimedReplay",
    "ScoreWindow",
    "ScorerOptions",
    "SignatureSet",
    "StreamScorer",
    "distill_signatures",
    "score_batch_columns",
    "score_batch_fields",
    "signature_from_dict",
    "signature_set_from_dict",
    "signature_set_from_json",
    "verdict_bytes",
]
