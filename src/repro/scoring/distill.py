"""Signature distillation: from a CASTAN result to adversarial signatures.

The distiller walks one :class:`~repro.core.castan.CastanResult` and emits
:class:`~repro.scoring.signatures.AdversarialSignature` predicates that
recognise *more* traffic like the synthesized worst case:

1. **Hash-bucket signatures** come from the havoc records.  Each record's
   key expression is renamed from the engine's ``pkt<i>.*`` namespace onto
   the canonical single-packet fields; key templates that are uniform
   across packets (the NAT's forward key, the LB's flow key — per-flow
   constants disqualify the NAT's reverse key automatically) are hashed
   concretely over the workload to find the bucket the workload piles
   into, and the predicate pins that bucket *symbolically*:
   ``(flow_hash16(key_template) & bucket_mask) == bucket``.
2. **Cache-set / field-cluster signatures** come from the packets alone:
   field projections (``field >> shift``) that concentrate on one value
   across most of the workload (the clustered destinations that walk a
   deep LPM/tree path, the sources mapping to one contention set).

Every candidate is then **calibrated by replay** (:mod:`.replay`): the NF
is primed with the synthesized workload, fresh matching probes are
synthesized — inverting the hash via the rainbow table and handing the
key-packing tree to the solver, exactly the trees the solver already
inverts during reconciliation — and traffic-class background probes are
drawn from the workload generators.  A signature survives only if every
matching probe costs strictly more than every background probe with a
clear margin; the published threshold is the midpoint.  Trivial predicates
(implied by the traffic class) die here: no non-matching background can
be built, so they are dropped.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field as dataclass_field

from repro.core.castan import Castan, CastanResult
from repro.core.config import CastanConfig
from repro.hashing.functions import FLOW_HASH_MASK
from repro.ir.instructions import BinOpKind, CmpKind
from repro.nf.base import NetworkFunction
from repro.nf.common import HASH_TABLE_BUCKETS
from repro.scoring.replay import Flow, PrimedReplay, flow_fields
from repro.scoring.signatures import (
    FIELD_ORDER,
    AdversarialSignature,
    SignatureSet,
    conjoin,
    field_sym,
    flow_hash16_expr,
    hint_gate_exprs,
    packet_symbol_map,
)
from repro.symbex.expr import (
    Const,
    Expr,
    column_evaluator,
    evaluate,
    expr_eq,
    make_binop,
    make_cmp,
    rename_symbols,
)
from repro.symbex.solver import Solver
from repro.workloads.generators import _flow_for_index

_CANONICAL_FIELDS = frozenset(FIELD_ORDER)

#: Minimum fraction of workload packets a field projection must cover.
MIN_COVERAGE = 0.6

#: Field projections tried for cache-set / field-cluster candidates.
_PROJECTIONS = (
    ("dst_ip", 0),
    ("dst_ip", 8),
    ("dst_ip", 16),
    ("dst_ip", 24),
    ("src_ip", 0),
    ("src_ip", 8),
    ("src_ip", 16),
    ("dst_port", 0),
    ("src_port", 0),
)


@dataclass
class _Candidate:
    """A predicate awaiting replay calibration."""

    kind: str
    label: str
    predicate: Expr
    evidence_packets: int
    # Fast concrete matcher (avoids re-evaluating the unrolled hash tree
    # thousands of times during background filtering).
    matcher: object
    # For hash-bucket / hash-range candidates: how to invert the hash.
    key_template: Expr | None = None
    hash_function: str = ""
    # Target 16-bit hash values whose keys satisfy the predicate.
    hash_targets: tuple[int, ...] = ()
    # Orders matching flows weakest-last (hash-range probes at the arc's
    # tail walk the shortest run, so calibration must measure them).
    weakness: object = None


@dataclass
class DistillReport:
    """What the distiller did (kept for the service's event stream)."""

    candidates: int = 0
    calibrated: int = 0
    dropped_no_probes: int = 0
    dropped_no_background: int = 0
    dropped_unseparated: int = 0
    notes: list[str] = dataclass_field(default_factory=list)


def _dominant_stage(result: CastanResult) -> str:
    cycles = result.metrics.stage_cycles
    if not cycles:
        return ""
    return max(cycles, key=lambda label: (cycles[label], label))


def _packet_flows(result: CastanResult) -> list[Flow]:
    return [p.flow_tuple for p in result.packets]


# -- candidate extraction ---------------------------------------------------------


def _havoc_groups(nf: NetworkFunction, result: CastanResult) -> dict[tuple[Expr, str], int]:
    """Packet-uniform key templates from the run's havoc records.

    Each record's key expression is renamed from its ``pkt<i>.*`` namespace
    onto the canonical fields; a template that survives renaming with only
    canonical symbols is uniform — the same 5-tuple function of whichever
    packet it came from.  Templates carrying per-flow constants (the NAT's
    reverse key embeds the allocated external port) keep foreign or no
    symbols and drop out here.
    """
    outcome = result.havoc_outcome
    if outcome is None or not nf.hash_functions:
        return {}
    groups: dict[tuple[Expr, str], int] = {}
    for record in list(outcome.reconciled) + list(outcome.failed):
        if not record.hash_function.endswith("flow_hash16"):
            continue  # the symbolic unrolling is flow_hash16-specific
        template = rename_symbols(record.key_expr, packet_symbol_map(record.packet_index))
        if not template.symbol_names or not template.symbol_names <= _CANONICAL_FIELDS:
            continue
        key = (template, record.hash_function)
        groups[key] = groups.get(key, 0) + 1
    return groups


#: Width of the hash window a hash-range candidate pins (open-addressing
#: rings cluster keys in an *arc* of consecutive hash values, not a bucket).
RANGE_WIDTH = 64


def _hash_bucket_candidates(
    nf: NetworkFunction, result: CastanResult, gates: list[Expr], gate_labels: list[str]
) -> list[_Candidate]:
    """Bucket- and arc-collision predicates from the run's havoc records."""
    flows = _packet_flows(result)
    if not flows:
        return []
    candidates: list[_Candidate] = []
    for (template, hash_name), count in _havoc_groups(nf, result).items():
        if count < 2:
            continue  # not established across packets
        hash_fn = nf.hash_functions[hash_name]
        hashes = [hash_fn(evaluate(template, flow_fields(flow))) for flow in flows]
        hash_expr = flow_hash16_expr(template)

        # Chained-table shape: the workload piles into one bucket (the low
        # hash bits).  Generous on purpose — small-budget runs reconcile
        # few havocs, so even a 2-packet pile-up is worth proposing; replay
        # calibration decides whether the bucket is hot enough.
        mask = HASH_TABLE_BUCKETS - 1
        bucket, hits = Counter(h & mask for h in hashes).most_common(1)[0]
        if hits >= 2:
            core = make_cmp(
                CmpKind.EQ, make_binop(BinOpKind.AND, hash_expr, Const(mask)), Const(bucket)
            )
            label = f"flow_hash16(key) & 0x{mask:x} == 0x{bucket:x}"
            if gate_labels:
                label += " && " + " && ".join(gate_labels)

            def bucket_matcher(fields, _t=template, _fn=hash_fn, _m=mask, _b=bucket, _g=gates):
                if any(evaluate(gate, fields) == 0 for gate in _g):
                    return False
                return (_fn(evaluate(_t, fields)) & _m) == _b

            span = (FLOW_HASH_MASK + 1) // (mask + 1)
            candidates.append(
                _Candidate(
                    kind="hash-bucket",
                    label=label,
                    predicate=conjoin(gates + [core]),
                    evidence_packets=hits,
                    matcher=bucket_matcher,
                    key_template=template,
                    hash_function=hash_name,
                    hash_targets=tuple(bucket | (j * (mask + 1)) for j in range(span)),
                )
            )

        # Open-addressing shape: the workload clusters in an arc of
        # consecutive hash values (linear probing piles the run up).  Pin
        # the densest RANGE_WIDTH window; wraparound subtraction keeps the
        # predicate a pure mask/shift/compare tree.
        window_hits = Counter()
        for h in hashes:
            for other in hashes:
                if ((other - h) & FLOW_HASH_MASK) < RANGE_WIDTH:
                    window_hits[h] += 1
        lo, range_hits = window_hits.most_common(1)[0] if window_hits else (0, 0)
        if range_hits >= 2:
            core = make_cmp(
                CmpKind.ULE,
                make_binop(
                    BinOpKind.AND,
                    make_binop(BinOpKind.SUB, hash_expr, Const(lo)),
                    Const(FLOW_HASH_MASK),
                ),
                Const(RANGE_WIDTH - 1),
            )
            label = f"flow_hash16(key) - 0x{lo:x} < 0x{RANGE_WIDTH:x}"
            if gate_labels:
                label += " && " + " && ".join(gate_labels)

            def range_matcher(fields, _t=template, _fn=hash_fn, _lo=lo, _g=gates):
                if any(evaluate(gate, fields) == 0 for gate in _g):
                    return False
                return ((_fn(evaluate(_t, fields)) - _lo) & FLOW_HASH_MASK) < RANGE_WIDTH

            def range_weakness(fields, _t=template, _fn=hash_fn, _lo=lo):
                return (_fn(evaluate(_t, fields)) - _lo) & FLOW_HASH_MASK

            candidates.append(
                _Candidate(
                    kind="hash-range",
                    label=label,
                    predicate=conjoin(gates + [core]),
                    evidence_packets=range_hits,
                    matcher=range_matcher,
                    key_template=template,
                    hash_function=hash_name,
                    hash_targets=tuple((lo + j) & FLOW_HASH_MASK for j in range(RANGE_WIDTH)),
                    weakness=range_weakness,
                )
            )

        # Neither shape concentrated: at small search budgets an
        # open-addressing attack can land its havocs on *spaced* slots, so
        # no window holds two workload hashes.  Fall back to the sharpest
        # predicate there is — exact hash equality with the dominant
        # workload hash.  One packet of evidence is enough to propose it:
        # amplification piles synthesized colliders into one probe run, and
        # replay calibration is the actual gate.
        if hits < 2 and range_hits < 2:
            target = Counter(hashes).most_common(1)[0][0]
            core = make_cmp(CmpKind.EQ, hash_expr, Const(target))
            label = f"flow_hash16(key) == 0x{target:x}"
            if gate_labels:
                label += " && " + " && ".join(gate_labels)

            def exact_matcher(fields, _t=template, _fn=hash_fn, _v=target, _g=gates):
                if any(evaluate(gate, fields) == 0 for gate in _g):
                    return False
                return _fn(evaluate(_t, fields)) == _v

            candidates.append(
                _Candidate(
                    kind="hash-bucket",
                    label=label,
                    predicate=conjoin(gates + [core]),
                    evidence_packets=Counter(hashes).most_common(1)[0][1],
                    matcher=exact_matcher,
                    key_template=template,
                    hash_function=hash_name,
                    hash_targets=(target,),
                )
            )
    return candidates


def _field_cluster_candidates(
    nf: NetworkFunction, result: CastanResult, gates: list[Expr], gate_labels: list[str]
) -> list[_Candidate]:
    """Field projections the workload concentrates on (cache-set clustering)."""
    flows = _packet_flows(result)
    if len(flows) < 2:
        return []
    kind = "cache-set" if nf.contention_regions else "field-cluster"
    candidates: list[_Candidate] = []
    seen_values: set[tuple[str, int]] = set()
    for field_name, shift in _PROJECTIONS:
        values = [flow_fields(flow)[field_name] >> shift for flow in flows]
        value, hits = Counter(values).most_common(1)[0]
        if hits < max(2, int(MIN_COVERAGE * len(flows))):
            continue
        # A finer projection already captured this field at an equal or
        # better concentration; a coarser one adds only false positives.
        if (field_name, hits) in seen_values:
            continue
        seen_values.add((field_name, hits))
        core = make_cmp(
            CmpKind.EQ,
            make_binop(BinOpKind.LSHR, field_sym(field_name), Const(shift)),
            Const(value),
        )
        label = (
            f"{field_name} >> {shift} == 0x{value:x}" if shift else f"{field_name} == 0x{value:x}"
        )
        if gate_labels:
            label += " && " + " && ".join(gate_labels)

        def matcher(fields, _f=field_name, _s=shift, _v=value, _g=gates):
            if any(evaluate(gate, fields) == 0 for gate in _g):
                return False
            return (fields[_f] >> _s) == _v

        candidates.append(
            _Candidate(
                kind=kind,
                label=label,
                predicate=conjoin(gates + [core]),
                evidence_packets=hits,
                matcher=matcher,
            )
        )
    return candidates


# -- matching-flow synthesis ---------------------------------------------------------


def _model_flow(nf: NetworkFunction, model) -> Flow:
    defaults = nf.packet_defaults
    return (
        model.get("src_ip", defaults.get("src_ip", 0x0A000001)) & 0xFFFFFFFF,
        model.get("dst_ip", defaults.get("dst_ip", 0x08080808)) & 0xFFFFFFFF,
        model.get("src_port", defaults.get("src_port", 10000)) & 0xFFFF,
        model.get("dst_port", defaults.get("dst_port", 80)) & 0xFFFF,
        model.get("protocol", defaults.get("protocol", 17)) & 0xFF,
    )


def _mine_matching_columns(
    nf: NetworkFunction,
    candidate: _Candidate,
    accept,
    needed,
    rng: random.Random,
    batches: int = 32,
    batch_size: int = 65536,
) -> None:
    """Mine matching flows by scoring random columnar batches.

    This is the vectorized scorer run in reverse: evaluate the predicate
    over random in-class field columns and keep the lanes that match.
    No-op without numpy (the scalar scan below still runs).
    """
    evaluator = column_evaluator(candidate.predicate)
    if evaluator is None:
        return
    import numpy as np

    from repro.scoring.stream import random_flow_columns

    for _ in range(batches):
        columns = random_flow_columns(nf, batch_size, rng)
        verdict = evaluator(columns)
        for lane in np.flatnonzero(verdict):
            accept(
                (
                    int(columns["src_ip"][lane]),
                    int(columns["dst_ip"][lane]),
                    int(columns["src_port"][lane]),
                    int(columns["dst_port"][lane]),
                    int(columns["protocol"][lane]),
                )
            )
            if needed() <= 0:
                return


def synthesize_matching_flows(
    nf: NetworkFunction,
    candidate: _Candidate,
    gates: list[Expr],
    config: CastanConfig,
    exclude: set[Flow],
    count: int,
    rng: random.Random,
) -> list[Flow]:
    """Fresh flows satisfying the candidate predicate (none in ``exclude``).

    Hash-bucket and hash-range candidates are inverted the way
    reconciliation inverts havocs: the rainbow table proposes keys hashing
    to the target values and the solver inverts the (disjoint-bitfield)
    key-packing template to recover field values.  Field candidates go to
    the solver directly with varied defaults for diversity.  Columnar
    mining — the vectorized scorer run over random in-class batches — then
    fills the remainder, with a scalar traffic-class scan as the
    numpy-free fallback.
    """
    solver = Solver(search_budget=config.solver_budget, seed=config.seed)
    flows: list[Flow] = []
    seen = set(exclude)

    def accept(flow: Flow) -> bool:
        if flow in seen or not candidate.matcher(flow_fields(flow)):
            return False
        seen.add(flow)
        flows.append(flow)
        return True

    defaults = dict(nf.packet_defaults)
    if candidate.key_template is not None:
        table = Castan(config)._rainbow_tables(nf)[candidate.hash_function]
        targets = list(candidate.hash_targets)
        rng.shuffle(targets)
        for target in targets:
            for key in table.invert(target, limit=8):
                check = solver.check(
                    [expr_eq(candidate.key_template, Const(key))] + list(gates),
                    defaults=defaults,
                )
                if check.is_sat:
                    accept(_model_flow(nf, check.model))
                if len(flows) >= count:
                    return flows
    else:
        for _attempt in range(2 * count):
            varied = dict(defaults)
            varied["src_port"] = 1024 + rng.randrange(60000)
            varied["src_ip"] = defaults.get("src_ip", 0x0A000001) ^ rng.getrandbits(8)
            check = solver.check([candidate.predicate], defaults=varied)
            if check.is_sat:
                accept(_model_flow(nf, check.model))
            if len(flows) >= count:
                return flows

    _mine_matching_columns(nf, candidate, accept, lambda: count - len(flows), rng)
    if len(flows) >= count:
        return flows

    # Scalar brute-force fallback: scan the traffic class with the matcher.
    for index in range(200_000, 200_000 + 20_000):
        key = _flow_for_index(nf, index, rng)
        flow = (key.src_ip, key.dst_ip, key.src_port, key.dst_port, key.protocol)
        if accept(flow) and len(flows) >= count:
            break
    return flows


def _background_flows(
    nf: NetworkFunction,
    candidate: _Candidate,
    exclude: set[Flow],
    count: int,
    rng: random.Random,
) -> list[Flow]:
    """In-traffic-class flows that do NOT match the candidate predicate."""
    flows: list[Flow] = []
    seen = set(exclude)
    for index in range(500_000, 500_000 + 50 * count):
        key = _flow_for_index(nf, index, rng)
        flow: Flow = (key.src_ip, key.dst_ip, key.src_port, key.dst_port, key.protocol)
        if flow in seen or candidate.matcher(flow_fields(flow)):
            continue
        seen.add(flow)
        flows.append(flow)
        if len(flows) >= count:
            break
    return flows


# -- the distiller ----------------------------------------------------------------


def distill_signatures(
    nf: NetworkFunction,
    result: CastanResult,
    config: CastanConfig | None = None,
    match_probes: int = 3,
    background_probes: int = 24,
    amplify: int = 48,
    report: DistillReport | None = None,
) -> SignatureSet:
    """Distill calibrated adversarial signatures from one analysis result.

    ``amplify`` extra matching flows are synthesized per candidate and
    *added to the priming workload* before calibration.  A small-budget
    analysis reconciles few havocs, so the raw workload may pile only a
    couple of flows into the adversarial bucket; the signature machinery
    can invert as many colliding keys as it likes, and amplification is
    exactly the attack the signature claims to recognise.  The amplified
    flow list is recorded as the signature's ``priming_flows``, so the
    published claim is self-contained.
    """
    config = config or CastanConfig()
    report = report if report is not None else DistillReport()
    rng = random.Random(config.seed + 9)
    gates, gate_labels = hint_gate_exprs(nf.workload_hints)
    stage_label = _dominant_stage(result)
    workload = _packet_flows(result)
    workload_set = set(workload)

    candidates = _hash_bucket_candidates(nf, result, gates, gate_labels)
    candidates += _field_cluster_candidates(nf, result, gates, gate_labels)
    report.candidates = len(candidates)

    signatures: list[AdversarialSignature] = []
    seen_predicates: set[Expr] = set()
    for candidate in candidates:
        if candidate.predicate in seen_predicates:
            continue
        seen_predicates.add(candidate.predicate)
        matching = synthesize_matching_flows(
            nf, candidate, gates, config, workload_set, match_probes + amplify, rng
        )
        if len(matching) < match_probes:
            report.dropped_no_probes += 1
            report.notes.append(f"no matching probes: {candidate.label}")
            continue
        # Surplus matching flows amplify the priming; the rest stay out of
        # it and serve as the independent probes.  When the candidate ranks
        # matching flows by weakness, probe the weakest — the published
        # threshold must hold for *every* matching packet.
        if candidate.weakness is not None:
            matching.sort(key=lambda f: candidate.weakness(flow_fields(f)))
            probes, extra = matching[-match_probes:], matching[:-match_probes]
        else:
            probes, extra = matching[:match_probes], matching[match_probes:]
        priming = workload + extra
        priming_set = workload_set | set(extra)
        background = _background_flows(nf, candidate, priming_set, background_probes, rng)
        if len(background) < background_probes:
            # The predicate is (nearly) implied by the traffic class — it
            # cannot separate adversarial from benign traffic.
            report.dropped_no_background += 1
            report.notes.append(f"no background probes: {candidate.label}")
            continue
        replay = PrimedReplay(nf, priming)
        match_costs = replay.probe_costs(probes)
        background_costs = replay.probe_costs(background)
        min_match = min(match_costs)
        max_background = max(background_costs)
        if min_match < max_background * 1.1 + 2:
            report.dropped_unseparated += 1
            report.notes.append(
                f"unseparated ({min_match} vs {max_background}): {candidate.label}"
            )
            continue
        threshold = max_background + (min_match - max_background) // 2
        report.calibrated += 1
        signatures.append(
            AdversarialSignature(
                nf_name=nf.name,
                kind=candidate.kind,
                label=candidate.label,
                predicate=candidate.predicate,
                threshold_cycles=threshold,
                baseline_cycles=max_background,
                matching_cycles=min_match,
                priming_flows=priming,
                evidence_packets=candidate.evidence_packets,
                stage_label=stage_label,
            )
        )

    from repro.service.store import canonical_result_digest

    return SignatureSet(
        nf_name=nf.name,
        nf_fingerprint=nf.fingerprint(),
        source_result_digest=canonical_result_digest(result),
        signatures=signatures,
    )
