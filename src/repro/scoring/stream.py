"""Packet streams for the scorer: pcap batches, columns, synthetic traffic.

The scorer consumes traffic in *batches*.  With numpy a batch is columnar —
one ``uint64`` array per packet field, the layout
:func:`~repro.symbex.expr.column_evaluator` executes predicates over
directly — and without numpy it degrades to a list of per-packet field
dicts for the scalar reference path.  Both representations carry exactly
the five canonical fields of :data:`~repro.scoring.signatures.FIELD_ORDER`,
so converting between them (:func:`columns_to_fields` /
:func:`fields_to_columns`) is lossless and order-preserving.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import BinaryIO, Iterator

from repro.net.packet import Packet, PacketParseError
from repro.net.pcap import PcapReader
from repro.nf.base import NetworkFunction
from repro.scoring.signatures import FIELD_ORDER
from repro.symbex.expr import HAVE_NUMPY

if HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - numpy ships with the [vector] extra
    _np = None


def packet_fields(packet: Packet) -> dict[str, int]:
    """The five canonical field values of one packet."""
    return {
        "src_ip": packet.src_ip,
        "dst_ip": packet.dst_ip,
        "src_port": packet.src_port,
        "dst_port": packet.dst_port,
        "protocol": packet.protocol,
    }


def packets_to_fields(packets: list[Packet]) -> list[dict[str, int]]:
    """Scalar batch representation: one field dict per packet."""
    return [packet_fields(packet) for packet in packets]


def fields_to_columns(fields: list[dict[str, int]]):
    """Columnar batch representation, or ``None`` without numpy."""
    if _np is None:
        return None
    return {
        name: _np.array([f[name] for f in fields], dtype=_np.uint64)
        for name in FIELD_ORDER
    }


def columns_to_fields(columns) -> list[dict[str, int]]:
    """Back from columns to per-packet field dicts (for the scalar path)."""
    size = len(columns[FIELD_ORDER[0]])
    return [
        {name: int(columns[name][row]) for name in FIELD_ORDER} for row in range(size)
    ]


def batch_flows(batch) -> list[tuple[int, int, int, int, int]]:
    """The 5-tuples of one batch (either representation), in packet order."""
    if isinstance(batch, list):
        return [tuple(f[name] for name in FIELD_ORDER) for f in batch]
    size = len(batch[FIELD_ORDER[0]])
    return [
        tuple(int(batch[name][row]) for name in FIELD_ORDER) for row in range(size)
    ]


def iter_pcap_batches(
    source: str | Path | BinaryIO, batch_size: int
) -> Iterator[list[Packet]]:
    """Parseable packets of a pcap capture, in batches of ``batch_size``.

    Unparseable frames are skipped (the NFs drop non-IPv4 traffic the same
    way); malformed *containers* still raise
    :class:`~repro.net.pcap.PcapFormatError` from the reader.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    batch: list[Packet] = []
    with PcapReader(source) as reader:
        for record in reader:
            try:
                batch.append(record.to_packet())
            except PacketParseError:
                continue
            if len(batch) >= batch_size:
                yield batch
                batch = []
    if batch:
        yield batch


def random_flow_columns(nf: NetworkFunction, size: int, rng: random.Random):
    """Random in-traffic-class packet field columns (uint64 arrays).

    Honours the NF's workload hints — source-prefix forcing, pinned VIP
    destination, protocol — so every lane passes the NF's preamble, the
    same traffic class the analysis searched.  Requires numpy.
    """
    hints = nf.workload_hints
    gen = _np.random.default_rng(rng.getrandbits(32))
    src_ip = gen.integers(0, 1 << 32, size=size, dtype=_np.uint64)
    if "src_ip_prefix" in hints:
        bits = hints.get("src_ip_prefix_bits", 8)
        host = (1 << (32 - bits)) - 1
        src_ip = (src_ip & _np.uint64(host)) | _np.uint64(hints["src_ip_prefix"])
    if "dst_ip" in hints:
        dst_ip = _np.full(size, hints["dst_ip"], dtype=_np.uint64)
    else:
        dst_ip = gen.integers(0, 1 << 32, size=size, dtype=_np.uint64)
    return {
        "src_ip": src_ip,
        "dst_ip": dst_ip,
        "src_port": gen.integers(1024, 1 << 16, size=size, dtype=_np.uint64),
        "dst_port": gen.integers(1, 1 << 16, size=size, dtype=_np.uint64),
        "protocol": _np.full(size, hints.get("protocol", 17), dtype=_np.uint64),
    }


def random_flow_fields(
    nf: NetworkFunction, size: int, rng: random.Random
) -> list[dict[str, int]]:
    """Scalar twin of :func:`random_flow_columns` (numpy-free).

    Draws from the same traffic class but not the same RNG stream —
    synthetic scalar and columnar streams are *statistically* alike, not
    lane-identical (differential tests convert one batch representation to
    the other instead of regenerating).
    """
    hints = nf.workload_hints
    fields = []
    for _ in range(size):
        src_ip = rng.getrandbits(32)
        if "src_ip_prefix" in hints:
            bits = hints.get("src_ip_prefix_bits", 8)
            host = (1 << (32 - bits)) - 1
            src_ip = (src_ip & host) | hints["src_ip_prefix"]
        fields.append(
            {
                "src_ip": src_ip,
                "dst_ip": hints.get("dst_ip", rng.getrandbits(32)),
                "src_port": 1024 + rng.randrange((1 << 16) - 1024),
                "dst_port": 1 + rng.randrange((1 << 16) - 1),
                "protocol": hints.get("protocol", 17),
            }
        )
    return fields


def synthetic_batches(
    nf: NetworkFunction, count: int, batch_size: int, seed: int = 0
) -> Iterator:
    """``count`` synthetic in-class packets in batches of ``batch_size``.

    Yields columnar batches with numpy, per-packet field-dict batches
    without — the two representations the scorer's vector and scalar entry
    points consume respectively.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    rng = random.Random(seed)
    remaining = count
    while remaining > 0:
        size = min(batch_size, remaining)
        remaining -= size
        if _np is not None:
            yield random_flow_columns(nf, size, rng)
        else:
            yield random_flow_fields(nf, size, rng)
