"""Adversarial signatures: predicates that recognise worst-case traffic.

A CASTAN run produces an *offline* artifact — the synthesized adversarial
workload.  An :class:`AdversarialSignature` turns that artifact into a
*deployable* one: a predicate over a packet 5-tuple (a mask/shift/compare
:class:`~repro.symbex.expr.Expr` tree, possibly routed through the
symbolically-unrolled flow hash) that is nonzero exactly for packets driving
the NF toward its synthesized worst case, plus the replay-calibrated cycle
threshold that the claim is held to.

Signatures serialize to canonical JSON with a versioned SHA-256 content
hash, mirroring the PR 8 result store's addressing discipline
(``repro.service.store``): a :class:`SignatureSet` is keyed by the NF
fingerprint and the canonical digest of the result it was distilled from,
so any change to the NF, the config, or the analysis output changes the
address.

>>> from repro.scoring.signatures import field_sym, signature_from_dict
>>> from repro.ir.instructions import CmpKind
>>> from repro.symbex.expr import Const, make_cmp
>>> pred = make_cmp(CmpKind.EQ, field_sym("dst_port"), Const(80))
>>> sig = AdversarialSignature(
...     nf_name="demo", kind="field-cluster", label="dst_port == 80",
...     predicate=pred, threshold_cycles=100, baseline_cycles=10)
>>> sig.matches({"src_ip": 1, "dst_ip": 2, "src_port": 3, "dst_port": 80, "protocol": 17})
True
>>> clone = signature_from_dict(sig.to_dict())
>>> clone.predicate is sig.predicate  # rebuilt predicates re-intern
True
>>> clone.content_hash() == sig.content_hash()
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.hashing.functions import FLOW_HASH_MASK, MASK32
from repro.ir.instructions import BinOpKind, CmpKind
from repro.net.packet import PacketField
from repro.symbex.expr import (
    Const,
    Expr,
    Sym,
    dag_evaluator,
    expr_from_dict,
    expr_to_dict,
    make_binop,
    make_cmp,
)

#: Version tag mixed into every signature content hash (store discipline:
#: bump on any change to the canonical form, so old persisted signatures
#: miss instead of being misread).
SIGNATURE_VERSION = "castan-signature-v1"

#: The canonical per-packet field symbols every signature predicate is
#: expressed over (single-packet namespace; the engine's ``pktN.*`` symbols
#: are renamed onto these during distillation).
FIELD_ORDER = ("src_ip", "dst_ip", "src_port", "dst_port", "protocol")

_FIELD_BITS = {f.field_name: f.bits for f in PacketField}


def field_sym(name: str) -> Sym:
    """The canonical symbol for one packet field (width per ``PacketField``)."""
    return Sym(name, bits=_FIELD_BITS[name])


def packet_symbol_map(packet_index: int) -> dict[str, Sym]:
    """Rename map from the engine's ``pkt<i>.*`` symbols to canonical fields."""
    return {f"pkt{packet_index}.{name}": field_sym(name) for name in FIELD_ORDER}


def flow_hash16_expr(key: Expr) -> Expr:
    """The Jenkins flow hash, unrolled symbolically over ``key``.

    Value-identical to :func:`repro.hashing.functions.flow_hash16` for every
    concrete key — ``tests/test_scoring.py`` pins the equivalence — so a
    bucket-collision predicate is an ordinary mask/shift/compare tree that
    both the scalar and the columnar evaluators execute natively.
    """
    m32 = Const(MASK32)
    h: Expr = Const(0)
    for byte_index in range(8):
        byte = make_binop(
            BinOpKind.AND,
            make_binop(BinOpKind.LSHR, key, Const(byte_index * 8)),
            Const(0xFF),
        )
        h = make_binop(BinOpKind.AND, make_binop(BinOpKind.ADD, h, byte), m32)
        shifted = make_binop(BinOpKind.AND, make_binop(BinOpKind.SHL, h, Const(10)), m32)
        h = make_binop(BinOpKind.AND, make_binop(BinOpKind.ADD, h, shifted), m32)
        h = make_binop(BinOpKind.XOR, h, make_binop(BinOpKind.LSHR, h, Const(6)))
    shifted = make_binop(BinOpKind.AND, make_binop(BinOpKind.SHL, h, Const(3)), m32)
    h = make_binop(BinOpKind.AND, make_binop(BinOpKind.ADD, h, shifted), m32)
    h = make_binop(BinOpKind.XOR, h, make_binop(BinOpKind.LSHR, h, Const(11)))
    shifted = make_binop(BinOpKind.AND, make_binop(BinOpKind.SHL, h, Const(15)), m32)
    h = make_binop(BinOpKind.AND, make_binop(BinOpKind.ADD, h, shifted), m32)
    return make_binop(
        BinOpKind.AND,
        make_binop(BinOpKind.XOR, h, make_binop(BinOpKind.LSHR, h, Const(16))),
        Const(FLOW_HASH_MASK),
    )


def conjoin(terms: list[Expr]) -> Expr:
    """AND a list of 0/1 condition expressions (empty list = always true)."""
    result: Expr = Const(1)
    for term in terms:
        result = make_binop(BinOpKind.AND, result, term) if result is not Const(1) else term
    return result if terms else Const(1)


@dataclass
class AdversarialSignature:
    """One distilled worst-case-traffic predicate plus its calibrated claim.

    ``predicate`` is nonzero exactly for matching 5-tuples.  The claim —
    held by the property-based soundness tests — is: after the NF is primed
    with ``priming_flows`` (the synthesized adversarial workload), a fresh
    matching probe packet costs at least ``threshold_cycles`` reference
    cycles, while traffic-class background probes stay below it
    (``baseline_cycles`` records the worst background probe seen during
    calibration).
    """

    nf_name: str
    kind: str  # "hash-bucket" | "cache-set" | "field-cluster"
    label: str
    predicate: Expr
    threshold_cycles: int
    baseline_cycles: int = 0
    matching_cycles: int = 0  # cheapest calibrated matching probe
    priming_flows: list[tuple[int, int, int, int, int]] = field(default_factory=list)
    evidence_packets: int = 0  # workload packets matching during distillation
    stage_label: str = ""  # dominant chain stage (empty for standalone NFs)

    def matches(self, fields: dict[str, int]) -> bool:
        """Scalar reference verdict for one packet's field dict.

        Runs through :func:`~repro.symbex.expr.dag_evaluator` — predicates
        route packed keys through the unrolled flow hash, whose shared
        rounds make a plain tree walk exponential.
        """
        return dag_evaluator(self.predicate)(fields) != 0

    def to_dict(self) -> dict:
        return {
            "version": SIGNATURE_VERSION,
            "nf": self.nf_name,
            "kind": self.kind,
            "label": self.label,
            "predicate": expr_to_dict(self.predicate),
            "threshold_cycles": self.threshold_cycles,
            "baseline_cycles": self.baseline_cycles,
            "matching_cycles": self.matching_cycles,
            "priming_flows": [list(flow) for flow in self.priming_flows],
            "evidence_packets": self.evidence_packets,
            "stage_label": self.stage_label,
        }

    def content_hash(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{SIGNATURE_VERSION}:{blob}".encode()).hexdigest()


def signature_from_dict(data: dict) -> AdversarialSignature:
    if data.get("version") != SIGNATURE_VERSION:
        raise ValueError(
            f"signature version {data.get('version')!r} != {SIGNATURE_VERSION!r}"
        )
    return AdversarialSignature(
        nf_name=data["nf"],
        kind=data["kind"],
        label=data["label"],
        predicate=expr_from_dict(data["predicate"]),
        threshold_cycles=int(data["threshold_cycles"]),
        baseline_cycles=int(data["baseline_cycles"]),
        matching_cycles=int(data.get("matching_cycles", 0)),
        priming_flows=[tuple(flow) for flow in data.get("priming_flows", [])],
        evidence_packets=int(data.get("evidence_packets", 0)),
        stage_label=data.get("stage_label", ""),
    )


@dataclass
class SignatureSet:
    """Every signature distilled from one CASTAN result."""

    nf_name: str
    nf_fingerprint: str
    source_result_digest: str  # canonical_result_digest of the distilled run
    signatures: list[AdversarialSignature] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.signatures)

    def __iter__(self):
        return iter(self.signatures)

    @property
    def labels(self) -> list[str]:
        return [signature.label for signature in self.signatures]

    def to_dict(self) -> dict:
        return {
            "version": SIGNATURE_VERSION,
            "nf": self.nf_name,
            "nf_fingerprint": self.nf_fingerprint,
            "source_result_digest": self.source_result_digest,
            "signatures": [signature.to_dict() for signature in self.signatures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def content_hash(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{SIGNATURE_VERSION}:{blob}".encode()).hexdigest()

    def store_key(self) -> str:
        """PR 8 store-style content address of this set's *inputs*.

        A function of the NF fingerprint and the distilled result's
        canonical digest — the same derivation shape as
        :func:`repro.service.store.result_key` — so a persisted set is
        invalidated by exactly the changes that invalidate its source.
        """
        payload = f"{SIGNATURE_VERSION}:{self.nf_fingerprint}:{self.source_result_digest}"
        return hashlib.sha256(payload.encode()).hexdigest()


def signature_set_from_dict(data: dict) -> SignatureSet:
    if data.get("version") != SIGNATURE_VERSION:
        raise ValueError(
            f"signature set version {data.get('version')!r} != {SIGNATURE_VERSION!r}"
        )
    return SignatureSet(
        nf_name=data["nf"],
        nf_fingerprint=data["nf_fingerprint"],
        source_result_digest=data["source_result_digest"],
        signatures=[signature_from_dict(entry) for entry in data["signatures"]],
    )


def signature_set_from_json(text: str) -> SignatureSet:
    return signature_set_from_dict(json.loads(text))


def hint_gate_exprs(workload_hints: dict[str, int]) -> tuple[list[Expr], list[str]]:
    """Traffic-class gates implied by an NF's workload hints.

    Returns parallel lists of gate expressions and human-readable labels;
    the gates are ANDed into every distilled predicate so synthesized
    matching packets pass the NF's preamble (protocol checks, internal
    prefix, VIP destination).
    """
    gates: list[Expr] = []
    labels: list[str] = []
    if "protocol" in workload_hints:
        gates.append(
            make_cmp(CmpKind.EQ, field_sym("protocol"), Const(workload_hints["protocol"]))
        )
        labels.append(f"protocol == {workload_hints['protocol']}")
    if "src_ip_prefix" in workload_hints:
        bits = workload_hints.get("src_ip_prefix_bits", 8)
        shift = 32 - bits
        prefix = workload_hints["src_ip_prefix"] >> shift
        gates.append(
            make_cmp(
                CmpKind.EQ,
                make_binop(BinOpKind.LSHR, field_sym("src_ip"), Const(shift)),
                Const(prefix),
            )
        )
        labels.append(f"src_ip >> {shift} == 0x{prefix:x}")
    if "dst_ip" in workload_hints:
        gates.append(make_cmp(CmpKind.EQ, field_sym("dst_ip"), Const(workload_hints["dst_ip"])))
        labels.append(f"dst_ip == 0x{workload_hints['dst_ip']:08x}")
    return gates, labels
