"""Block compiler for the symbolic engine (``exec_mode="compiled"``).

The interpreter in :mod:`repro.symbex.engine` dispatches one NFIL
instruction per Python call chain (instruction fetch → isinstance chain →
operand resolution → per-instruction cycle charge).  This module translates
each IR basic block — once per process — into a list of specialized *steps*
that fuse the straight-line work:

* runs of ``BinaryOp``/``Compare``/``Select`` become one **fused step**: a
  tuple of micro-closures with operands resolved at compile time (register
  reads become precomputed dict keys, constant operands are pre-folded into
  interned :class:`~repro.symbex.expr.Const` nodes, constant-constant
  operations are folded away entirely), the run's cycle charges summed into
  a single ``current_cost`` update, and register-file copy-on-write
  ownership acquired once for the whole run;
* runs of ``Load``/``Store`` become one **memory step** that replays every
  access, in order, through a *single*
  :meth:`~repro.cache.model.CacheModel.on_access_batch` call;
* everything else (calls, havocs, branches, jumps, returns) becomes an
  **exact step** that syncs ``frame.index`` and delegates to the
  interpreter's own handler, so control-flow semantics (forking, loop-head
  accounting, packet boundaries) are shared with ``exec_mode="interp"`` by
  construction.

The fused micro-closures carry the concolic constant short-circuit: when
every operand is concrete they combine machine integers through
:data:`~repro.symbex.expr.BINOP_FUNCS` / :data:`~repro.symbex.expr.CMP_FUNCS`
and intern only the resulting constant — ``make_binop``'s simplification
ladder never runs and no intermediate node is created.

Compiled blocks live in a **process-local cache** keyed by the identity of
``(module, cycle_costs)`` plus the (function, block) name pair.  Closures
never travel across process boundaries: the engine drops its compiled table
on pickling and recompiles on load, so the PR 3 compact pickle path and
shard determinism are untouched.

Caveat (documented, not load-bearing): a read of an undefined register
raises a bare ``KeyError`` from a fused step instead of the interpreter's
decorated message — both surface as the same crash at the API boundary.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable

from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Compare,
    Instruction,
    Load,
    Select,
    Store,
)
from repro.ir.module import BasicBlock, MemoryRegion, Module
from repro.ir.values import Constant, Register
from repro.perf.cycles import CycleCosts
from repro.symbex.expr import (
    BINOP_FUNCS,
    CMP_FUNCS,
    Const,
    Expr,
    make_binop,
    make_cmp,
    make_select,
    register_cache_clear_hook,
)
from repro.symbex.state import StateStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.symbex.engine import SymbolicEngine
    from repro.symbex.state import ExecutionState

#: Step return codes consumed by the engine's compiled driver loop.
CONTINUE = 0  # proceed to the next step of the current block
REFETCH = 1  # control transfer happened: re-dispatch from the frame
STOP = 2  # the state's turn is over (fork, or terminal status)

StepFn = Callable[["SymbolicEngine", "ExecutionState", list], int]


class AccessPlan:
    """One memory access of a compiled memory step, operands pre-resolved."""

    __slots__ = ("is_write", "region", "index_reg", "index_const", "value_reg",
                 "value_const", "dest")

    def __init__(
        self,
        is_write: bool,
        region: MemoryRegion,
        index_reg: str | None,
        index_const: Expr | None,
        value_reg: str | None = None,
        value_const: Expr | None = None,
        dest: str | None = None,
    ) -> None:
        self.is_write = is_write
        self.region = region
        self.index_reg = index_reg
        self.index_const = index_const
        self.value_reg = value_reg
        self.value_const = value_const
        self.dest = dest


class CompiledBlock:
    """The compiled form of one basic block."""

    __slots__ = ("steps", "resume")

    def __init__(self, steps: list[tuple[int, StepFn]], resume: dict[int, int]) -> None:
        #: ``(instruction_count, step_fn)`` pairs, in execution order.
        self.steps = steps
        #: instruction index -> step position, for resuming after calls.
        self.resume = resume


# -- micro-op compilation ----------------------------------------------------------


def _operand_plan(value) -> tuple[str | None, Expr | None]:
    """Resolve an IR operand at compile time: (register name, constant expr)."""
    if isinstance(value, Constant):
        return None, Const(value.value)
    if isinstance(value, Register):
        return value.name, None
    raise TypeError(f"unsupported operand {value!r}")


def _compile_binary_like(instruction, kind, fold, make):
    """Micro-op for a two-operand instruction (``BinaryOp`` or ``Compare``).

    ``kind`` is the op/predicate passed to the expression constructor
    ``make``; ``fold`` is its concrete integer implementation.  One closure
    per operand shape, with the concolic short-circuit: two concrete
    operands combine through ``fold`` and intern only the result constant.
    """
    dest = instruction.dest.name
    lhs_reg, lhs_const = _operand_plan(instruction.lhs)
    rhs_reg, rhs_const = _operand_plan(instruction.rhs)
    if lhs_reg is None and rhs_reg is None:
        result = make(kind, lhs_const, rhs_const)  # pre-folded at compile time

        def op(regs, _d=dest, _v=result):
            regs[_d] = _v

    elif rhs_reg is None:

        def op(regs, _d=dest, _a=lhs_reg, _re=rhs_const, _rv=rhs_const.value,
               _f=fold, _k=kind, _C=Const, _mk=make):
            x = regs[_a]
            if x.__class__ is _C:
                regs[_d] = _C(_f(x.value, _rv))
            else:
                regs[_d] = _mk(_k, x, _re)

    elif lhs_reg is None:

        def op(regs, _d=dest, _b=rhs_reg, _le=lhs_const, _lv=lhs_const.value,
               _f=fold, _k=kind, _C=Const, _mk=make):
            y = regs[_b]
            if y.__class__ is _C:
                regs[_d] = _C(_f(_lv, y.value))
            else:
                regs[_d] = _mk(_k, _le, y)

    else:

        def op(regs, _d=dest, _a=lhs_reg, _b=rhs_reg, _f=fold, _k=kind,
               _C=Const, _mk=make):
            x = regs[_a]
            y = regs[_b]
            if x.__class__ is _C and y.__class__ is _C:
                regs[_d] = _C(_f(x.value, y.value))
            else:
                regs[_d] = _mk(_k, x, y)

    return op


def _compile_binop(instruction: BinaryOp):
    return _compile_binary_like(instruction, instruction.op, BINOP_FUNCS[instruction.op], make_binop)


def _compile_compare(instruction: Compare):
    return _compile_binary_like(instruction, instruction.pred, CMP_FUNCS[instruction.pred], make_cmp)


def _compile_select(instruction: Select):
    dest = instruction.dest.name
    cond_reg, cond_const = _operand_plan(instruction.cond)
    t_reg, t_const = _operand_plan(instruction.if_true)
    f_reg, f_const = _operand_plan(instruction.if_false)

    # Operands are read in the interpreter's order (cond, if_true, if_false)
    # so undefined-register failures surface at the same point.
    def op(regs, _d=dest, _cr=cond_reg, _cc=cond_const, _tr=t_reg, _tc=t_const,
           _fr=f_reg, _fc=f_const, _C=Const, _mk=make_select):
        cond = regs[_cr] if _cr is not None else _cc
        if_true = regs[_tr] if _tr is not None else _tc
        if_false = regs[_fr] if _fr is not None else _fc
        if cond.__class__ is _C:
            regs[_d] = if_true if cond.value else if_false
        else:
            regs[_d] = _mk(cond, if_true, if_false)

    return op


# -- step construction -------------------------------------------------------------


def _make_fused_step(ops: list, cycles: int, next_index: int) -> tuple[int, StepFn]:
    n = len(ops)
    ops = tuple(ops)

    def step(engine, state, collected, _ops=ops, _n=n, _c=cycles, _ni=next_index):
        frames = state._frames
        frame = frames[-1]
        if not state._frames_owned[-1]:
            frame = frame.copy()
            frames[-1] = frame
            state._frames_owned[-1] = True
        if frame.registers_shared:
            frame.registers = dict(frame.registers)
            frame.registers_shared = False
        regs = frame.registers
        for op in _ops:
            op(regs)
        state.current_cost += _c
        state.instructions_retired += _n
        stats = engine._stats
        if stats is not None:
            stats.instructions_executed += _n
        frame.index = _ni
        return 0

    return n, step


def _make_memory_step(plans: list[AccessPlan], next_index: int) -> tuple[int, StepFn]:
    n = len(plans)
    plans = tuple(plans)

    def step(engine, state, collected, _plans=plans, _ni=next_index):
        if engine._execute_memory_group(state, _plans):
            state.top_frame.index = _ni
            return 0
        return 1  # access error: terminal status is set, re-dispatch exits

    return n, step


def _make_exact_step(instruction: Instruction, index: int) -> tuple[int, StepFn]:
    if isinstance(instruction, Branch):

        def step(engine, state, collected, _i=instruction, _idx=index):
            state.instructions_retired += 1
            stats = engine._stats
            if stats is not None:
                stats.instructions_executed += 1
            state.top_frame.index = _idx
            finished = engine._execute_branch(state, _i, collected)
            return 2 if finished else 1

    else:

        def step(engine, state, collected, _i=instruction, _idx=index):
            state.instructions_retired += 1
            stats = engine._stats
            if stats is not None:
                stats.instructions_executed += 1
            state.top_frame.index = _idx
            engine._execute_simple(state, _i)
            return 1

    return 1, step


def _fall_off_step(engine, state, collected):
    state.status = StateStatus.ERROR
    state.error_message = "fell off the end of a basic block"
    return 1


def _compile_block(module: Module, block: BasicBlock, cycle_costs: CycleCosts) -> CompiledBlock:
    steps: list[tuple[int, StepFn]] = []
    resume: dict[int, int] = {}

    pending_ops: list = []
    pending_cycles = 0
    pending_mem: list[AccessPlan] = []
    run_start = 0

    def flush(next_index: int) -> None:
        nonlocal pending_ops, pending_cycles, pending_mem
        if pending_ops:
            resume[run_start] = len(steps)
            steps.append(_make_fused_step(pending_ops, pending_cycles, next_index))
            pending_ops = []
            pending_cycles = 0
        elif pending_mem:
            resume[run_start] = len(steps)
            steps.append(_make_memory_step(pending_mem, next_index))
            pending_mem = []

    for index, instruction in enumerate(block.instructions):
        if isinstance(instruction, (BinaryOp, Compare, Select)):
            if pending_mem:
                flush(index)
            if not pending_ops:
                run_start = index
            if isinstance(instruction, BinaryOp):
                pending_ops.append(_compile_binop(instruction))
            elif isinstance(instruction, Compare):
                pending_ops.append(_compile_compare(instruction))
            else:
                pending_ops.append(_compile_select(instruction))
            pending_cycles += cycle_costs.instruction_cost(instruction)
            continue
        if isinstance(instruction, (Load, Store)):
            if pending_ops:
                flush(index)
            try:
                region = module.get_region(instruction.region)
            except Exception:
                # Unknown region: let the interpreter's handler raise at the
                # exact execution point instead of at compile time.
                flush(index)
                resume[index] = len(steps)
                steps.append(_make_exact_step(instruction, index))
                run_start = index + 1
                continue
            if not pending_mem:
                run_start = index
            if isinstance(instruction, Load):
                index_reg, index_const = _operand_plan(instruction.index)
                pending_mem.append(
                    AccessPlan(False, region, index_reg, index_const,
                               dest=instruction.dest.name)
                )
            else:
                index_reg, index_const = _operand_plan(instruction.index)
                value_reg, value_const = _operand_plan(instruction.value)
                pending_mem.append(
                    AccessPlan(True, region, index_reg, index_const,
                               value_reg=value_reg, value_const=value_const)
                )
            continue
        # Control flow / calls / havocs / unknown: exact singleton step.
        flush(index)
        resume[index] = len(steps)
        steps.append(_make_exact_step(instruction, index))
        run_start = index + 1

    end = len(block.instructions)
    flush(end)
    # Trailing guard: reached only when the block lacks a terminator (or is
    # empty); mirrors the interpreter's fell-off-the-end error.  It counts
    # no instruction, matching the interpreter's budget-check ordering.
    resume[end] = len(steps)
    steps.append((0, _fall_off_step))
    return CompiledBlock(steps, resume)


# -- process-local compiled-module cache --------------------------------------------

#: (id(module), id(cycle_costs)) -> {(function, block): CompiledBlock}.
#: Keyed on object identity; entries are evicted when either object dies, so
#: recycled ids can never alias.  Never pickled — workers recompile.
_MODULE_CACHE: dict[tuple[int, int], dict[tuple[str, str], CompiledBlock]] = {}

# Compiled steps capture pre-folded interned constants; they must not
# outlive an intern-table clear, or a long-running driver would mix two
# expression generations (identity-is-structural-equality would break).
register_cache_clear_hook(_MODULE_CACHE.clear)


def _evict(key: tuple[int, int]) -> None:
    _MODULE_CACHE.pop(key, None)


def compiled_module(
    module: Module, cycle_costs: CycleCosts
) -> dict[tuple[str, str], CompiledBlock]:
    """Compiled blocks for every (function, block) of ``module`` (cached)."""
    key = (id(module), id(cycle_costs))
    cached = _MODULE_CACHE.get(key)
    if cached is None:
        cached = {}
        for function_name, function in module.functions.items():
            for block in function.blocks:
                cached[(function_name, block.name)] = _compile_block(
                    module, block, cycle_costs
                )
        _MODULE_CACHE[key] = cached
        weakref.finalize(module, _evict, key)
        weakref.finalize(cycle_costs, _evict, key)
    return cached
