"""Symbolic execution engine (the KLEE stand-in).

The engine interprets NFIL with symbolic packet fields, forks execution
states at branches on symbolic conditions, keeps per-state path constraints
and cycle-cost estimates, and delegates state selection to a pluggable
searcher — CASTAN's searcher maximises current + potential cost (§3.3–3.4).
Memory accesses are hooked by a pluggable cache model, and hash functions
annotated with ``castan_havoc`` are havoced for later rainbow-table
reconciliation (§3.5).

Public names are re-exported lazily to keep the cache/symbex packages free
of import cycles; ``from repro.symbex import SymbolicEngine`` works as usual.
"""

from repro._lazy import lazy_exports

__all__ = [
    "BinExpr",
    "BreadthFirstSearcher",
    "CastanSearcher",
    "CmpExpr",
    "CompiledBlock",
    "Const",
    "DepthFirstSearcher",
    "ExecutionState",
    "Expr",
    "Frame",
    "HavocRecord",
    "Model",
    "RandomSearcher",
    "ReconciliationOutcome",
    "RoundStats",
    "Searcher",
    "SelectExpr",
    "ShadowAssignment",
    "Solver",
    "SolverResult",
    "StateStatus",
    "Sym",
    "SymbexStats",
    "SymbolicEngine",
    "compiled_evaluator",
    "compiled_module",
    "evaluate",
    "expr_and",
    "expr_eq",
    "expr_ne",
    "make_searcher",
    "reconcile_havocs",
    "reduce_concrete",
    "reduce_expr",
    "run_beam_search",
    "select_beam",
    "simplify",
    "symbols_of",
]

_EXPORTS = {
    "BinExpr": (".expr", "BinExpr"),
    "CmpExpr": (".expr", "CmpExpr"),
    "Const": (".expr", "Const"),
    "Expr": (".expr", "Expr"),
    "SelectExpr": (".expr", "SelectExpr"),
    "Sym": (".expr", "Sym"),
    "compiled_evaluator": (".expr", "compiled_evaluator"),
    "evaluate": (".expr", "evaluate"),
    "expr_and": (".expr", "expr_and"),
    "expr_eq": (".expr", "expr_eq"),
    "expr_ne": (".expr", "expr_ne"),
    "reduce_concrete": (".expr", "reduce_concrete"),
    "reduce_expr": (".expr", "reduce_expr"),
    "simplify": (".expr", "simplify"),
    "symbols_of": (".expr", "symbols_of"),
    "CompiledBlock": (".blockc", "CompiledBlock"),
    "compiled_module": (".blockc", "compiled_module"),
    "Model": (".solver", "Model"),
    "Solver": (".solver", "Solver"),
    "SolverResult": (".solver", "SolverResult"),
    "ExecutionState": (".state", "ExecutionState"),
    "Frame": (".state", "Frame"),
    "ShadowAssignment": (".state", "ShadowAssignment"),
    "StateStatus": (".state", "StateStatus"),
    "SymbexStats": (".engine", "SymbexStats"),
    "SymbolicEngine": (".engine", "SymbolicEngine"),
    "BreadthFirstSearcher": (".searcher", "BreadthFirstSearcher"),
    "CastanSearcher": (".searcher", "CastanSearcher"),
    "DepthFirstSearcher": (".searcher", "DepthFirstSearcher"),
    "RandomSearcher": (".searcher", "RandomSearcher"),
    "Searcher": (".searcher", "Searcher"),
    "make_searcher": (".searcher", "make_searcher"),
    "select_beam": (".searcher", "select_beam"),
    "RoundStats": (".batch", "RoundStats"),
    "run_beam_search": (".batch", "run_beam_search"),
    "HavocRecord": (".havoc", "HavocRecord"),
    "ReconciliationOutcome": (".havoc", "ReconciliationOutcome"),
    "reconcile_havocs": (".havoc", "reconcile_havocs"),
}

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
