"""Havoc records and rainbow-table reconciliation (§3.5).

During analysis every ``castan_havoc`` annotation produces a
:class:`HavocRecord`: the symbolic expression of the hash *input* (the key),
the name of the hash function that was suppressed, and the fresh symbol that
replaced its output.  After the highest-cost state is selected and solved,
:func:`reconcile_havocs` performs the paper's three-step reconciliation:

1. take the hash value the solver chose for the havoc symbol;
2. invert it with a rainbow table (brute-force augmented) to get candidate
   keys;
3. ask the solver whether a candidate key is compatible with the packet
   constraints; if so, pin the key and the (now genuine) hash value.

Havocs that cannot be reconciled are reported as such — the workload is
still emitted (with the unconstrained hash value), matching the paper's
partially-reconciled NAT results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.symbex.expr import BinExpr, BinOpKind, Const, Expr, Sym, evaluate, expr_eq, reduce_expr
from repro.symbex.incremental import replay_context

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hashing.rainbow import RainbowTable
    from repro.symbex.solver import Model, Solver


@dataclass
class HavocRecord:
    """One suppressed hash-function invocation."""

    symbol: Sym
    key_expr: Expr
    hash_function: str
    args: list[Expr] = field(default_factory=list)
    packet_index: int = 0

    def __str__(self) -> str:
        return (
            f"havoc {self.symbol.name} = {self.hash_function}(key={self.key_expr}) "
            f"[packet {self.packet_index}]"
        )


@dataclass
class ReconciliationOutcome:
    """Result of reconciling the havocs of one selected path."""

    model: "Model"
    reconciled: list[HavocRecord] = field(default_factory=list)
    failed: list[HavocRecord] = field(default_factory=list)
    attempts: int = 0

    @property
    def total(self) -> int:
        return len(self.reconciled) + len(self.failed)

    @property
    def success_rate(self) -> float:
        return len(self.reconciled) / self.total if self.total else 1.0


#: Sentinel returned by :func:`_decompose_key_pin` when the pin is
#: unsatisfiable on its own (candidate bits outside every field).
_PIN_CONFLICT = object()


def _decompose_key_pin(key_expr: Expr, value: int) -> "dict[str, int] | None | object":
    """Solve ``key_expr == value`` exactly when the key packs disjoint fields.

    Flow keys are built as ORs of non-overlapping shifted symbols (plus
    constant tag bits), so the equation has at most one solution: each
    field must equal its slice of ``value``.  Returns that unique
    ``{symbol name: field value}`` assignment, ``_PIN_CONFLICT`` when the
    bits of ``value`` outside the symbol fields differ from the constant
    contribution (no assignment can satisfy the pin), or ``None`` when the
    expression does not have the disjoint-OR shape (no claim made).
    """
    terms: list[Expr] = []
    stack = [key_expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinExpr) and node.op is BinOpKind.OR:
            stack.append(node.lhs)
            stack.append(node.rhs)
        else:
            terms.append(node)
    fields: dict[str, int] = {}
    covered = 0
    const_bits = 0
    for term in terms:
        if isinstance(term, Const):
            if term.value & covered:
                return None
            const_bits |= term.value
            continue
        if isinstance(term, Sym):
            sym, shift = term, 0
        elif (
            isinstance(term, BinExpr)
            and term.op is BinOpKind.SHL
            and isinstance(term.lhs, Sym)
            and isinstance(term.rhs, Const)
        ):
            sym, shift = term.lhs, term.rhs.value
        else:
            return None
        mask = sym.mask << shift
        if mask & (covered | const_bits):
            return None
        if sym.name in fields:
            return None
        covered |= mask
        fields[sym.name] = (value >> shift) & sym.mask
    if (value & ~covered) != const_bits:
        return _PIN_CONFLICT
    return fields


def reconcile_havocs(
    records: list[HavocRecord],
    constraints: list[Expr],
    model: "Model",
    solver: "Solver",
    rainbow_tables: dict[str, "RainbowTable"],
    hash_functions: dict[str, Callable[[int], int]],
    defaults: dict[str, int] | None = None,
    max_candidates_per_havoc: int = 16,
) -> ReconciliationOutcome:
    """Reconcile every havoc in ``records`` against the path constraints.

    ``rainbow_tables`` maps hash-function name to the table used for
    inversion; ``hash_functions`` maps the same names to concrete Python
    implementations used to re-verify candidate keys.  Reconciliation is
    incremental: constraints pinned for earlier havocs stay in force while
    later ones are reconciled, so related keys (e.g. the NAT's two entries
    per flow) are handled consistently — and may legitimately fail, as in
    the paper.
    """
    outcome = ReconciliationOutcome(model=model.copy())
    working_constraints = list(constraints)
    # Candidate pretest state: the incremental context's propagated fixpoint
    # pins symbols the path constraints fully determine, and ``pinned``
    # accumulates the field values implied by accepted key pins (which plain
    # propagation cannot extract from a packed equality).  Both are *implied*
    # facts, so any candidate contradicting them is definitely infeasible —
    # the full check below would come back non-sat — and can be skipped
    # without changing which candidate gets accepted or what model it yields.
    context = replay_context(solver, working_constraints)
    pinned: dict[str, int] = dict(context.pinned_assignment())

    for record in records:
        table = rainbow_tables.get(record.hash_function)
        hash_fn = hash_functions.get(record.hash_function)
        if table is None or hash_fn is None:
            outcome.failed.append(record)
            continue

        desired_hash = outcome.model.get(record.symbol.name, 0)
        candidate_keys = list(table.invert(desired_hash, limit=max_candidates_per_havoc))
        reconciled = False
        for candidate_key in candidate_keys:
            outcome.attempts += 1
            actual_hash = hash_fn(candidate_key)
            if actual_hash != desired_hash:
                # Rainbow chains can produce false positives; skip them.
                continue
            fields = _decompose_key_pin(record.key_expr, candidate_key)
            if fields is _PIN_CONFLICT:
                # The pin alone is unsatisfiable; the solver would agree.
                continue
            if isinstance(fields, dict):
                if any(pinned.get(name, value) != value for name, value in fields.items()):
                    continue  # contradicts an implied pin: definitely infeasible
                trial_assignment = dict(pinned)
                trial_assignment.update(fields)
                trial_assignment[record.symbol.name] = desired_hash
                # A constraint that reduces to literal false under the implied
                # assignment is violated in every model of the trial set.
                if any(
                    isinstance(r, Const) and r.value == 0
                    for r in (
                        reduce_expr(c, trial_assignment) for c in working_constraints
                    )
                ):
                    continue
            trial_constraints = working_constraints + [
                expr_eq(record.key_expr, Const(candidate_key)),
                expr_eq(record.symbol, Const(desired_hash)),
            ]
            result = solver.check(trial_constraints, defaults=defaults)
            if result.is_sat:
                working_constraints = trial_constraints
                outcome.model = result.model
                outcome.reconciled.append(record)
                reconciled = True
                context.add(trial_constraints[-2])
                context.add(trial_constraints[-1])
                pinned.update(context.pinned_assignment())
                if isinstance(fields, dict):
                    pinned.update(fields)
                pinned[record.symbol.name] = desired_hash
                break
        if not reconciled:
            outcome.failed.append(record)

    # Keep the model consistent with any constraints pinned along the way.
    final = solver.check(working_constraints, defaults=defaults)
    if final.is_sat:
        outcome.model = final.model
    return outcome


def havoc_hash_consistency(
    records: list[HavocRecord],
    model: "Model",
    hash_functions: dict[str, Callable[[int], int]],
) -> dict[str, bool]:
    """For each havoc symbol, does hash(key under model) equal its model value?

    Used by tests and by the metrics output to report which havocs were
    genuinely reconciled end-to-end.
    """
    consistency: dict[str, bool] = {}
    for record in records:
        hash_fn = hash_functions.get(record.hash_function)
        if hash_fn is None:
            consistency[record.symbol.name] = False
            continue
        try:
            key_value = evaluate(record.key_expr, model.values)
        except KeyError:
            consistency[record.symbol.name] = False
            continue
        consistency[record.symbol.name] = hash_fn(key_value) == model.get(record.symbol.name, 0)
    return consistency
