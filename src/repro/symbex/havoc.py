"""Havoc records and rainbow-table reconciliation (§3.5).

During analysis every ``castan_havoc`` annotation produces a
:class:`HavocRecord`: the symbolic expression of the hash *input* (the key),
the name of the hash function that was suppressed, and the fresh symbol that
replaced its output.  After the highest-cost state is selected and solved,
:func:`reconcile_havocs` performs the paper's three-step reconciliation:

1. take the hash value the solver chose for the havoc symbol;
2. invert it with a rainbow table (brute-force augmented) to get candidate
   keys;
3. ask the solver whether a candidate key is compatible with the packet
   constraints; if so, pin the key and the (now genuine) hash value.

Havocs that cannot be reconciled are reported as such — the workload is
still emitted (with the unconstrained hash value), matching the paper's
partially-reconciled NAT results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.symbex.expr import Const, Expr, Sym, evaluate, expr_eq

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hashing.rainbow import RainbowTable
    from repro.symbex.solver import Model, Solver


@dataclass
class HavocRecord:
    """One suppressed hash-function invocation."""

    symbol: Sym
    key_expr: Expr
    hash_function: str
    args: list[Expr] = field(default_factory=list)
    packet_index: int = 0

    def __str__(self) -> str:
        return (
            f"havoc {self.symbol.name} = {self.hash_function}(key={self.key_expr}) "
            f"[packet {self.packet_index}]"
        )


@dataclass
class ReconciliationOutcome:
    """Result of reconciling the havocs of one selected path."""

    model: "Model"
    reconciled: list[HavocRecord] = field(default_factory=list)
    failed: list[HavocRecord] = field(default_factory=list)
    attempts: int = 0

    @property
    def total(self) -> int:
        return len(self.reconciled) + len(self.failed)

    @property
    def success_rate(self) -> float:
        return len(self.reconciled) / self.total if self.total else 1.0


def reconcile_havocs(
    records: list[HavocRecord],
    constraints: list[Expr],
    model: "Model",
    solver: "Solver",
    rainbow_tables: dict[str, "RainbowTable"],
    hash_functions: dict[str, Callable[[int], int]],
    defaults: dict[str, int] | None = None,
    max_candidates_per_havoc: int = 16,
) -> ReconciliationOutcome:
    """Reconcile every havoc in ``records`` against the path constraints.

    ``rainbow_tables`` maps hash-function name to the table used for
    inversion; ``hash_functions`` maps the same names to concrete Python
    implementations used to re-verify candidate keys.  Reconciliation is
    incremental: constraints pinned for earlier havocs stay in force while
    later ones are reconciled, so related keys (e.g. the NAT's two entries
    per flow) are handled consistently — and may legitimately fail, as in
    the paper.
    """
    outcome = ReconciliationOutcome(model=model.copy())
    working_constraints = list(constraints)

    for record in records:
        table = rainbow_tables.get(record.hash_function)
        hash_fn = hash_functions.get(record.hash_function)
        if table is None or hash_fn is None:
            outcome.failed.append(record)
            continue

        desired_hash = outcome.model.get(record.symbol.name, 0)
        candidate_keys = list(table.invert(desired_hash, limit=max_candidates_per_havoc))
        reconciled = False
        for candidate_key in candidate_keys:
            outcome.attempts += 1
            actual_hash = hash_fn(candidate_key)
            if actual_hash != desired_hash:
                # Rainbow chains can produce false positives; skip them.
                continue
            trial_constraints = working_constraints + [
                expr_eq(record.key_expr, Const(candidate_key)),
                expr_eq(record.symbol, Const(desired_hash)),
            ]
            result = solver.check(trial_constraints, defaults=defaults)
            if result.is_sat:
                working_constraints = trial_constraints
                outcome.model = result.model
                outcome.reconciled.append(record)
                reconciled = True
                break
        if not reconciled:
            outcome.failed.append(record)

    # Keep the model consistent with any constraints pinned along the way.
    final = solver.check(working_constraints, defaults=defaults)
    if final.is_sat:
        outcome.model = final.model
    return outcome


def havoc_hash_consistency(
    records: list[HavocRecord],
    model: "Model",
    hash_functions: dict[str, Callable[[int], int]],
) -> dict[str, bool]:
    """For each havoc symbol, does hash(key under model) equal its model value?

    Used by tests and by the metrics output to report which havocs were
    genuinely reconciled end-to-end.
    """
    consistency: dict[str, bool] = {}
    for record in records:
        hash_fn = hash_functions.get(record.hash_function)
        if hash_fn is None:
            consistency[record.symbol.name] = False
            continue
        try:
            key_value = evaluate(record.key_expr, model.values)
        except KeyError:
            consistency[record.symbol.name] = False
            continue
        consistency[record.symbol.name] = hash_fn(key_value) == model.get(record.symbol.name, 0)
    return consistency
