"""The symbolic execution engine: NFIL interpretation with forking states.

The engine executes the NF's entry function once per symbolic packet,
threading NF state (memory regions) across packets within one execution
state.  Branches on symbolic conditions fork; loads and stores with
symbolic indices are concretized by the pluggable cache model; hash
functions annotated with ``castan_havoc`` are suppressed and havoced.  The
caller supplies a :class:`~repro.symbex.searcher.Searcher` that decides
which pending state to explore next — CASTAN's searcher maximises
current + potential cost (§3.3–3.4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cfg.costs import CostAnnotation
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Call,
    Compare,
    Havoc,
    Instruction,
    Jump,
    Load,
    Return,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Constant, Register, Value
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS
from repro.symbex.blockc import compiled_module
from repro.symbex.expr import (
    Const,
    Expr,
    Sym,
    compiled_evaluator,
    evaluate,
    expr_eq,
    expr_ne,
    expr_not,
    lockstep_evaluate,
    make_binop,
    make_cmp,
    make_select,
    symbols_of,
)
from repro.symbex.havoc import HavocRecord
from repro.symbex.incremental import CONTEXT_STATS, SolverContext
from repro.symbex.searcher import Searcher
from repro.symbex.solver import Solver
from repro.symbex.state import ExecutionState, Frame, ShadowAssignment, StateStatus

#: Engine execution modes: "compiled" runs block-compiled steps with the
#: concolic fast path; "interp" is the reference per-instruction
#: interpreter; "vector" adds columnar many-states stepping on top of the
#: compiled tier (degrading to it when numpy is unavailable).  Outputs are
#: byte-identical across all three.
EXEC_MODES = ("compiled", "interp", "vector")

#: Bound on the run-wide shadow-evaluation memo (cleared when exceeded).
_SHADOW_MEMO_LIMIT = 1 << 16

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid a package-level import cycle
    from repro.cache.model import CacheModel

_LOOP_HEAD_PREFIXES = ("while.cond", "for.cond")


def _drain_best_pending(searcher: Searcher, limit: int | None) -> list[ExecutionState]:
    """Drain ``searcher`` and keep the top-``limit`` states by best-state key.

    ``limit=None`` keeps everything (the beam scheduler treats the report as
    its live frontier, so truncation would silently drop search states).
    The stable descending sort preserves searcher pop order among states with
    equal (packets_processed, current_cost), so the state ``best_state()``
    picks is unchanged whenever the report set was not truncated.
    """
    drained: list[ExecutionState] = []
    while not searcher.empty:
        drained.append(searcher.pop())
    if limit is not None and len(drained) > limit:
        drained.sort(key=lambda s: (s.packets_processed, s.current_cost), reverse=True)
        del drained[limit:]
    return drained


@dataclass
class SymbexStats:
    """Aggregate statistics of one symbolic-execution run.

    A monolithic run fills ``completed_states`` / ``pending_states``; a
    per-packet beam run (``repro.symbex.batch``) additionally fills
    ``paused_states`` (frontier states parked at a packet boundary) and
    ``rounds`` (one :class:`~repro.symbex.batch.RoundStats` per round).
    """

    states_explored: int = 0
    instructions_executed: int = 0
    forks: int = 0
    infeasible_states: int = 0
    error_states: int = 0
    # Group branch resolution (vector tier, branch_batching): distinct
    # feasibility classes queried, class-verdict fan-outs saved, and branch
    # conditions whose shadow verdict came from a columnar lockstep pass.
    # Always zero in interp/compiled mode and with batching off.
    group_queries: int = 0
    group_dedup_hits: int = 0
    column_branch_resolutions: int = 0
    completed_states: list[ExecutionState] = field(default_factory=list)
    pending_states: list[ExecutionState] = field(default_factory=list)
    paused_states: list[ExecutionState] = field(default_factory=list)
    rounds: list = field(default_factory=list)
    wall_time_seconds: float = 0.0

    def best_state(self) -> ExecutionState | None:
        """The highest-cost state, preferring states that finished all packets."""
        if self.completed_states:
            return max(self.completed_states, key=lambda s: s.current_cost)
        candidates = self.paused_states + self.pending_states
        if not candidates:
            return None
        return max(candidates, key=lambda s: (s.packets_processed, s.current_cost))

    def merge_round(self, round_stats: "SymbexStats") -> None:
        """Fold one round's counters into this aggregate (beam scheduler)."""
        self.states_explored += round_stats.states_explored
        self.instructions_executed += round_stats.instructions_executed
        self.forks += round_stats.forks
        self.infeasible_states += round_stats.infeasible_states
        self.error_states += round_stats.error_states
        self.group_queries += round_stats.group_queries
        self.group_dedup_hits += round_stats.group_dedup_hits
        self.column_branch_resolutions += round_stats.column_branch_resolutions
        self.completed_states.extend(round_stats.completed_states)


class SymbolicEngine:
    """Interprets an NFIL module over a sequence of symbolic packets."""

    def __init__(
        self,
        module: Module,
        entry: str,
        packet_args: list[list[Expr]],
        annotation: CostAnnotation | None = None,
        cache_model: "CacheModel | None" = None,
        solver: Solver | None = None,
        cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS,
        defaults: dict[str, int] | None = None,
        hash_output_bits: dict[str, int] | None = None,
        max_loop_iterations: int = 256,
        exec_mode: str = "compiled",
        stage_entries: dict[str, str] | None = None,
        branch_batching: bool = True,
    ) -> None:
        self.module = module
        self.entry = entry
        self.packet_args = packet_args
        # Chain NFs: prefixed stage entry function -> stage label.  Calls
        # from the entry glue into these functions open a per-stage cost
        # window; the matching return closes it (per-stage attribution).
        self.stage_entries = dict(stage_entries or {})
        self.annotation = annotation
        if cache_model is None:
            # Imported here (not at module level) to keep the symbex and
            # cache packages free of a circular import at init time.
            from repro.cache.model import NoCacheModel

            cache_model = NoCacheModel()
        self.cache_model = cache_model
        self.solver = solver or Solver()
        self.cycle_costs = cycle_costs
        self.defaults = dict(defaults or {})
        self.hash_output_bits = dict(hash_output_bits or {})
        self.max_loop_iterations = max_loop_iterations

        if exec_mode not in EXEC_MODES:
            raise ValueError(f"unknown exec_mode {exec_mode!r}; options: {EXEC_MODES}")
        self.exec_mode = exec_mode
        # Vector tier only: group-level branch resolution (columnar shadow
        # verdicts + feasibility dedup).  Off switch for A/B digest checks.
        self.branch_batching = bool(branch_batching)

        self._entry_function = module.get_function(entry)
        if packet_args and len(self._entry_function.params) != len(packet_args[0]):
            raise ValueError("packet argument count does not match entry parameters")
        # Pre-index blocks for O(1) lookup during interpretation.
        self._blocks: dict[str, dict[str, BasicBlock]] = {
            name: {block.name: block for block in function.blocks}
            for name, function in module.functions.items()
        }
        self._stats: SymbexStats | None = None
        # When set, states crossing this packet boundary pause instead of
        # starting the next packet (per-packet beam rounds).
        self._pause_at_packet: int | None = None
        self._attach_exec_mode()

    def _attach_exec_mode(self) -> None:
        """Build (or rebuild, after unpickling) the per-mode machinery.

        Compiled blocks come from the process-local cache in
        :mod:`repro.symbex.blockc`; the concolic shadow seeds from the
        per-symbol packet defaults.  Neither is ever pickled.
        """
        if self.exec_mode in ("compiled", "vector"):
            self._compiled_blocks = compiled_module(self.module, self.cycle_costs)
            self._shadow: ShadowAssignment | None = ShadowAssignment(self.defaults)
        else:
            self._compiled_blocks = None
            self._shadow = None
        self._vex = None
        if self.exec_mode == "vector":
            from repro.symbex import vexec

            if vexec.numpy_available():
                self._vex = vexec.VectorExecutor(
                    self._blocks,
                    self.module,
                    self.cycle_costs,
                    engine=self,
                    branch_batching=self.branch_batching,
                )
            else:
                # Graceful degradation: identical outputs on the compiled
                # tier, just without the many-states grouping.
                vexec.warn_numpy_missing()
        # Access-matrix handoff from a vector memory buffer to the next
        # compiled memory step of the same state (see execute_until_fork).
        self._mem_hints: tuple | None = None
        # Group-resolved branch verdicts handed off by an applied vector
        # buffer: (state, cond, (feasible_true, feasible_false)), consumed
        # at most once by _execute_branch for exactly that state and cond.
        self._branch_hints: tuple | None = None
        # expr -> bool under the run-wide concolic shadow.  Valid because
        # the shadow is seeded once from the packet defaults and never
        # mutated (states only flip their own shadow_valid bit).
        self._shadow_eval_memo: dict[Expr, bool] = {}

    def __getstate__(self) -> dict:
        # Compiled steps are closures (unpicklable by design); shard workers
        # recompile from their own unpickled module on load.
        state = dict(self.__dict__)
        state["_compiled_blocks"] = None
        state["_shadow"] = None
        state["_vex"] = None
        state["_mem_hints"] = None
        state["_branch_hints"] = None
        state["_shadow_eval_memo"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._attach_exec_mode()

    # -- state construction ------------------------------------------------------

    def make_initial_state(self) -> ExecutionState:
        state = ExecutionState(
            cache_model=self.cache_model.clone(),
            num_packets=len(self.packet_args),
            solver_context=SolverContext(self.solver),
        )
        if self._shadow is not None:
            # Concolic shadow: trivially valid while the path is unconstrained.
            state.shadow = self._shadow
            state.shadow_valid = True
        if not self.packet_args:
            # An explicit zero-packet run: nothing to execute.
            state.status = StateStatus.COMPLETED
            return state
        self._start_packet(state, packet_index=0)
        return state

    def _start_packet(self, state: ExecutionState, packet_index: int) -> None:
        args = self.packet_args[packet_index]
        params = self._entry_function.params
        if len(args) != len(params):
            raise ValueError(
                f"packet {packet_index} provides {len(args)} args, entry takes {len(params)}"
            )
        registers = {param: arg for param, arg in zip(params, args)}
        state.push_frame(
            Frame(
                function=self.entry,
                block=self._entry_function.entry_block.name,
                index=0,
                registers=registers,
            )
        )
        state.begin_packet()

    def resume_state(self, state: ExecutionState) -> None:
        """Resume a state paused at a packet boundary into its next packet."""
        state.resume_round()
        self._start_packet(state, state.packets_processed)

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        searcher: Searcher,
        max_states: int | None = None,
        deadline_seconds: float | None = None,
        max_instructions_per_state: int = 100_000,
        max_pending_report: int | None = 512,
        initial_states: list[ExecutionState] | None = None,
        stop_at_packet: int | None = None,
    ) -> SymbexStats:
        """Explore paths until the searcher drains or a budget is exhausted.

        ``initial_states`` seeds the searcher instead of a fresh initial
        state (paused seeds are resumed into their next packet), and
        ``stop_at_packet`` parks states at that packet boundary instead of
        letting them continue — together they make runs resumable, which is
        what the per-packet beam scheduler builds on.
        """
        stats = SymbexStats()
        self._stats = stats
        self._pause_at_packet = stop_at_packet
        start = time.monotonic()
        # Group-resolution counters live on the process-global CONTEXT_STATS
        # (they are bumped from the vector executor); snapshot so this run's
        # delta lands in its own SymbexStats.
        group_base = (
            CONTEXT_STATS.group_queries,
            CONTEXT_STATS.group_dedup_hits,
            CONTEXT_STATS.column_branch_resolutions,
        )

        if initial_states is None:
            initial_states = [self.make_initial_state()]
        for state in initial_states:
            if state.status is StateStatus.PAUSED:
                self.resume_state(state)
            self._update_priority(state)
            searcher.add(state)
        vex = self._vex
        if vex is not None:
            # Vector tier: group the seed frontier up front (beam rounds
            # seed many states parked at the same packet boundary)...
            vex.build_buffers(searcher.iter_states())

        try:
            while not searcher.empty:
                if max_states is not None and stats.states_explored >= max_states:
                    break
                if deadline_seconds is not None and time.monotonic() - start > deadline_seconds:
                    break
                state = searcher.pop()
                if vex is not None:
                    # ...and rescan for peers whenever an ungrouped state
                    # pops (a monolithic run grows its frontier mid-flight,
                    # so this is where most groups form).
                    vex.regroup(state, searcher)
                stats.states_explored += 1
                for outcome in self.execute_until_fork(state, max_instructions_per_state):
                    if outcome.status is StateStatus.RUNNING:
                        self._update_priority(outcome)
                        searcher.add(outcome)
                    elif outcome.status is StateStatus.COMPLETED:
                        stats.completed_states.append(outcome)
                    elif outcome.status is StateStatus.PAUSED:
                        # Refresh the priority so beam selection can compare
                        # boundary states against mid-packet pending ones.
                        self._update_priority(outcome)
                        stats.paused_states.append(outcome)
                    elif outcome.status is StateStatus.INFEASIBLE:
                        stats.infeasible_states += 1
                    else:
                        stats.error_states += 1

            # Whatever is still pending is reported so the caller can fall
            # back to the highest-cost partial state (the paper halts on a
            # time budget and picks the best state seen so far).  The report
            # set is chosen by the same (packets_processed, current_cost) key
            # that best_state() uses — truncating in searcher pop order would
            # let bfs/dfs/random searchers drop the true best pending state.
            stats.pending_states = _drain_best_pending(searcher, max_pending_report)
        finally:
            stats.wall_time_seconds = time.monotonic() - start
            stats.group_queries = CONTEXT_STATS.group_queries - group_base[0]
            stats.group_dedup_hits = CONTEXT_STATS.group_dedup_hits - group_base[1]
            stats.column_branch_resolutions = (
                CONTEXT_STATS.column_branch_resolutions - group_base[2]
            )
            self._stats = None
            self._pause_at_packet = None
        return stats

    # -- single-state execution -----------------------------------------------------

    def execute_until_fork(
        self, state: ExecutionState, max_instructions: int = 100_000
    ) -> list[ExecutionState]:
        """Run ``state`` until it forks, completes, or errors.

        Returns every state that needs classification by the caller: the
        (possibly paused) state itself plus any children created at forks.
        Dispatches to the block-compiled driver or the reference
        interpreter according to ``exec_mode``; both produce identical
        states, counters and fork order.  In vector mode a deferred group
        step buffered on the state is applied (or peeled) first, then the
        compiled driver continues mid-budget as if it had run that step
        itself.
        """
        vex = self._vex
        if vex is not None:
            self._mem_hints = None
            self._branch_hints = None
            executed, mem_row = vex.apply(self, state, max_instructions)
            if mem_row is not None:
                self._mem_hints = (state, mem_row)
            return self._execute_until_fork_compiled(state, max_instructions, executed)
        if self._compiled_blocks is not None:
            return self._execute_until_fork_compiled(state, max_instructions)
        return self._interpret(state, [], 0, max_instructions)

    def _interpret(
        self,
        state: ExecutionState,
        collected: list[ExecutionState],
        executed: int,
        max_instructions: int,
    ) -> list[ExecutionState]:
        """The reference per-instruction loop (also the compiled tail path)."""
        while state.status is StateStatus.RUNNING:
            if executed >= max_instructions:
                state.status = StateStatus.ERROR
                state.error_message = "instruction budget exceeded"
                break
            instruction = self._current_instruction(state)
            if instruction is None:
                state.status = StateStatus.ERROR
                state.error_message = "fell off the end of a basic block"
                break
            executed += 1
            state.instructions_retired += 1
            if self._stats is not None:
                self._stats.instructions_executed += 1

            if isinstance(instruction, Branch):
                finished = self._execute_branch(state, instruction, collected)
                if finished:
                    break
                continue
            self._execute_simple(state, instruction)
        collected.append(state)
        return collected

    def _execute_until_fork_compiled(
        self, state: ExecutionState, max_instructions: int, executed: int = 0
    ) -> list[ExecutionState]:
        """Step compiled blocks until the state forks, completes, or errors.

        The instruction budget is checked against each step's instruction
        count *before* the step runs; a step that would cross the limit
        hands the state to the reference interpreter loop, which exhausts
        the budget at exactly the instruction the interpreter would.
        ``executed`` pre-charges instructions an applied vector buffer
        already consumed, keeping the budget exact.
        """
        collected: list[ExecutionState] = []
        compiled = self._compiled_blocks
        while state.status is StateStatus.RUNNING:
            frame = state._frames[-1]
            block = compiled.get((frame.function, frame.block))
            pos = block.resume.get(frame.index) if block is not None else None
            if pos is None:
                # Unknown block or a resume point the compiler did not emit:
                # the interpreter handles both with reference semantics.
                return self._interpret(state, collected, executed, max_instructions)
            steps = block.steps
            while True:
                n, fn = steps[pos]
                if executed >= max_instructions or executed + n > max_instructions:
                    return self._interpret(state, collected, executed, max_instructions)
                executed += n
                code = fn(self, state, collected)
                if code == 0:
                    pos += 1
                    continue
                break
            if code == 2:
                break
        collected.append(state)
        return collected

    def _shadow_eval(self, expr: Expr) -> bool:
        """Whether ``expr`` holds under the run-wide concolic shadow (memoized).

        Sound as a cache because every state's shadow is the same shared
        (or content-equal, after unpickling) assignment and it is never
        mutated; interning makes the expression itself the key.
        """
        memo = self._shadow_eval_memo
        result = memo.get(expr)
        if result is None:
            ev = expr._evaluator
            if ev is None:
                ev = compiled_evaluator(expr)
            if len(memo) >= _SHADOW_MEMO_LIMIT:
                memo.clear()
            result = bool(ev(self._shadow))
            memo[expr] = result
        return result

    def _shadow_eval_group(self, conds: list[Expr]) -> dict[Expr, bool]:
        """Shadow verdicts for a whole group of branch conditions at once.

        Cache-consistent with :meth:`_shadow_eval`: memo hits are reused,
        misses are evaluated as one lockstep columnar pass over the shared
        shadow (exact by construction, see
        :func:`repro.symbex.expr.lockstep_evaluate`) and inserted into the
        same memo; conditions whose shapes diverge fall back to the scalar
        path one by one.
        """
        memo = self._shadow_eval_memo
        verdicts: dict[Expr, bool] = {}
        missing: list[Expr] = []
        for cond in conds:
            if cond in verdicts:
                continue
            cached = memo.get(cond)
            if cached is not None:
                verdicts[cond] = cached
            else:
                verdicts[cond] = False  # placeholder: dedupes repeats below
                missing.append(cond)
        if len(missing) >= 2:
            values = lockstep_evaluate(missing, self._shadow)
            if values is not None:
                CONTEXT_STATS.column_branch_resolutions += len(missing)
                for cond, value in zip(missing, values):
                    result = bool(value)
                    if len(memo) >= _SHADOW_MEMO_LIMIT:
                        memo.clear()
                    memo[cond] = result
                    verdicts[cond] = result
                missing = []
        for cond in missing:
            verdicts[cond] = self._shadow_eval(cond)
        return verdicts

    def _memory_query_fns(self, state: ExecutionState):
        """The (feasible, solve_value) callbacks handed to the cache model.

        Shared by both execution modes so the solver-fallback logic cannot
        drift between them.  ``feasible`` carries the concolic fast path: a
        shadow that satisfies the whole path and the probe constraint is a
        live witness, so the optimistic feasibility check cannot answer
        anything but True (a no-op for interp-mode states, whose
        ``shadow_valid`` is never set).
        """
        context = state.solver_context
        solver = self.solver

        def feasible(constraint: Expr) -> bool:
            if state.shadow_valid and self._shadow_eval(constraint):
                return True
            if context is not None:
                return context.feasible_with(constraint)
            return solver.quick_feasible(state.constraints + [constraint])

        def solve_value(expr: Expr) -> int | None:
            if context is not None:
                return context.solve_value(expr, defaults=self.defaults)
            result = solver.check(state.constraints, defaults=self.defaults)
            if not result.is_sat:
                return None
            assignment = {
                symbol.name: result.model.get(symbol.name, self.defaults.get(symbol.name, 0))
                for symbol in symbols_of(expr)
            }
            return evaluate(expr, assignment)

        return feasible, solve_value

    def _execute_memory_group(self, state: ExecutionState, plans) -> bool:
        """Replay a compiled run of memory accesses through the cache model.

        One ``on_access_batch`` call covers the whole run; per-access state
        effects (constraints, cycle charges, level counts, register/memory
        writes) are applied between accesses so later index operands see
        earlier results.  Returns False when an access errored the state.
        """
        stats = self._stats
        feasible, solve_value = self._memory_query_fns(state)
        apply_access = self._apply_access

        # A vector memory buffer left this run's access matrix row for us:
        # pre-resolved index expressions, exact because the buffer's key was
        # validated against the state's position (registers are unchanged
        # since grouping) and non-prefetchable slots are None.
        hints = None
        pending = self._mem_hints
        if pending is not None and pending[0] is state:
            self._mem_hints = None
            if len(pending[1]) == len(plans):
                hints = pending[1]

        def execute_one(model, plan, index_expr=None) -> bool:
            state.instructions_retired += 1
            if stats is not None:
                stats.instructions_executed += 1
            if index_expr is None:
                regs = state._frames[-1].registers
                index_expr = (
                    regs[plan.index_reg] if plan.index_reg is not None else plan.index_const
                )
            if plan.is_write:
                if plan.value_reg is not None:
                    # Re-read the register file at call time: an earlier load
                    # in this run may have swapped the CoW dict.
                    def read_value(_r=plan.value_reg):
                        return state._frames[-1].registers[_r]
                else:
                    def read_value(_v=plan.value_const):
                        return _v
            else:
                read_value = None
            return apply_access(
                state, model, plan.region, index_expr, plan.is_write,
                read_value=read_value, dest=plan.dest,
                feasible=feasible, solve_value=solve_value,
            )

        state.cache_model.on_access_batch(plans, execute_one, index_exprs=hints)
        return state.status is StateStatus.RUNNING

    # -- instruction dispatch ----------------------------------------------------------

    def _current_instruction(self, state: ExecutionState) -> Instruction | None:
        frame = state.frames[-1]  # read-only: avoid triggering the CoW copy
        block = self._blocks[frame.function].get(frame.block)
        if block is None or frame.index >= len(block.instructions):
            return None
        return block.instructions[frame.index]

    def _operand(self, state: ExecutionState, value: Value) -> Expr:
        if isinstance(value, Constant):
            return Const(value.value)
        if isinstance(value, Register):
            return state.read_register(value.name)
        raise TypeError(f"unsupported operand {value!r}")

    def _charge(self, state: ExecutionState, cycles: int) -> None:
        state.current_cost += cycles

    def _execute_simple(self, state: ExecutionState, instruction: Instruction) -> None:
        frame = state.top_frame
        if isinstance(instruction, BinaryOp):
            lhs = self._operand(state, instruction.lhs)
            rhs = self._operand(state, instruction.rhs)
            state.write_register(instruction.dest.name, make_binop(instruction.op, lhs, rhs))
            self._charge(state, self.cycle_costs.instruction_cost(instruction))
            frame.index += 1
            return
        if isinstance(instruction, Compare):
            lhs = self._operand(state, instruction.lhs)
            rhs = self._operand(state, instruction.rhs)
            state.write_register(instruction.dest.name, make_cmp(instruction.pred, lhs, rhs))
            self._charge(state, self.cycle_costs.compare)
            frame.index += 1
            return
        if isinstance(instruction, Select):
            cond = self._operand(state, instruction.cond)
            if_true = self._operand(state, instruction.if_true)
            if_false = self._operand(state, instruction.if_false)
            state.write_register(instruction.dest.name, make_select(cond, if_true, if_false))
            self._charge(state, self.cycle_costs.select)
            frame.index += 1
            return
        if isinstance(instruction, Load):
            self._execute_memory(state, instruction, is_write=False)
            frame.index += 1
            return
        if isinstance(instruction, Store):
            self._execute_memory(state, instruction, is_write=True)
            frame.index += 1
            return
        if isinstance(instruction, Call):
            self._execute_call(state, instruction)
            return
        if isinstance(instruction, Havoc):
            self._execute_havoc(state, instruction)
            frame.index += 1
            return
        if isinstance(instruction, Jump):
            self._charge(state, self.cycle_costs.jump)
            frame.block = instruction.target
            frame.index = 0
            return
        if isinstance(instruction, Return):
            self._execute_return(state, instruction)
            return
        if isinstance(instruction, Unreachable):
            state.status = StateStatus.ERROR
            state.error_message = "reached an unreachable instruction"
            return
        state.status = StateStatus.ERROR
        state.error_message = f"unknown instruction {instruction!r}"

    def _execute_memory(self, state: ExecutionState, instruction, is_write: bool) -> None:
        region = self.module.get_region(instruction.region)
        index_expr = self._operand(state, instruction.index)
        feasible, solve_value = self._memory_query_fns(state)
        self._apply_access(
            state,
            state.cache_model,
            region,
            index_expr,
            is_write,
            read_value=(lambda: self._operand(state, instruction.value)) if is_write else None,
            dest=None if is_write else instruction.dest.name,
            feasible=feasible,
            solve_value=solve_value,
        )

    def _apply_access(
        self,
        state: ExecutionState,
        model,
        region,
        index_expr: Expr,
        is_write: bool,
        read_value,
        dest: str | None,
        feasible,
        solve_value,
    ) -> bool:
        """One memory access: bounds check, cache decision, state effects.

        The single per-access body shared by the interpreter and the
        compiled memory steps (so the two modes cannot drift).  ``read_value``
        is called only after the cache decision, matching the interpreter's
        operand-read order.  Returns False when the access errored the state.
        """
        if index_expr.__class__ is Const and not (0 <= index_expr.value < region.length):
            state.status = StateStatus.ERROR
            state.error_message = (
                f"out-of-bounds access to @{region.name}[{index_expr.value}] "
                f"(length {region.length})"
            )
            return False
        decision = model.on_access(region, index_expr, is_write, feasible, solve_value)
        if decision.constraint is not None:
            state.add_constraint(decision.constraint)
        state.current_cost += self.cycle_costs.memory_cost(decision.level)
        state.level_counts[decision.level] = state.level_counts.get(decision.level, 0) + 1
        if is_write:
            state.write_memory(region.name, decision.index, read_value())
            state.stores += 1
        else:
            default = region.initial.get(decision.index, 0)
            value = state.read_memory(region.name, decision.index, default=default)
            state.write_register(dest, value)
            state.loads += 1
        return True

    def _execute_call(self, state: ExecutionState, instruction: Call) -> None:
        callee = self.module.get_function(instruction.callee)
        args = [self._operand(state, arg) for arg in instruction.args]
        self._charge(state, self.cycle_costs.call_overhead)
        caller_frame = state.top_frame
        caller_frame.index += 1  # resume after the call on return
        state.push_frame(
            Frame(
                function=callee.name,
                block=callee.entry_block.name,
                index=0,
                registers={param: arg for param, arg in zip(callee.params, args)},
                return_target=instruction.dest.name if instruction.dest else None,
            )
        )
        if (
            self.stage_entries
            and caller_frame.function == self.entry
            and callee.name in self.stage_entries
        ):
            # Entering a chain stage from the glue: open its cost window
            # (the call overhead charged above stays attributed to the glue).
            state.active_stage = self.stage_entries[callee.name]
            state.stage_cost_base = state.current_cost

    def _execute_havoc(self, state: ExecutionState, instruction: Havoc) -> None:
        key_expr = self._operand(state, instruction.key)
        args = [self._operand(state, arg) for arg in instruction.args]
        bits = self.hash_output_bits.get(instruction.hash_function, 32)
        symbol = Sym(state.fresh_symbol_name("hv"), bits=bits)
        state.havoc_records.append(
            HavocRecord(
                symbol=symbol,
                key_expr=key_expr,
                hash_function=instruction.hash_function,
                args=args,
                packet_index=state.packets_processed,
            )
        )
        state.write_register(instruction.dest.name, symbol)
        # Charge what the suppressed hash call would roughly have cost, so
        # the cost comparison between paths is not skewed by havocing.
        self._charge(state, self.cycle_costs.hash_call)

    def _execute_return(self, state: ExecutionState, instruction: Return) -> None:
        value = (
            self._operand(state, instruction.value)
            if instruction.value is not None
            else Const(0)
        )
        self._charge(state, self.cycle_costs.return_cost)
        finished_frame = state.pop_frame()
        if state.frames:
            if (
                state.active_stage is not None
                and finished_frame.function in self.stage_entries
                and state.top_frame.function == self.entry
            ):
                label = self.stage_entries[finished_frame.function]
                state.stage_costs[label] = state.stage_costs.get(label, 0) + (
                    state.current_cost - state.stage_cost_base
                )
                state.active_stage = None
            if finished_frame.return_target is not None:
                state.write_register(finished_frame.return_target, value)
            return
        # The entry function returned: one packet fully processed.
        state.finish_packet(value)
        if state.packets_processed >= state.num_packets:
            state.status = StateStatus.COMPLETED
        elif (
            self._pause_at_packet is not None
            and state.packets_processed >= self._pause_at_packet
        ):
            state.pause_at_round_boundary()
        else:
            self._start_packet(state, state.packets_processed)

    # -- branches ---------------------------------------------------------------------

    def _execute_branch(
        self, state: ExecutionState, instruction: Branch, collected: list[ExecutionState]
    ) -> bool:
        """Execute a branch.  Returns True when the caller must stop stepping."""
        frame = state.top_frame
        self._charge(state, self.cycle_costs.branch)
        cond = self._operand(state, instruction.cond)

        if isinstance(cond, Const):
            frame.block = instruction.if_true if cond.value else instruction.if_false
            frame.index = 0
            return False

        true_constraint = expr_ne(cond, Const(0))
        false_constraint = expr_not(true_constraint)
        context = state.solver_context

        verdicts = None
        hint = self._branch_hints
        if hint is not None and hint[0] is state:
            # Group branch resolution (vector tier): the verdict pair was
            # computed for this exact state when its group buffered, and the
            # constraint chain cannot have changed since (the state was
            # parked).  Consumed at most once, and only when it describes
            # exactly this condition.
            self._branch_hints = None
            if hint[1] is cond:
                verdicts = hint[2]

        if verdicts is not None:
            feasible_true, feasible_false = verdicts
        else:

            def query(constraint: Expr) -> bool:
                if context is not None:
                    return context.feasible_with(constraint)
                return self.solver.quick_feasible(state.constraints + [constraint])

            if state.shadow_valid:
                # Concolic fast path: the shadow satisfies the whole path, so
                # whichever side it takes is satisfiable — and the optimistic
                # feasibility check returns True on every satisfiable side.
                # Only the other side needs a solver query.
                if self._shadow_eval(cond):
                    feasible_true = True
                    feasible_false = query(false_constraint)
                else:
                    feasible_false = True
                    feasible_true = query(true_constraint)
            else:
                feasible_true = query(true_constraint)
                feasible_false = query(false_constraint)

        is_loop_head = frame.block.startswith(_LOOP_HEAD_PREFIXES)
        if is_loop_head:
            visits = frame.loop_visits.get(frame.block, 0) + 1
            frame.loop_visits[frame.block] = visits
            if visits > self.max_loop_iterations and feasible_false:
                # Safety valve against runaway loops under optimistic
                # feasibility: force the exit edge.
                feasible_true = False

        if not feasible_true and not feasible_false:
            state.status = StateStatus.INFEASIBLE
            return True
        if feasible_true != feasible_false:
            constraint = true_constraint if feasible_true else false_constraint
            target = instruction.if_true if feasible_true else instruction.if_false
            state.add_constraint(constraint)
            frame.block = target
            frame.index = 0
            return False

        # Both directions feasible: fork.
        if self._stats is not None:
            self._stats.forks += 1
        child = state.fork()
        child.add_constraint(false_constraint)
        child_frame = child.top_frame
        child_frame.block = instruction.if_false
        child_frame.index = 0

        state.add_constraint(true_constraint)
        # Re-fetch after fork(): frames went copy-on-write, so the frame
        # reference captured above may now be shared with the child.
        frame = state.top_frame
        frame.block = instruction.if_true
        frame.index = 0

        if is_loop_head:
            # §3.4: at a loop head, prefer the one-more-iteration state and
            # queue the exit state for later exploration.
            state.preferred_loop_iteration = True
            self._update_priority(child)
            collected.append(child)
            return False
        self._update_priority(child)
        collected.append(child)
        return True

    # -- cost heuristic ------------------------------------------------------------------

    def _update_priority(self, state: ExecutionState) -> None:
        """current cost + potential cost to the end of the last packet (§3.1).

        Paused states (parked at a packet boundary by a beam round) have no
        live frames; their potential is the annotated entry cost of every
        packet still to process, which keeps their priorities comparable
        with mid-packet states when the beam is selected.
        """
        potential = 0
        if self.annotation is not None and state.status in (
            StateStatus.RUNNING,
            StateStatus.PAUSED,
        ):
            for frame in state.frames:
                block = self._blocks[frame.function].get(frame.block)
                if block is None or frame.index >= len(block.instructions):
                    continue
                potential += self.annotation.cost_of(block.instructions[frame.index].uid)
            in_flight = 1 if state.frames else 0
            remaining_packets = max(0, state.num_packets - state.packets_processed - in_flight)
            potential += remaining_packets * self.annotation.entry_cost(self.entry)
        state.priority = state.current_cost + potential
