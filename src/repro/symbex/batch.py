"""Per-packet beam-batched workload synthesis (the round scheduler).

CASTAN's adversarial workloads get their power from *multi-packet*
interaction: packet i is only adversarial relative to the NF state left
behind by packets 1..i-1 (§3.1, §3.4).  A monolithic search over all N
packets spends most of its state budget permuting early-packet paths and
rarely reaches the deep packets where the interesting state lives.

:func:`run_beam_search` restructures synthesis into per-packet rounds with
a prime/strike shape:

* **Priming rounds** (packets 0..N-2) each explore one packet to a slim
  pop budget (``round_max_states``): the engine parks every state that
  crosses the round's packet boundary
  (:class:`~repro.symbex.state.StateStatus.PAUSED`) instead of letting it
  run on, and the top-K frontier states by estimated total cost — the
  *beam*, :func:`~repro.symbex.searcher.select_beam` — seed the next
  round.  Seeds carry their NF memory overlays, havoc records and
  :class:`~repro.symbex.incremental.SolverContext` forward untouched
  (states already share all of that copy-on-write across forks), so a
  round boundary costs nothing beyond the selection itself.  Priming is
  deliberately cheap: its job is carrying diverse, well-primed NF state
  forward, not finding the expensive path.
* **The strike round** (packet N-1) gets the entire remaining budget: by
  now the carried state (cache contention sets, skewed trees, collided
  buckets) is fully primed, so depth pays here.  The strike is explored in
  chunks, carrying the whole frontier between chunks, and stops early once
  a chunk completes paths without improving the best state seen — which is
  how the scheduler ends up exploring *fewer* states than the monolithic
  search on NFs that converge.

The scheduler degrades gracefully: ``beam_width <= 0`` falls back to the
monolithic single-call search, and a priming round whose budget was too
small to finish its packet simply carries its best mid-packet states
forward, to be parked at the next boundary they reach.

Round seeds are also where ``exec_mode="vector"`` gets its best grouping:
every seed of a round is parked at the same packet boundary, so the
vectorized frontier tier (:mod:`repro.symbex.vexec`) groups the whole beam
at run start and steps it columnar until paths diverge.  Shard workers
drop any buffered group step when states are pickled across the process
boundary and simply regroup on arrival — worker count still never changes
the synthesized workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.symbex.engine import SymbexStats, SymbolicEngine
from repro.symbex.searcher import Searcher, select_beam
from repro.symbex.state import ExecutionState


@dataclass
class RoundStats:
    """What one beam round (or strike chunk) did (``SymbexStats.rounds``)."""

    packet_index: int
    phase: str  # "prime" | "strike"
    seeds: int
    states_explored: int
    forks: int
    paused: int
    pending: int
    completed: int
    infeasible: int
    errors: int
    best_cost: int
    wall_time_seconds: float


def _best_key(state: ExecutionState) -> tuple[int, int]:
    return (state.packets_processed, state.current_cost)


def _truncate_report(states: list[ExecutionState], limit: int | None) -> list[ExecutionState]:
    """Cap the final pending report, keeping the top states by best-state key."""
    if limit is None or len(states) <= limit:
        return list(states)
    return sorted(states, key=_best_key, reverse=True)[:limit]


def run_beam_search(
    engine: SymbolicEngine,
    searcher_factory: Callable[[], Searcher],
    beam_width: int,
    max_states: int | None = None,
    deadline_seconds: float | None = None,
    max_instructions_per_state: int = 100_000,
    round_max_states: int | None = None,
    round_deadline_seconds: float | None = None,
    strike_chunk_states: int = 32,
    max_pending_report: int | None = 512,
    on_round: Callable[[RoundStats], None] | None = None,
) -> SymbexStats:
    """Explore one packet per round, carrying a beam of states across rounds.

    ``max_states`` and ``deadline_seconds`` are *global* budgets shared by
    all rounds; ``round_max_states`` caps one priming round (default
    ``beam_width + 1`` pops) and ``round_deadline_seconds`` caps any single
    engine call.  Each round needs a fresh searcher, hence the factory.
    Returns an aggregate :class:`SymbexStats` whose ``rounds`` list holds
    one :class:`RoundStats` per engine call and whose paused/pending states
    are the final frontier.

    ``on_round`` is the live-progress tap (the synthesis service streams
    it to job subscribers): it is called with each :class:`RoundStats`
    right after the round completes, *observation only* — it receives the
    same object that lands in ``stats.rounds`` and must not mutate it or
    influence the search.
    """
    num_packets = len(engine.packet_args)
    if beam_width <= 0 or num_packets == 0:
        return engine.run(
            searcher_factory(),
            max_states=max_states,
            deadline_seconds=deadline_seconds,
            max_instructions_per_state=max_instructions_per_state,
            max_pending_report=max_pending_report,
        )

    prime_budget = round_max_states if round_max_states is not None else beam_width + 1
    total = SymbexStats()
    start = time.monotonic()
    best: ExecutionState | None = None

    def remaining_budget() -> int | None:
        if max_states is None:
            return None
        return max_states - total.states_explored

    def call_deadline() -> float | None:
        if deadline_seconds is None:
            return round_deadline_seconds
        left = deadline_seconds - (time.monotonic() - start)
        if round_deadline_seconds is None:
            return left
        return min(round_deadline_seconds, left)

    def out_of_budget() -> bool:
        remaining = remaining_budget()
        if remaining is not None and remaining <= 0:
            return True
        deadline = call_deadline()
        return deadline is not None and deadline <= 0

    def run_round(seeds, stop_at_packet, budget_cap, phase) -> SymbexStats:
        nonlocal best
        budget = remaining_budget()
        if budget_cap is not None:
            budget = budget_cap if budget is None else min(budget, budget_cap)
        stats = engine.run(
            searcher_factory(),
            max_states=budget,
            deadline_seconds=call_deadline(),
            max_instructions_per_state=max_instructions_per_state,
            # The pending report is this scheduler's live frontier: never
            # truncate it mid-search (the cap is applied to the final
            # report only).
            max_pending_report=None,
            initial_states=seeds,
            stop_at_packet=stop_at_packet,
        )
        total.merge_round(stats)
        for state in stats.completed_states:
            if best is None or _best_key(state) > _best_key(best):
                best = state
        frontier = stats.paused_states + stats.pending_states
        round_best = max(
            (s.current_cost for s in frontier + stats.completed_states), default=0
        )
        total.rounds.append(
            RoundStats(
                packet_index=min(stop_at_packet, num_packets) - 1,
                phase=phase,
                seeds=len(seeds),
                states_explored=stats.states_explored,
                forks=stats.forks,
                paused=len(stats.paused_states),
                pending=len(stats.pending_states),
                completed=len(stats.completed_states),
                infeasible=stats.infeasible_states,
                errors=stats.error_states,
                best_cost=round_best,
                wall_time_seconds=stats.wall_time_seconds,
            )
        )
        if on_round is not None:
            on_round(total.rounds[-1])
        return stats

    # -- priming rounds: one packet each, slim budget, beam carry-over --------
    seeds = [engine.make_initial_state()]
    frontier: list[ExecutionState] = seeds
    last_stats: SymbexStats | None = None
    for packet_index in range(num_packets - 1):
        if out_of_budget():
            break
        last_stats = run_round(seeds, packet_index + 1, prime_budget, "prime")
        frontier = last_stats.paused_states + last_stats.pending_states
        if not frontier:
            break
        seeds = select_beam(frontier, beam_width)

    # -- strike round: the whole remaining budget on the final packet ---------
    if frontier:
        chunk_seeds = seeds
        while not out_of_budget():
            before = best
            last_stats = run_round(chunk_seeds, num_packets, strike_chunk_states, "strike")
            frontier = last_stats.paused_states + last_stats.pending_states
            if not frontier:
                break
            if last_stats.completed_states and best is before:
                # Paths are completing but none beats the best seen: the
                # strike has converged; spend no more of the budget.
                break
            # Chunks carry the *whole* frontier: the strike is a focused,
            # monolithic-style search over the primed final packet.
            chunk_seeds = frontier

    if last_stats is not None:
        total.paused_states = list(last_stats.paused_states)
        total.pending_states = _truncate_report(last_stats.pending_states, max_pending_report)
    else:
        # Budget/deadline exhausted before any round ran: report the seed
        # frontier so the caller can still fall back to a partial state
        # (mirroring the monolithic search under an exhausted deadline).
        total.pending_states = list(seeds)
    total.wall_time_seconds = time.monotonic() - start
    return total
