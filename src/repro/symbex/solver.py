"""Constraint solver for CASTAN path constraints.

The paths CASTAN explores constrain packet-header symbols with equality and
ordering comparisons over masked/shifted/arithmetic combinations of those
symbols (plus unconstrained havoc symbols standing in for hash values).
This solver is specialised to that class: it is not a general SMT solver,
but it plays the same role KLEE's solver does in the paper — deciding
branch feasibility and producing concrete models for the selected state.

It works in three phases:

1. **Propagation** — constraints are normalised and pattern-matched against
   per-symbol domains: fixed assignments, known-bit masks (for
   ``(sym >> k) & m == c`` shapes, which is what trie bit tests and lookup
   indices produce), intervals and small exclusion sets.  Contradictions
   found here make the result UNSAT.
2. **Algebraic inversion** — equalities whose non-constant side contains a
   single symbol occurrence are inverted through ADD/SUB/XOR/MUL/SHL/LSHR/
   AND/OR/UDIV/UREM chains to propose exact values.
3. **Bounded backtracking** — remaining symbols are enumerated from
   constraint-derived candidate values with a node budget; all constraints
   are re-checked by evaluation, so any model returned is sound.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.ir.instructions import BinOpKind, CmpKind
from repro.symbex.expr import (
    BinExpr,
    CmpExpr,
    Const,
    Expr,
    SelectExpr,
    Sym,
    evaluate,
    reduce_concrete,
    reduce_expr,
    register_cache_clear_hook,
    simplify,
    symbols_of,
)

MACHINE_MASK = (1 << 64) - 1

#: Memos for the pure per-node constraint analyses (pattern matching,
#: algebraic inversion, disjoint-field decomposition, possible-bit bounds).
#: Propagation re-runs these on the same interned nodes thousands of times
#: per analysis; all of them are pure functions of their (interned)
#: arguments.  They key on expression identity, so they must not survive an
#: intern-table clear.
_MASKED_SHIFT_MEMO: dict[Expr, "tuple[Sym, int, int] | None"] = {}
_INVERT_MEMO: dict[tuple, "tuple[Sym, int] | None"] = {}
_DECOMPOSE_MEMO: dict[tuple, "list[tuple[Expr, int]] | None"] = {}
_POSSIBLE_BITS_MEMO: dict[Expr, "int | None"] = {}

_ANALYSIS_MEMO_LIMIT = 1 << 17


def _clear_analysis_memos() -> None:
    _MASKED_SHIFT_MEMO.clear()
    _INVERT_MEMO.clear()
    _DECOMPOSE_MEMO.clear()
    _POSSIBLE_BITS_MEMO.clear()


register_cache_clear_hook(_clear_analysis_memos)


@dataclass
class Model:
    """A satisfying assignment of symbol names to concrete values."""

    values: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values[name]

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def copy(self) -> "Model":
        return Model(values=dict(self.values))


@dataclass
class SolverResult:
    """Outcome of a solver query."""

    status: str  # "sat", "unsat" or "unknown"
    model: Model | None = None
    reason: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class _Domain:
    """Per-symbol domain tracked during propagation."""

    __slots__ = ("symbol", "known_mask", "known_value", "lo", "hi", "exclusions")

    def __init__(self, symbol: Sym) -> None:
        self.symbol = symbol
        self.known_mask = 0
        self.known_value = 0
        self.lo = 0
        self.hi = symbol.mask
        self.exclusions: set[int] = set()

    def clone(self) -> "_Domain":
        """Independent copy (for copy-on-write solver contexts)."""
        other = _Domain(self.symbol)
        other.known_mask = self.known_mask
        other.known_value = self.known_value
        other.lo = self.lo
        other.hi = self.hi
        other.exclusions = set(self.exclusions)
        return other

    def signature(self) -> tuple[int, int, int, int, int]:
        """Cheap fingerprint used to detect real propagation progress."""
        return (self.known_mask, self.known_value, self.lo, self.hi, len(self.exclusions))

    @property
    def fully_known(self) -> bool:
        return self.known_mask == self.symbol.mask

    @property
    def value(self) -> int:
        return self.known_value

    def set_bits(self, mask: int, value: int) -> bool:
        """Record that ``sym & mask == value & mask``; False on conflict."""
        mask &= self.symbol.mask
        value &= mask
        overlap = self.known_mask & mask
        if (self.known_value & overlap) != (value & overlap):
            return False
        self.known_mask |= mask
        self.known_value |= value
        return True

    def constrain_interval(self, lo: int | None = None, hi: int | None = None) -> bool:
        if lo is not None:
            self.lo = max(self.lo, lo)
        if hi is not None:
            self.hi = min(self.hi, hi)
        return self.lo <= self.hi

    def candidates(self, rng: random.Random, limit: int = 12) -> list[int]:
        """Concrete values to try during backtracking, most promising first."""
        base = self.known_value & self.known_mask
        free = self.symbol.mask & ~self.known_mask
        out: list[int] = []

        def push(value: int) -> None:
            value &= self.symbol.mask
            if (value & self.known_mask) != (self.known_value & self.known_mask):
                return
            if not (self.lo <= value <= self.hi):
                return
            if value in self.exclusions:
                return
            if value not in out:
                out.append(value)

        push(base)
        push(base | free)  # all free bits set
        push(max(self.lo, base))
        push(min(self.hi, base | free))
        # Small intervals (e.g. produced by port-range or count constraints)
        # are enumerated exhaustively so exclusions cannot starve the search.
        if self.hi - self.lo < limit * 4:
            for value in range(self.lo, self.hi + 1):
                push(value)
        attempts = 0
        while len(out) < limit and attempts < limit * 4:
            attempts += 1
            push(base | (rng.getrandbits(64) & free))
        return out


class Solver:
    """Bit-vector constraint solver (see module docstring)."""

    _uids = itertools.count(1)

    def __init__(self, search_budget: int = 6000, seed: int = 0xCA57A) -> None:
        self.search_budget = search_budget
        self._seed = seed
        # Process-unique id for memo keys: unlike ``id(self)`` it is never
        # recycled after garbage collection.
        self.uid = next(Solver._uids)

    def __getstate__(self) -> dict:
        # ``uid`` is process-local: a pickled solver loaded into another
        # process must not collide with uids already handed out there.
        state = dict(self.__dict__)
        del state["uid"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.uid = next(Solver._uids)

    # -- public API ----------------------------------------------------------

    def check(
        self,
        constraints: list[Expr],
        defaults: dict[str, int] | None = None,
        extra_candidates: dict[str, list[int]] | None = None,
    ) -> SolverResult:
        """Find a model satisfying all ``constraints``.

        ``defaults`` supplies values for symbols left unconstrained (so that
        synthesized packets get sensible field values); ``extra_candidates``
        lets callers suggest values to try first for specific symbols (used
        by rainbow-table reconciliation).
        """
        constraints = [simplify(c) for c in constraints]
        symbols = self._collect_symbols(constraints)
        assignment: dict[str, int] = {}
        domains = {s.name: _Domain(s) for s in symbols.values()}

        status, remaining = self._propagate(constraints, assignment, domains)
        if status == "unsat":
            return SolverResult(status="unsat", reason="propagation found a contradiction")

        rng = random.Random(self._seed)
        # Default field values are tried first during backtracking: workloads
        # synthesized from weakly-constrained paths then look like realistic
        # packets instead of zero-filled ones, and monotone default keys often
        # satisfy tree-ordering constraints directly.
        merged_candidates: dict[str, list[int]] = {
            name: [value] for name, value in (defaults or {}).items()
        }
        for name, values in (extra_candidates or {}).items():
            merged_candidates.setdefault(name, [])
            merged_candidates[name] = list(values) + merged_candidates[name]
        ok = self._search(remaining, assignment, domains, rng, merged_candidates)
        if not ok:
            # The search is incomplete; report unknown rather than unsat
            # unless propagation alone already proved a contradiction.
            return SolverResult(status="unknown", reason="search budget exhausted")

        model = Model(values=dict(assignment))
        for name, symbol in symbols.items():
            if name not in model.values:
                default = (defaults or {}).get(name, 0)
                domain = domains[name]
                value = (default & ~domain.known_mask) | domain.known_value
                value &= symbol.mask
                if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                    for candidate in domain.candidates(rng):
                        value = candidate
                        break
                model.values[name] = value
        # Final soundness check: every constraint must evaluate to true.
        for constraint in constraints:
            if evaluate(constraint, model.values) == 0:
                return SolverResult(status="unknown", reason=f"model check failed: {constraint}")
        return SolverResult(status="sat", model=model)

    def is_satisfiable(self, constraints: list[Expr]) -> bool:
        """True when a model was found (unknown counts as unsatisfiable)."""
        return self.check(constraints).is_sat

    def quick_feasible(self, constraints: list[Expr]) -> bool:
        """Cheap feasibility filter used at branch points.

        Runs propagation only: returns ``False`` only when a definite
        contradiction is found, ``True`` otherwise (possibly optimistically).
        """
        constraints = [simplify(c) for c in constraints]
        symbols = self._collect_symbols(constraints)
        assignment: dict[str, int] = {}
        domains = {s.name: _Domain(s) for s in symbols.values()}
        status, _remaining = self._propagate(constraints, assignment, domains)
        return status != "unsat"

    # -- propagation ---------------------------------------------------------

    def _collect_symbols(self, constraints: list[Expr]) -> dict[str, Sym]:
        symbols: dict[str, Sym] = {}
        for constraint in constraints:
            for symbol in symbols_of(constraint):
                symbols[symbol.name] = symbol
        return symbols

    def _propagate(
        self,
        constraints: list[Expr],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
    ) -> tuple[str, list[Expr]]:
        """Fixed-point propagation; returns (status, unresolved constraints)."""
        pending = list(constraints)
        for _round in range(32):
            changed = False
            unresolved: list[Expr] = []
            for constraint in pending:
                reduced = reduce_expr(constraint, assignment)
                if isinstance(reduced, Const):
                    if reduced.value == 0:
                        return "unsat", []
                    continue
                outcome = self._propagate_one(reduced, assignment, domains)
                if outcome == "unsat":
                    return "unsat", []
                if outcome == "changed":
                    changed = True
                unresolved.append(reduced)
            # Promote fully-known domains to assignments.
            for name, domain in domains.items():
                if name not in assignment and domain.fully_known:
                    value = domain.value
                    if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                        return "unsat", []
                    assignment[name] = value
                    changed = True
            pending = unresolved
            if not changed:
                break
        return "ok", pending

    def _propagate_one(
        self, constraint: Expr, assignment: dict[str, int], domains: dict[str, _Domain]
    ) -> str:
        if not isinstance(constraint, CmpExpr):
            return "none"
        lhs, rhs, pred = constraint.lhs, constraint.rhs, constraint.pred
        # Normalise so the constant (if any) is on the right.
        if isinstance(lhs, Const) and not isinstance(rhs, Const):
            lhs, rhs = rhs, lhs
            pred = {
                CmpKind.ULT: CmpKind.UGT,
                CmpKind.ULE: CmpKind.UGE,
                CmpKind.UGT: CmpKind.ULT,
                CmpKind.UGE: CmpKind.ULE,
            }.get(pred, pred)
        if not isinstance(rhs, Const):
            return "none"
        target = rhs.value

        if pred is CmpKind.EQ:
            matched = self._match_masked_shift(lhs)
            if matched is not None:
                symbol, shift, mask = matched
                domain = self._domain_for(symbol, domains)
                if target & ~mask:
                    return "unsat"
                if not domain.set_bits(mask << shift, (target & mask) << shift):
                    return "unsat"
                return "changed"
            inverted = self._invert_raw(lhs, target)
            if inverted is not None:
                symbol, value = inverted
                domain = self._domain_for(symbol, domains)
                if value > symbol.mask:
                    return "unsat"
                if not domain.set_bits(symbol.mask, value):
                    return "unsat"
                return "changed"
            decomposed = self._decompose_disjoint(lhs, target)
            if decomposed is not None:
                outcome = "none"
                for sub_expr, sub_target in decomposed:
                    sub_result = self._propagate_one(
                        CmpExpr(pred=CmpKind.EQ, lhs=sub_expr, rhs=Const(sub_target)),
                        assignment,
                        domains,
                    )
                    if sub_result == "unsat":
                        return "unsat"
                    if sub_result == "changed":
                        outcome = "changed"
                return outcome
            return "none"

        if isinstance(lhs, Sym):
            domain = self._domain_for(lhs, domains)
            if pred is CmpKind.NE:
                if len(domain.exclusions) < 4096:
                    domain.exclusions.add(target & lhs.mask)
                return "changed"
            if pred is CmpKind.ULT:
                ok = domain.constrain_interval(hi=target - 1) if target > 0 else False
            elif pred is CmpKind.ULE:
                ok = domain.constrain_interval(hi=target)
            elif pred is CmpKind.UGT:
                ok = domain.constrain_interval(lo=target + 1)
            elif pred is CmpKind.UGE:
                ok = domain.constrain_interval(lo=target)
            else:
                return "none"
            return "changed" if ok else "unsat"
        return "none"

    def _domain_for(self, symbol: Sym, domains: dict[str, _Domain]) -> _Domain:
        if symbol.name not in domains:
            domains[symbol.name] = _Domain(symbol)
        return domains[symbol.name]

    @staticmethod
    def _match_masked_shift(expr: Expr) -> tuple[Sym, int, int] | None:
        """Match ``(sym >> shift) & mask`` (shift and/or mask optional).

        The match is a pure function of the (interned) node, so results are
        memoised process-wide — propagation re-examines the same constraint
        shapes thousands of times per analysis.
        """
        try:
            return _MASKED_SHIFT_MEMO[expr]
        except KeyError:
            pass
        shift = 0
        mask = MACHINE_MASK
        node = expr
        if isinstance(node, BinExpr) and node.op is BinOpKind.AND and isinstance(node.rhs, Const):
            mask = node.rhs.value
            node = node.lhs
        if isinstance(node, BinExpr) and node.op is BinOpKind.LSHR and isinstance(node.rhs, Const):
            shift = node.rhs.value
            node = node.lhs
        if isinstance(node, Sym):
            mask &= node.mask >> shift
            matched = (node, shift, mask)
        else:
            matched = None
        if len(_MASKED_SHIFT_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _MASKED_SHIFT_MEMO.clear()
        _MASKED_SHIFT_MEMO[expr] = matched
        return matched

    def _possible_bits(self, expr: Expr) -> int | None:
        """Upper bound on which bits of ``expr`` can ever be non-zero.

        Returns ``None`` when no useful bound can be computed (e.g. for
        subtraction or division, whose results can spill into any bit).
        Memoised per interned node.
        """
        try:
            return _POSSIBLE_BITS_MEMO[expr]
        except KeyError:
            pass
        bits = self._possible_bits_uncached(expr)
        if len(_POSSIBLE_BITS_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _POSSIBLE_BITS_MEMO.clear()
        _POSSIBLE_BITS_MEMO[expr] = bits
        return bits

    def _possible_bits_uncached(self, expr: Expr) -> int | None:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            return expr.mask
        if isinstance(expr, BinExpr):
            lhs = self._possible_bits(expr.lhs)
            rhs = self._possible_bits(expr.rhs)
            if expr.op in (BinOpKind.OR, BinOpKind.XOR):
                if lhs is None or rhs is None:
                    return None
                return lhs | rhs
            if expr.op is BinOpKind.AND:
                if lhs is None and rhs is None:
                    return None
                if lhs is None:
                    return rhs
                if rhs is None:
                    return lhs
                return lhs & rhs
            if expr.op is BinOpKind.SHL and isinstance(expr.rhs, Const):
                if lhs is None or expr.rhs.value >= 64:
                    return None
                return (lhs << expr.rhs.value) & MACHINE_MASK
            if expr.op is BinOpKind.LSHR and isinstance(expr.rhs, Const):
                if lhs is None:
                    return None
                return lhs >> expr.rhs.value
            if expr.op is BinOpKind.ADD:
                # Addition of values with disjoint possible bits cannot carry,
                # so it behaves exactly like OR.
                if lhs is None or rhs is None or (lhs & rhs):
                    return None
                return lhs | rhs
            return None
        if isinstance(expr, CmpExpr):
            return 1
        return None

    def _decompose_disjoint(self, expr: Expr, target: int) -> list[tuple[Expr, int]] | None:
        """Split ``expr == target`` into per-field constraints.

        Applies when ``expr`` is an OR/XOR/ADD combination of sub-expressions
        whose possible bit masks are pairwise disjoint — the shape produced
        by packing flow keys as ``field_a | (field_b << k) | ...``.
        Memoised per (node, target); callers must not mutate the result.
        """
        key = (expr, target)
        try:
            return _DECOMPOSE_MEMO[key]
        except KeyError:
            pass
        decomposed = self._decompose_disjoint_uncached(expr, target)
        if len(_DECOMPOSE_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _DECOMPOSE_MEMO.clear()
        _DECOMPOSE_MEMO[key] = decomposed
        return decomposed

    def _decompose_disjoint_uncached(self, expr: Expr, target: int) -> list[tuple[Expr, int]] | None:
        if not isinstance(expr, BinExpr) or expr.op not in (
            BinOpKind.OR,
            BinOpKind.XOR,
            BinOpKind.ADD,
        ):
            return None
        parts: list[Expr] = []

        def flatten(node: Expr) -> None:
            if isinstance(node, BinExpr) and node.op is expr.op:
                flatten(node.lhs)
                flatten(node.rhs)
            else:
                parts.append(node)

        flatten(expr)
        if len(parts) < 2:
            return None
        masks: list[int] = []
        union = 0
        for part in parts:
            mask = self._possible_bits(part)
            if mask is None or (mask & union):
                return None
            masks.append(mask)
            union |= mask
        if target & ~union:
            return None  # target needs bits no part can produce: leave to search
        return [(part, target & mask) for part, mask in zip(parts, masks)]

    # -- algebraic inversion ---------------------------------------------------

    def _invert(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        """Solve ``expr == target`` when expr contains one symbol occurrence.

        Returns ``None`` when no solution exists *within the symbol's
        declared width*: an inversion chain that produces a value wider than
        the symbol has no in-range solution, so the raw (overflowing) value
        must not escape to callers that would truncate it into a bogus
        candidate.
        """
        inverted = self._invert_raw(expr, target)
        if inverted is None:
            return None
        symbol, value = inverted
        if value > symbol.mask:
            return None
        return symbol, value

    def _invert_raw(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        """Like :meth:`_invert` but keeps out-of-width values.

        Used by propagation, which turns an overflowing inversion into a
        definite UNSAT (every implemented inversion step only ever *adds*
        free low bits, so an out-of-width canonical solution means every
        solution is out of width).  Memoised per (node, target).
        """
        key = (expr, target)
        try:
            return _INVERT_MEMO[key]
        except KeyError:
            pass
        inverted = self._invert_raw_uncached(expr, target)
        if len(_INVERT_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _INVERT_MEMO.clear()
        _INVERT_MEMO[key] = inverted
        return inverted

    def _invert_raw_uncached(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        occurrences = self._count_symbol_occurrences(expr)
        if len(occurrences) != 1 or next(iter(occurrences.values())) != 1:
            return None
        value = self._invert_rec(expr, target)
        if value is None:
            return None
        symbol = next(iter(symbols_of(expr)))
        return symbol, value

    def _count_symbol_occurrences(self, expr: Expr) -> dict[str, int]:
        counts: dict[str, int] = {}

        def walk(node: Expr) -> None:
            if isinstance(node, Sym):
                counts[node.name] = counts.get(node.name, 0) + 1
            elif isinstance(node, BinExpr):
                walk(node.lhs)
                walk(node.rhs)
            elif isinstance(node, CmpExpr):
                walk(node.lhs)
                walk(node.rhs)
            elif isinstance(node, SelectExpr):
                walk(node.cond)
                walk(node.if_true)
                walk(node.if_false)

        walk(expr)
        return counts

    def _invert_rec(self, expr: Expr, target: int) -> int | None:
        target &= MACHINE_MASK
        if isinstance(expr, Sym):
            return target
        if isinstance(expr, Const):
            return target if expr.value == target else None
        if not isinstance(expr, BinExpr):
            return None
        lhs, rhs, op = expr.lhs, expr.rhs, expr.op
        lhs_symbolic = bool(symbols_of(lhs))
        symbolic, concrete = (lhs, rhs) if lhs_symbolic else (rhs, lhs)
        if symbols_of(concrete):
            return None
        if not isinstance(concrete, Const):
            return None
        c = concrete.value

        if op is BinOpKind.ADD:
            return self._invert_rec(symbolic, (target - c) & MACHINE_MASK)
        if op is BinOpKind.XOR:
            return self._invert_rec(symbolic, target ^ c)
        if op is BinOpKind.SUB:
            if lhs_symbolic:
                return self._invert_rec(symbolic, (target + c) & MACHINE_MASK)
            return self._invert_rec(symbolic, (c - target) & MACHINE_MASK)
        if op is BinOpKind.MUL:
            if c % 2 == 1:
                inverse = pow(c, -1, 1 << 64)
                return self._invert_rec(symbolic, (target * inverse) & MACHINE_MASK)
            if c != 0 and target % c == 0:
                return self._invert_rec(symbolic, target // c)
            return None
        if op is BinOpKind.SHL and not lhs_symbolic:
            return None
        if op is BinOpKind.SHL:
            if c >= 64:
                return self._invert_rec(symbolic, 0) if target == 0 else None
            if target & ((1 << c) - 1):
                return None
            return self._invert_rec(symbolic, target >> c)
        if op is BinOpKind.LSHR and lhs_symbolic:
            if c >= 64:
                return self._invert_rec(symbolic, 0) if target == 0 else None
            return self._invert_rec(symbolic, (target << c) & MACHINE_MASK)
        if op is BinOpKind.AND:
            if target & ~c:
                return None
            return self._invert_rec(symbolic, target)
        if op is BinOpKind.OR:
            if (target & c) != c:
                return None
            return self._invert_rec(symbolic, target & ~c)
        if op is BinOpKind.UREM and lhs_symbolic:
            if c == 0 or target >= c:
                return None
            return self._invert_rec(symbolic, target)
        if op is BinOpKind.UDIV and lhs_symbolic:
            if c == 0:
                return None
            return self._invert_rec(symbolic, target * c)
        return None

    # -- backtracking search ----------------------------------------------------

    def _search(
        self,
        constraints: list[Expr],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
        rng: random.Random,
        extra_candidates: dict[str, list[int]],
    ) -> bool:
        unresolved = [reduce_expr(c, assignment) for c in constraints]
        unresolved = [c for c in unresolved if not (isinstance(c, Const) and c.value)]
        if any(isinstance(c, Const) and c.value == 0 for c in unresolved):
            return False
        unassigned = sorted(
            {s.name for c in unresolved for s in symbols_of(c)} - set(assignment)
        )
        if not unassigned:
            return all(evaluate(c, assignment) for c in unresolved) if unresolved else True

        # Order symbols by how many constraints mention them (most first).
        mention_count = {name: 0 for name in unassigned}
        for constraint in unresolved:
            for symbol in symbols_of(constraint):
                if symbol.name in mention_count:
                    mention_count[symbol.name] += 1
        unassigned.sort(key=lambda name: -mention_count[name])

        # Index constraints by mentioned symbol: assigning one symbol can
        # only change the reduction of constraints that mention it, so each
        # backtracking node re-checks O(relevant) constraints, not O(all).
        by_symbol = {
            name: [c for c in unresolved if name in c.symbol_names] for name in unassigned
        }
        budget = [self.search_budget]
        return self._backtrack(
            unassigned, 0, unresolved, by_symbol, assignment, domains, rng, budget, extra_candidates
        )

    def _backtrack(
        self,
        order: list[str],
        position: int,
        constraints: list[Expr],
        by_symbol: dict[str, list[Expr]],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
        rng: random.Random,
        budget: list[int],
        extra_candidates: dict[str, list[int]],
    ) -> bool:
        if budget[0] <= 0:
            return False
        if position == len(order):
            # Equivalent to evaluating every fully-concrete reduction: the
            # inputs are pre-reduced, so a reduction is symbol-free exactly
            # when it is constant (non-constant reductions were never checked).
            for c in constraints:
                if reduce_concrete(c, assignment) == 0:
                    return False
            return True
        name = order[position]
        domain = domains.get(name)
        if domain is None:
            # Symbol disappeared after substitution; skip it.
            return self._backtrack(
                order, position + 1, constraints, by_symbol, assignment, domains, rng, budget,
                extra_candidates,
            )
        relevant = by_symbol.get(name, [])
        candidates = list(extra_candidates.get(name, []))
        candidates += self._suggest_from_constraints(name, relevant, assignment)
        candidates += domain.candidates(rng)
        seen: set[int] = set()
        for candidate in candidates:
            candidate &= domain.symbol.mask
            if candidate in seen:
                continue
            seen.add(candidate)
            if candidate in domain.exclusions or not (domain.lo <= candidate <= domain.hi):
                continue
            if (candidate & domain.known_mask) != (domain.known_value & domain.known_mask):
                continue
            budget[0] -= 1
            if budget[0] <= 0:
                return False
            assignment[name] = candidate
            # Only constraints mentioning ``name`` can have changed their
            # reduction; everything else was vetted at an earlier level.
            if self._consistent(relevant, assignment) and self._backtrack(
                order, position + 1, constraints, by_symbol, assignment, domains, rng, budget,
                extra_candidates,
            ):
                return True
            del assignment[name]
        return False

    def _consistent(self, constraints: list[Expr], assignment: dict[str, int]) -> bool:
        """Check constraints that have become fully concrete."""
        for constraint in constraints:
            if reduce_concrete(constraint, assignment) == 0:
                return False
        return True

    def _suggest_from_constraints(
        self, name: str, constraints: list[Expr], assignment: dict[str, int]
    ) -> list[int]:
        """Derive candidate values for ``name`` by inverting EQ constraints."""
        suggestions: list[int] = []
        for constraint in constraints:
            if not isinstance(constraint, CmpExpr) or constraint.pred is not CmpKind.EQ:
                continue
            reduced = reduce_expr(constraint, assignment)
            if not isinstance(reduced, CmpExpr):
                continue
            lhs, rhs = reduced.lhs, reduced.rhs
            if isinstance(lhs, Const) and not isinstance(rhs, Const):
                lhs, rhs = rhs, lhs
            if not isinstance(rhs, Const):
                continue
            names = {s.name for s in symbols_of(lhs)}
            if names != {name}:
                continue
            inverted = self._invert(lhs, rhs.value)
            if inverted is not None:
                suggestions.append(inverted[1])
        return suggestions
