"""Constraint solver for CASTAN path constraints.

The paths CASTAN explores constrain packet-header symbols with equality and
ordering comparisons over masked/shifted/arithmetic combinations of those
symbols (plus unconstrained havoc symbols standing in for hash values).
This solver is specialised to that class: it is not a general SMT solver,
but it plays the same role KLEE's solver does in the paper — deciding
branch feasibility and producing concrete models for the selected state.

It works in three phases:

1. **Propagation** — constraints are normalised and pattern-matched against
   per-symbol domains: fixed assignments, known-bit masks (for
   ``(sym >> k) & m == c`` shapes, which is what trie bit tests and lookup
   indices produce), intervals and small exclusion sets.  Contradictions
   found here make the result UNSAT.
2. **Algebraic inversion** — equalities whose non-constant side contains a
   single symbol occurrence are inverted through ADD/SUB/XOR/MUL/SHL/LSHR/
   AND/OR/UDIV/UREM chains to propose exact values.
3. **Bounded backtracking** — remaining symbols are enumerated from
   constraint-derived candidate values with a node budget; all constraints
   are re-checked by evaluation, so any model returned is sound.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.ir.instructions import BinOpKind, CmpKind
from repro.symbex.expr import (
    BinExpr,
    CmpExpr,
    Const,
    Expr,
    SelectExpr,
    Sym,
    column_evaluator,
    evaluate,
    reduce_concrete,
    reduce_expr,
    register_cache_clear_hook,
    simplify,
    symbols_of,
)
from repro.symbex.expr import _np as _NP  # None without the [vector] extra

MACHINE_MASK = (1 << 64) - 1

#: Memos for the pure per-node constraint analyses (pattern matching,
#: algebraic inversion, disjoint-field decomposition, possible-bit bounds).
#: Propagation re-runs these on the same interned nodes thousands of times
#: per analysis; all of them are pure functions of their (interned)
#: arguments.  They key on expression identity, so they must not survive an
#: intern-table clear.
_MASKED_SHIFT_MEMO: dict[Expr, "tuple[Sym, int, int] | None"] = {}
_INVERT_MEMO: dict[tuple, "tuple[Sym, int] | None"] = {}
_DECOMPOSE_MEMO: dict[tuple, "list[tuple[Expr, int]] | None"] = {}
_POSSIBLE_BITS_MEMO: dict[Expr, "int | None"] = {}
#: Compiled propagation plans (see ``Solver._propagate_one``).
_PROPAGATE_PLAN_MEMO: dict[Expr, tuple] = {}

_ANALYSIS_MEMO_LIMIT = 1 << 17


def _clear_analysis_memos() -> None:
    _MASKED_SHIFT_MEMO.clear()
    _INVERT_MEMO.clear()
    _DECOMPOSE_MEMO.clear()
    _POSSIBLE_BITS_MEMO.clear()
    _PROPAGATE_PLAN_MEMO.clear()


register_cache_clear_hook(_clear_analysis_memos)


@dataclass
class Model:
    """A satisfying assignment of symbol names to concrete values."""

    values: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.values[name]

    def get(self, name: str, default: int = 0) -> int:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def copy(self) -> "Model":
        return Model(values=dict(self.values))


@dataclass
class SolverResult:
    """Outcome of a solver query."""

    status: str  # "sat", "unsat" or "unknown"
    model: Model | None = None
    reason: str = ""

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


class _Domain:
    """Per-symbol domain tracked during propagation."""

    __slots__ = ("symbol", "known_mask", "known_value", "lo", "hi", "exclusions")

    def __init__(self, symbol: Sym) -> None:
        self.symbol = symbol
        self.known_mask = 0
        self.known_value = 0
        self.lo = 0
        self.hi = symbol.mask
        self.exclusions: set[int] = set()

    def clone(self) -> "_Domain":
        """Independent copy (for copy-on-write solver contexts)."""
        other = _Domain(self.symbol)
        other.known_mask = self.known_mask
        other.known_value = self.known_value
        other.lo = self.lo
        other.hi = self.hi
        other.exclusions = set(self.exclusions)
        return other

    def signature(self) -> tuple[int, int, int, int, int]:
        """Cheap fingerprint used to detect real propagation progress."""
        return (self.known_mask, self.known_value, self.lo, self.hi, len(self.exclusions))

    @property
    def fully_known(self) -> bool:
        return self.known_mask == self.symbol.mask

    @property
    def value(self) -> int:
        return self.known_value

    def set_bits(self, mask: int, value: int) -> bool:
        """Record that ``sym & mask == value & mask``; False on conflict."""
        mask &= self.symbol.mask
        value &= mask
        overlap = self.known_mask & mask
        if (self.known_value & overlap) != (value & overlap):
            return False
        self.known_mask |= mask
        self.known_value |= value
        return True

    def constrain_interval(self, lo: int | None = None, hi: int | None = None) -> bool:
        if lo is not None:
            self.lo = max(self.lo, lo)
        if hi is not None:
            self.hi = min(self.hi, hi)
        return self.lo <= self.hi

    def candidates(self, rng: random.Random, limit: int = 12) -> list[int]:
        """Concrete values to try during backtracking, most promising first."""
        sym_mask = self.symbol.mask
        known_mask = self.known_mask
        known_bits = self.known_value & known_mask
        lo, hi = self.lo, self.hi
        exclusions = self.exclusions
        base = known_bits
        free = sym_mask & ~known_mask
        out: list[int] = []
        # ``seen`` also records values the filters rejected: re-pushing a
        # rejected value is a no-op either way, and skipping the re-check is
        # the point (this is the solver's hottest function).
        seen: set[int] = set()

        def push(value: int) -> None:
            value &= sym_mask
            if value in seen:
                return
            seen.add(value)
            if (value & known_mask) != known_bits:
                return
            if not (lo <= value <= hi):
                return
            if value in exclusions:
                return
            out.append(value)

        push(base)
        push(base | free)  # all free bits set
        push(max(lo, base))
        push(min(hi, base | free))
        # Small intervals (e.g. produced by port-range or count constraints)
        # are enumerated exhaustively so exclusions cannot starve the search.
        if hi - lo < limit * 4:
            for value in range(lo, hi + 1):
                push(value)
        attempts = 0
        getrandbits = rng.getrandbits
        while len(out) < limit and attempts < limit * 4:
            attempts += 1
            push(base | (getrandbits(64) & free))
        return out


class _TrackedDomains:
    """Signature-tracking view over a domains dict for ``_propagate``.

    ``_propagate_one`` optimistically reports progress whenever a pattern
    matches, even when the domain write was a no-op; taken at face value
    that spins ``_propagate`` to its rounds cap on every query.  This view
    records each domain's signature on first access per round so the loop
    can wake up only on *real* change — the same trick
    ``incremental._CowDomains`` uses, minus the copy-on-write (monolithic
    solving owns its domains).  A round with no signature change, no new
    domain and no assignment promotion is a proven fixpoint: every later
    round would re-reduce the same constraints against the same domains and
    repeat the same idempotent writes.
    """

    __slots__ = ("base", "pre_signatures")

    def __init__(self, base: dict[str, _Domain]) -> None:
        self.base = base
        self.pre_signatures: dict[str, "tuple | None"] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.base

    def __getitem__(self, name: str) -> _Domain:
        domain = self.base[name]
        if name not in self.pre_signatures:
            self.pre_signatures[name] = domain.signature()
        return domain

    def __setitem__(self, name: str, domain: _Domain) -> None:
        if name not in self.pre_signatures:
            self.pre_signatures[name] = None  # newly created: counts as change
        self.base[name] = domain

    def round_changed(self) -> bool:
        base = self.base
        return any(
            pre is None or base[name].signature() != pre
            for name, pre in self.pre_signatures.items()
        )

    def reset_round(self) -> None:
        self.pre_signatures = {}


class Solver:
    """Bit-vector constraint solver (see module docstring)."""

    _uids = itertools.count(1)

    def __init__(self, search_budget: int = 6000, seed: int = 0xCA57A) -> None:
        self.search_budget = search_budget
        self._seed = seed
        # Process-unique id for memo keys: unlike ``id(self)`` it is never
        # recycled after garbage collection.
        self.uid = next(Solver._uids)

    def __getstate__(self) -> dict:
        # ``uid`` is process-local: a pickled solver loaded into another
        # process must not collide with uids already handed out there.
        state = dict(self.__dict__)
        del state["uid"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.uid = next(Solver._uids)

    # -- public API ----------------------------------------------------------

    def check(
        self,
        constraints: list[Expr],
        defaults: dict[str, int] | None = None,
        extra_candidates: dict[str, list[int]] | None = None,
    ) -> SolverResult:
        """Find a model satisfying all ``constraints``.

        ``defaults`` supplies values for symbols left unconstrained (so that
        synthesized packets get sensible field values); ``extra_candidates``
        lets callers suggest values to try first for specific symbols (used
        by rainbow-table reconciliation).
        """
        constraints = [simplify(c) for c in constraints]
        symbols = self._collect_symbols(constraints)
        assignment: dict[str, int] = {}
        domains = {s.name: _Domain(s) for s in symbols.values()}

        status, remaining = self._propagate(constraints, assignment, domains)
        if status == "unsat":
            return SolverResult(status="unsat", reason="propagation found a contradiction")

        rng = random.Random(self._seed)
        # Default field values are tried first during backtracking: workloads
        # synthesized from weakly-constrained paths then look like realistic
        # packets instead of zero-filled ones, and monotone default keys often
        # satisfy tree-ordering constraints directly.
        merged_candidates: dict[str, list[int]] = {
            name: [value] for name, value in (defaults or {}).items()
        }
        for name, values in (extra_candidates or {}).items():
            merged_candidates.setdefault(name, [])
            merged_candidates[name] = list(values) + merged_candidates[name]
        ok = self._search(remaining, assignment, domains, rng, merged_candidates)
        if not ok:
            # The search is incomplete; report unknown rather than unsat
            # unless propagation alone already proved a contradiction.
            return SolverResult(status="unknown", reason="search budget exhausted")

        model = Model(values=dict(assignment))
        for name, symbol in symbols.items():
            if name not in model.values:
                default = (defaults or {}).get(name, 0)
                domain = domains[name]
                value = (default & ~domain.known_mask) | domain.known_value
                value &= symbol.mask
                if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                    for candidate in domain.candidates(rng):
                        value = candidate
                        break
                model.values[name] = value
        # Final soundness check: every constraint must evaluate to true.
        for constraint in constraints:
            if evaluate(constraint, model.values) == 0:
                return SolverResult(status="unknown", reason=f"model check failed: {constraint}")
        return SolverResult(status="sat", model=model)

    def is_satisfiable(self, constraints: list[Expr]) -> bool:
        """True when a model was found (unknown counts as unsatisfiable)."""
        return self.check(constraints).is_sat

    def quick_feasible(self, constraints: list[Expr]) -> bool:
        """Cheap feasibility filter used at branch points.

        Runs propagation only: returns ``False`` only when a definite
        contradiction is found, ``True`` otherwise (possibly optimistically).
        """
        constraints = [simplify(c) for c in constraints]
        symbols = self._collect_symbols(constraints)
        assignment: dict[str, int] = {}
        domains = {s.name: _Domain(s) for s in symbols.values()}
        status, _remaining = self._propagate(constraints, assignment, domains)
        return status != "unsat"

    # -- propagation ---------------------------------------------------------

    def _collect_symbols(self, constraints: list[Expr]) -> dict[str, Sym]:
        symbols: dict[str, Sym] = {}
        for constraint in constraints:
            for symbol in symbols_of(constraint):
                symbols[symbol.name] = symbol
        return symbols

    def _propagate(
        self,
        constraints: list[Expr],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
    ) -> tuple[str, list[Expr]]:
        """Fixed-point propagation; returns (status, unresolved constraints)."""
        pending = list(constraints)
        tracked = _TrackedDomains(domains)
        for _round in range(32):
            tracked.reset_round()
            changed = False
            unresolved: list[Expr] = []
            for constraint in pending:
                reduced = reduce_expr(constraint, assignment)
                if isinstance(reduced, Const):
                    if reduced.value == 0:
                        return "unsat", []
                    continue
                if self._propagate_one(reduced, assignment, tracked) == "unsat":
                    return "unsat", []
                unresolved.append(reduced)
            # Promote fully-known domains to assignments.
            for name, domain in domains.items():
                if name not in assignment and domain.fully_known:
                    value = domain.value
                    if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                        return "unsat", []
                    assignment[name] = value
                    changed = True
            pending = unresolved
            if not changed and not tracked.round_changed():
                break
        return "ok", pending

    def _propagate_one(
        self, constraint: Expr, assignment: dict[str, int], domains: dict[str, _Domain]
    ) -> str:
        """Propagate one reduced constraint into the domains.

        The pattern analysis (masked-shift match, algebraic inversion,
        disjoint decomposition) is a pure function of the interned constraint
        node, so it compiles once into a small *plan* tuple that later calls
        replay against the current domains.  The plan preserves every domain
        *touch* of the direct implementation — tracked-domain views count a
        first access as potential change, so even a touch on an unsat path
        is observable in the propagation round count.
        """
        try:
            plan = _PROPAGATE_PLAN_MEMO[constraint]
        except KeyError:
            plan = self._compile_propagation(constraint)
            if len(_PROPAGATE_PLAN_MEMO) >= _ANALYSIS_MEMO_LIMIT:
                _PROPAGATE_PLAN_MEMO.clear()
            _PROPAGATE_PLAN_MEMO[constraint] = plan
        return self._apply_propagation(plan, domains)

    def _compile_propagation(self, constraint: Expr) -> tuple:
        if not isinstance(constraint, CmpExpr):
            return ("none", None)
        lhs, rhs, pred = constraint.lhs, constraint.rhs, constraint.pred
        # Normalise so the constant (if any) is on the right.
        if isinstance(lhs, Const) and not isinstance(rhs, Const):
            lhs, rhs = rhs, lhs
            pred = {
                CmpKind.ULT: CmpKind.UGT,
                CmpKind.ULE: CmpKind.UGE,
                CmpKind.UGT: CmpKind.ULT,
                CmpKind.UGE: CmpKind.ULE,
            }.get(pred, pred)
        if not isinstance(rhs, Const):
            return ("none", None)
        return self._compile_propagation_pred(pred, lhs, rhs.value)

    def _compile_propagation_pred(self, pred: CmpKind, lhs: Expr, target: int) -> tuple:
        if pred is CmpKind.EQ:
            matched = self._match_masked_shift(lhs)
            if matched is not None:
                symbol, shift, mask = matched
                if target & ~mask:
                    return ("unsat", symbol)
                return ("bits", symbol, mask << shift, (target & mask) << shift)
            inverted = self._invert_raw(lhs, target)
            if inverted is not None:
                symbol, value = inverted
                if value > symbol.mask:
                    return ("unsat", symbol)
                return ("bits", symbol, symbol.mask, value)
            decomposed = self._decompose_disjoint(lhs, target)
            if decomposed is not None:
                return (
                    "multi",
                    tuple(
                        self._compile_propagation_pred(CmpKind.EQ, sub_expr, sub_target)
                        for sub_expr, sub_target in decomposed
                    ),
                )
            return ("none", None)

        if pred is CmpKind.NE and not isinstance(lhs, Sym):
            # Disequality over a bit-field (``(sym >> s) & m != c``): no bits
            # can be pinned, but once an earlier equality has pinned the same
            # field to exactly ``c`` the path is definitely contradictory —
            # the shape chains produce when two stages test one packet field
            # with opposite outcomes.
            matched = self._match_masked_shift(lhs)
            if matched is not None:
                symbol, shift, mask = matched
                if target & ~mask:
                    return ("none", symbol)  # lhs can never equal target
                return ("bits_ne", symbol, mask << shift, (target & mask) << shift)
            inverted = self._invert_raw(lhs, target)
            if inverted is not None:
                # ``sym == value`` implies ``lhs == target``, so the
                # disequality soundly excludes the canonical preimage.
                symbol, value = inverted
                if value <= symbol.mask:
                    return ("excl", symbol, value)
                return ("none", symbol)
            return ("none", None)

        if isinstance(lhs, Sym):
            if pred is CmpKind.NE:
                return ("excl", lhs, target & lhs.mask)
            if pred is CmpKind.ULT:
                return ("hi", lhs, target - 1) if target > 0 else ("unsat", lhs)
            if pred is CmpKind.ULE:
                return ("hi", lhs, target)
            if pred is CmpKind.UGT:
                return ("lo", lhs, target + 1)
            if pred is CmpKind.UGE:
                return ("lo", lhs, target)
            return ("none", lhs)  # unreachable with the current CmpKind set
        return ("none", None)

    def _apply_propagation(self, plan: tuple, domains: dict[str, _Domain]) -> str:
        tag = plan[0]
        if tag == "bits":
            domain = self._domain_for(plan[1], domains)
            if not domain.set_bits(plan[2], plan[3]):
                return "unsat"
            return "changed"
        if tag == "multi":
            outcome = "none"
            for sub in plan[1]:
                result = self._apply_propagation(sub, domains)
                if result == "unsat":
                    return "unsat"
                if result == "changed":
                    outcome = "changed"
            return outcome
        if tag == "bits_ne":
            domain = self._domain_for(plan[1], domains)
            mask, value = plan[2], plan[3]
            if (domain.known_mask & mask) == mask and (domain.known_value & mask) == value:
                return "unsat"
            return "none"
        if tag == "lo":
            domain = self._domain_for(plan[1], domains)
            return "changed" if domain.constrain_interval(lo=plan[2]) else "unsat"
        if tag == "hi":
            domain = self._domain_for(plan[1], domains)
            return "changed" if domain.constrain_interval(hi=plan[2]) else "unsat"
        if tag == "excl":
            domain = self._domain_for(plan[1], domains)
            if len(domain.exclusions) < 4096:
                domain.exclusions.add(plan[2])
            return "changed"
        if tag == "unsat":
            if plan[1] is not None:
                self._domain_for(plan[1], domains)
            return "unsat"
        if plan[1] is not None:
            self._domain_for(plan[1], domains)
        return "none"

    def _domain_for(self, symbol: Sym, domains: dict[str, _Domain]) -> _Domain:
        if symbol.name not in domains:
            domains[symbol.name] = _Domain(symbol)
        return domains[symbol.name]

    @staticmethod
    def _match_masked_shift(expr: Expr) -> tuple[Sym, int, int] | None:
        """Match ``(sym >> shift) & mask`` (shift and/or mask optional).

        The match is a pure function of the (interned) node, so results are
        memoised process-wide — propagation re-examines the same constraint
        shapes thousands of times per analysis.
        """
        try:
            return _MASKED_SHIFT_MEMO[expr]
        except KeyError:
            pass
        shift = 0
        mask = MACHINE_MASK
        node = expr
        if isinstance(node, BinExpr) and node.op is BinOpKind.AND and isinstance(node.rhs, Const):
            mask = node.rhs.value
            node = node.lhs
        if isinstance(node, BinExpr) and node.op is BinOpKind.LSHR and isinstance(node.rhs, Const):
            shift = node.rhs.value
            node = node.lhs
        if isinstance(node, Sym):
            mask &= node.mask >> shift
            matched = (node, shift, mask)
        else:
            matched = None
        if len(_MASKED_SHIFT_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _MASKED_SHIFT_MEMO.clear()
        _MASKED_SHIFT_MEMO[expr] = matched
        return matched

    def _possible_bits(self, expr: Expr) -> int | None:
        """Upper bound on which bits of ``expr`` can ever be non-zero.

        Returns ``None`` when no useful bound can be computed (e.g. for
        subtraction or division, whose results can spill into any bit).
        Memoised per interned node.
        """
        try:
            return _POSSIBLE_BITS_MEMO[expr]
        except KeyError:
            pass
        bits = self._possible_bits_uncached(expr)
        if len(_POSSIBLE_BITS_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _POSSIBLE_BITS_MEMO.clear()
        _POSSIBLE_BITS_MEMO[expr] = bits
        return bits

    def _possible_bits_uncached(self, expr: Expr) -> int | None:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Sym):
            return expr.mask
        if isinstance(expr, BinExpr):
            lhs = self._possible_bits(expr.lhs)
            rhs = self._possible_bits(expr.rhs)
            if expr.op in (BinOpKind.OR, BinOpKind.XOR):
                if lhs is None or rhs is None:
                    return None
                return lhs | rhs
            if expr.op is BinOpKind.AND:
                if lhs is None and rhs is None:
                    return None
                if lhs is None:
                    return rhs
                if rhs is None:
                    return lhs
                return lhs & rhs
            if expr.op is BinOpKind.SHL and isinstance(expr.rhs, Const):
                if lhs is None or expr.rhs.value >= 64:
                    return None
                return (lhs << expr.rhs.value) & MACHINE_MASK
            if expr.op is BinOpKind.LSHR and isinstance(expr.rhs, Const):
                if lhs is None:
                    return None
                return lhs >> expr.rhs.value
            if expr.op is BinOpKind.ADD:
                # Addition of values with disjoint possible bits cannot carry,
                # so it behaves exactly like OR.
                if lhs is None or rhs is None or (lhs & rhs):
                    return None
                return lhs | rhs
            return None
        if isinstance(expr, CmpExpr):
            return 1
        return None

    def _decompose_disjoint(self, expr: Expr, target: int) -> list[tuple[Expr, int]] | None:
        """Split ``expr == target`` into per-field constraints.

        Applies when ``expr`` is an OR/XOR/ADD combination of sub-expressions
        whose possible bit masks are pairwise disjoint — the shape produced
        by packing flow keys as ``field_a | (field_b << k) | ...``.
        Memoised per (node, target); callers must not mutate the result.
        """
        key = (expr, target)
        try:
            return _DECOMPOSE_MEMO[key]
        except KeyError:
            pass
        decomposed = self._decompose_disjoint_uncached(expr, target)
        if len(_DECOMPOSE_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _DECOMPOSE_MEMO.clear()
        _DECOMPOSE_MEMO[key] = decomposed
        return decomposed

    def _decompose_disjoint_uncached(self, expr: Expr, target: int) -> list[tuple[Expr, int]] | None:
        if not isinstance(expr, BinExpr) or expr.op not in (
            BinOpKind.OR,
            BinOpKind.XOR,
            BinOpKind.ADD,
        ):
            return None
        parts: list[Expr] = []

        def flatten(node: Expr) -> None:
            if isinstance(node, BinExpr) and node.op is expr.op:
                flatten(node.lhs)
                flatten(node.rhs)
            else:
                parts.append(node)

        flatten(expr)
        if len(parts) < 2:
            return None
        masks: list[int] = []
        union = 0
        for part in parts:
            mask = self._possible_bits(part)
            if mask is None or (mask & union):
                return None
            masks.append(mask)
            union |= mask
        if target & ~union:
            return None  # target needs bits no part can produce: leave to search
        return [(part, target & mask) for part, mask in zip(parts, masks)]

    # -- algebraic inversion ---------------------------------------------------

    def _invert(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        """Solve ``expr == target`` when expr contains one symbol occurrence.

        Returns ``None`` when no solution exists *within the symbol's
        declared width*: an inversion chain that produces a value wider than
        the symbol has no in-range solution, so the raw (overflowing) value
        must not escape to callers that would truncate it into a bogus
        candidate.
        """
        inverted = self._invert_raw(expr, target)
        if inverted is None:
            return None
        symbol, value = inverted
        if value > symbol.mask:
            return None
        return symbol, value

    def _invert_raw(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        """Like :meth:`_invert` but keeps out-of-width values.

        Used by propagation, which turns an overflowing inversion into a
        definite UNSAT (every implemented inversion step only ever *adds*
        free low bits, so an out-of-width canonical solution means every
        solution is out of width).  Memoised per (node, target).
        """
        key = (expr, target)
        try:
            return _INVERT_MEMO[key]
        except KeyError:
            pass
        inverted = self._invert_raw_uncached(expr, target)
        if len(_INVERT_MEMO) >= _ANALYSIS_MEMO_LIMIT:
            _INVERT_MEMO.clear()
        _INVERT_MEMO[key] = inverted
        return inverted

    def _invert_raw_uncached(self, expr: Expr, target: int) -> tuple[Sym, int] | None:
        occurrences = self._count_symbol_occurrences(expr)
        if len(occurrences) != 1 or next(iter(occurrences.values())) != 1:
            return None
        value = self._invert_rec(expr, target)
        if value is None:
            return None
        symbol = next(iter(symbols_of(expr)))
        return symbol, value

    def _count_symbol_occurrences(self, expr: Expr) -> dict[str, int]:
        counts: dict[str, int] = {}

        def walk(node: Expr) -> None:
            if isinstance(node, Sym):
                counts[node.name] = counts.get(node.name, 0) + 1
            elif isinstance(node, BinExpr):
                walk(node.lhs)
                walk(node.rhs)
            elif isinstance(node, CmpExpr):
                walk(node.lhs)
                walk(node.rhs)
            elif isinstance(node, SelectExpr):
                walk(node.cond)
                walk(node.if_true)
                walk(node.if_false)

        walk(expr)
        return counts

    def _invert_rec(self, expr: Expr, target: int) -> int | None:
        target &= MACHINE_MASK
        if isinstance(expr, Sym):
            return target
        if isinstance(expr, Const):
            return target if expr.value == target else None
        if not isinstance(expr, BinExpr):
            return None
        lhs, rhs, op = expr.lhs, expr.rhs, expr.op
        lhs_symbolic = bool(symbols_of(lhs))
        symbolic, concrete = (lhs, rhs) if lhs_symbolic else (rhs, lhs)
        if symbols_of(concrete):
            return None
        if not isinstance(concrete, Const):
            return None
        c = concrete.value

        if op is BinOpKind.ADD:
            return self._invert_rec(symbolic, (target - c) & MACHINE_MASK)
        if op is BinOpKind.XOR:
            return self._invert_rec(symbolic, target ^ c)
        if op is BinOpKind.SUB:
            if lhs_symbolic:
                return self._invert_rec(symbolic, (target + c) & MACHINE_MASK)
            return self._invert_rec(symbolic, (c - target) & MACHINE_MASK)
        if op is BinOpKind.MUL:
            if c % 2 == 1:
                inverse = pow(c, -1, 1 << 64)
                return self._invert_rec(symbolic, (target * inverse) & MACHINE_MASK)
            if c != 0 and target % c == 0:
                return self._invert_rec(symbolic, target // c)
            return None
        if op is BinOpKind.SHL and not lhs_symbolic:
            return None
        if op is BinOpKind.SHL:
            if c >= 64:
                return self._invert_rec(symbolic, 0) if target == 0 else None
            if target & ((1 << c) - 1):
                return None
            return self._invert_rec(symbolic, target >> c)
        if op is BinOpKind.LSHR and lhs_symbolic:
            if c >= 64:
                return self._invert_rec(symbolic, 0) if target == 0 else None
            return self._invert_rec(symbolic, (target << c) & MACHINE_MASK)
        if op is BinOpKind.AND:
            if target & ~c:
                return None
            return self._invert_rec(symbolic, target)
        if op is BinOpKind.OR:
            if (target & c) != c:
                return None
            return self._invert_rec(symbolic, target & ~c)
        if op is BinOpKind.UREM and lhs_symbolic:
            if c == 0 or target >= c:
                return None
            return self._invert_rec(symbolic, target)
        if op is BinOpKind.UDIV and lhs_symbolic:
            if c == 0:
                return None
            return self._invert_rec(symbolic, target * c)
        return None

    # -- backtracking search ----------------------------------------------------

    def _search(
        self,
        constraints: list[Expr],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
        rng: random.Random,
        extra_candidates: dict[str, list[int]],
    ) -> bool:
        unresolved = [reduce_expr(c, assignment) for c in constraints]
        unresolved = [c for c in unresolved if not (isinstance(c, Const) and c.value)]
        if any(isinstance(c, Const) and c.value == 0 for c in unresolved):
            return False
        unassigned = sorted(
            {s.name for c in unresolved for s in symbols_of(c)} - set(assignment)
        )
        if not unassigned:
            return all(evaluate(c, assignment) for c in unresolved) if unresolved else True

        # Order symbols by how many constraints mention them (most first).
        mention_count = {name: 0 for name in unassigned}
        for constraint in unresolved:
            for symbol in symbols_of(constraint):
                if symbol.name in mention_count:
                    mention_count[symbol.name] += 1
        unassigned.sort(key=lambda name: -mention_count[name])

        # Index constraints by mentioned symbol: assigning one symbol can
        # only change the reduction of constraints that mention it, so each
        # backtracking node re-checks O(relevant) constraints, not O(all).
        by_symbol = {
            name: [c for c in unresolved if name in c.symbol_names] for name in unassigned
        }
        budget = [self.search_budget]
        return self._backtrack(
            unassigned, 0, unresolved, by_symbol, assignment, domains, rng, budget, extra_candidates
        )

    def _backtrack(
        self,
        order: list[str],
        position: int,
        constraints: list[Expr],
        by_symbol: dict[str, list[Expr]],
        assignment: dict[str, int],
        domains: dict[str, _Domain],
        rng: random.Random,
        budget: list[int],
        extra_candidates: dict[str, list[int]],
    ) -> bool:
        if budget[0] <= 0:
            return False
        if position == len(order):
            # Equivalent to evaluating every fully-concrete reduction: the
            # inputs are pre-reduced, so a reduction is symbol-free exactly
            # when it is constant (non-constant reductions were never checked).
            for c in constraints:
                if reduce_concrete(c, assignment) == 0:
                    return False
            return True
        name = order[position]
        domain = domains.get(name)
        if domain is None:
            # Symbol disappeared after substitution; skip it.
            return self._backtrack(
                order, position + 1, constraints, by_symbol, assignment, domains, rng, budget,
                extra_candidates,
            )
        relevant = by_symbol.get(name, [])
        candidates = list(extra_candidates.get(name, []))
        candidates += self._suggest_from_constraints(name, relevant, assignment)

        # De-duplicate and apply the domain filters up front (pure and
        # per-candidate, so hoisting preserves the original order and the
        # budget trajectory: filtered-out candidates never charged budget).
        mask = domain.symbol.mask
        exclusions = domain.exclusions
        lo, hi = domain.lo, domain.hi
        known_mask = domain.known_mask
        known_bits = domain.known_value & known_mask
        seen: set[int] = set()
        filtered: list[int] = []
        for candidate in candidates:
            candidate &= mask
            if candidate in seen:
                continue
            seen.add(candidate)
            if candidate in exclusions or not (lo <= candidate <= hi):
                continue
            if (candidate & known_mask) != known_bits:
                continue
            filtered.append(candidate)
        # ``domain.candidates`` values already passed these exact filters
        # (same domain state, same masking), so the suffix only needs the
        # dedup — including against values the filters rejected above, which
        # the one-pass loop also skipped via ``seen``.
        for candidate in domain.candidates(rng):
            if candidate in seen:
                continue
            seen.add(candidate)
            filtered.append(candidate)
        if not filtered:
            return False

        # Residual candidate screen (columnar): a relevant constraint whose
        # other symbols are all assigned reduces — under the assignment
        # *without* ``name`` — to a residual over {name} alone.  Its value at
        # ``{name: candidate}`` equals ``reduce_concrete`` under the
        # candidate-extended assignment (reduction is exact, and a fully
        # covered reduction always collapses to the evaluator's value), so
        # the per-candidate verdicts can be computed for the whole column in
        # a handful of numpy ops instead of one full-expression evaluation
        # per candidate.  ``_consistent`` is pure, so checking the ready
        # constraints ahead of the rest cannot change which candidate
        # ultimately recurses.  Without numpy the original scalar path runs.
        screen = None
        const_fail = False
        general = relevant
        if _NP is not None and relevant:
            ready: list[Expr] = []
            general = []
            for c in relevant:
                for n in c.symbol_names:
                    if n != name and n not in assignment:
                        general.append(c)
                        break
                else:
                    ready.append(c)
            if ready:
                residuals: list[Expr] = []
                for c in ready:
                    r = reduce_expr(c, assignment)
                    if r.__class__ is Const:
                        if r.value == 0:
                            # Fails for every candidate; candidates still
                            # charge budget below, exactly as before.
                            const_fail = True
                            residuals = []
                            break
                    else:
                        residuals.append(r)
                if residuals:
                    column = {name: _NP.array(filtered, dtype=_NP.uint64)}
                    ok = column_evaluator(residuals[0])(column) != 0
                    for r in residuals[1:]:
                        ok &= column_evaluator(r)(column) != 0
                    screen = ok

        for i, candidate in enumerate(filtered):
            budget[0] -= 1
            if budget[0] <= 0:
                return False
            if const_fail:
                continue
            if screen is not None and not screen[i]:
                continue
            assignment[name] = candidate
            # Only constraints mentioning ``name`` can have changed their
            # reduction; everything else was vetted at an earlier level.
            if self._consistent(general, assignment) and self._backtrack(
                order, position + 1, constraints, by_symbol, assignment, domains, rng, budget,
                extra_candidates,
            ):
                return True
            del assignment[name]
        return False

    def _consistent(self, constraints: list[Expr], assignment: dict[str, int]) -> bool:
        """Check constraints that have become fully concrete."""
        for constraint in constraints:
            if reduce_concrete(constraint, assignment) == 0:
                return False
        return True

    def _suggest_from_constraints(
        self, name: str, constraints: list[Expr], assignment: dict[str, int]
    ) -> list[int]:
        """Derive candidate values for ``name`` by inverting EQ constraints."""
        suggestions: list[int] = []
        for constraint in constraints:
            if not isinstance(constraint, CmpExpr) or constraint.pred is not CmpKind.EQ:
                continue
            reduced = reduce_expr(constraint, assignment)
            if not isinstance(reduced, CmpExpr):
                continue
            lhs, rhs = reduced.lhs, reduced.rhs
            if isinstance(lhs, Const) and not isinstance(rhs, Const):
                lhs, rhs = rhs, lhs
            if not isinstance(rhs, Const):
                continue
            names = {s.name for s in symbols_of(lhs)}
            if names != {name}:
                continue
            inverted = self._invert(lhs, rhs.value)
            if inverted is not None:
                suggestions.append(inverted[1])
        return suggestions
