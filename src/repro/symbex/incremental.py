"""Incremental constraint solving for the symbolic-execution hot loop.

The engine's two hottest solver entry points — per-branch feasibility and
per-candidate cache-model probes — previously re-simplified and re-propagated
the *entire* path constraint list from scratch on every query
(``Solver.quick_feasible``), making solver work O(path length) per query and
O(n²) per path.  A :class:`SolverContext` eliminates that: each
:class:`~repro.symbex.state.ExecutionState` carries one, and the context
maintains the propagation fixpoint (per-symbol :class:`~repro.symbex.solver._Domain`
objects, the derived concrete assignment and the still-unresolved
constraints) *incrementally* as constraints are added along the path.

- :meth:`SolverContext.feasible_with` answers "is the path still feasible
  with this extra constraint?" by propagating only the new constraint
  against the cached fixpoint (scratch copy-on-write domains, committed
  state untouched), memoised on (constraint-set fingerprint, extra
  constraint) so forked siblings probing the same candidates share verdicts.
- :meth:`SolverContext.add` commits a constraint, advancing the fixpoint in
  O(delta).
- :meth:`SolverContext.solve_value` returns a concrete value for an
  expression: directly from the fixpoint assignment when every symbol is
  pinned, otherwise through the full :class:`~repro.symbex.solver.Solver`
  (kept as the slow-path oracle so models are identical to monolithic
  solving).
- :meth:`SolverContext.fork` is O(current delta): domains are shared
  copy-on-write with the child, the constraint log becomes a persistent
  parent-linked chain, and the feasibility memo carries over through the
  shared fingerprint.

Soundness note: propagation is a monotone fixpoint computation (domains only
ever tighten), so incrementally-reached fixpoints coincide with from-scratch
ones; ``tests/test_incremental.py`` replays recorded engine query streams
through both paths and asserts identical verdicts and models.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.symbex import expr as expr_module
from repro.symbex.expr import Const, Expr, evaluate, reduce_expr
from repro.symbex.solver import Solver, SolverResult, _Domain

#: Rounds cap for one incremental propagation wave; mirrors the cap in
#: ``Solver._propagate`` so both paths reach the same bounded fixpoint.
_MAX_ROUNDS = 32

#: Bound on the shared feasibility/value memo tables; when exceeded the
#: tables are simply cleared (queries regenerate cheaply).
_MEMO_LIMIT = 1 << 17


class _ContextStats:
    """Process-global counters for benchmarks and regression tracking."""

    __slots__ = ("queries", "memo_hits", "adds", "forks", "slow_path_checks", "fast_path_values")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.queries = 0
        self.memo_hits = 0
        self.adds = 0
        self.forks = 0
        self.slow_path_checks = 0
        self.fast_path_values = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


CONTEXT_STATS = _ContextStats()

# -- constraint-set fingerprints ------------------------------------------------
#
# A context's constraint *sequence* identifies its constraint set.  Because
# expressions are hash-consed (stable identity), the sequence can be interned
# into a single integer: fingerprint(parent_set ++ [c]) is looked up from
# (fingerprint(parent_set), id(c)).  Two contexts that accumulated the same
# constraints in the same order — e.g. forked siblings before they diverge —
# share a fingerprint and therefore share memoised query verdicts.

_SET_IDS: dict[tuple[int, int], int] = {}
_set_id_counter = itertools.count(1)

_FEASIBLE_MEMO: dict[tuple[int, int], bool] = {}
_VALUE_MEMO: dict[tuple, "int | None"] = {}


def _extend_set_id(parent: int, constraint: Expr) -> int:
    key = (parent, id(constraint))
    set_id = _SET_IDS.get(key)
    if set_id is None:
        # Bound the table like the memo tables: clearing only costs future
        # sharing (the id counter never restarts, so previously handed-out
        # fingerprints stay unique and cached query verdicts stay valid).
        if len(_SET_IDS) >= _MEMO_LIMIT:
            _SET_IDS.clear()
        set_id = next(_set_id_counter)
        _SET_IDS[key] = set_id
    return set_id


def clear_incremental_caches() -> None:
    """Drop the shared fingerprint and memo tables (tests, long drivers)."""
    _SET_IDS.clear()
    _FEASIBLE_MEMO.clear()
    _VALUE_MEMO.clear()


# The fingerprint/memo tables key on id() of interned expressions, so they
# must not survive the intern tables: if the interned objects are released,
# a recycled id could resurrect a stale entry for a different constraint.
expr_module.register_cache_clear_hook(clear_incremental_caches)


class _CowDomains:
    """Copy-on-write view over a domains dict.

    ``Solver._propagate_one`` mutates any domain it looks up through
    ``_domain_for``; this wrapper clones a domain on first access unless the
    context already owns it, and records pre-access signatures so a
    propagation round can tell whether anything *really* changed (the raw
    propagator is optimistic and reports "changed" for no-op updates, which
    would otherwise spin every wave to the rounds cap).
    """

    __slots__ = ("base", "owned", "pre_signatures")

    def __init__(self, base: dict[str, _Domain], owned: set[str]) -> None:
        self.base = base
        self.owned = owned
        self.pre_signatures: dict[str, tuple] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.base

    def __getitem__(self, name: str) -> _Domain:
        domain = self.base[name]
        if name not in self.pre_signatures:
            self.pre_signatures[name] = domain.signature()
        if name not in self.owned:
            domain = domain.clone()
            self.base[name] = domain
            self.owned.add(name)
        return domain

    def __setitem__(self, name: str, domain: _Domain) -> None:
        if name not in self.pre_signatures:
            self.pre_signatures[name] = None  # newly created: counts as change
        self.base[name] = domain
        self.owned.add(name)

    def changed_names(self) -> list[str]:
        return [
            name
            for name, pre in self.pre_signatures.items()
            if pre is None or self.base[name].signature() != pre
        ]

    def reset_round(self) -> None:
        self.pre_signatures = {}


class _ConstraintChain:
    """Persistent (parent-linked) constraint log shared across forks."""

    __slots__ = ("parent", "items")

    def __init__(self, parent: "_ConstraintChain | None", items: tuple[Expr, ...]) -> None:
        self.parent = parent
        self.items = items

    def materialize(self) -> list[Expr]:
        blocks: list[tuple[Expr, ...]] = []
        node: _ConstraintChain | None = self
        while node is not None:
            blocks.append(node.items)
            node = node.parent
        out: list[Expr] = []
        for block in reversed(blocks):
            out.extend(block)
        return out


class SolverContext:
    """Incremental solving state carried by one execution state."""

    __slots__ = (
        "solver",
        "_assignment",
        "_domains",
        "_owned",
        "_pending",
        "_chain",
        "_local",
        "_materialized",
        "_set_id",
        "unsat",
    )

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver or Solver()
        self._assignment: dict[str, int] = {}
        self._domains: dict[str, _Domain] = {}
        self._owned: set[str] = set()
        self._pending: list[Expr] = []
        self._chain: _ConstraintChain | None = None
        self._local: list[Expr] = []
        self._materialized: list[Expr] | None = []
        self._set_id = 0
        self.unsat = False

    # -- lifecycle -------------------------------------------------------------

    def fork(self) -> "SolverContext":
        """O(delta) copy: domains go copy-on-write, the log becomes shared."""
        CONTEXT_STATS.forks += 1
        if self._local:
            self._chain = _ConstraintChain(self._chain, tuple(self._local))
            self._local = []
        child = SolverContext.__new__(SolverContext)
        child.solver = self.solver
        child._assignment = dict(self._assignment)
        child._domains = dict(self._domains)
        child._owned = set()
        self._owned = set()  # parent's domains are shared now too
        child._pending = list(self._pending)
        child._chain = self._chain
        child._local = []
        child._materialized = None
        child._set_id = self._set_id
        child.unsat = self.unsat
        return child

    # -- serialization ---------------------------------------------------------

    def __getstate__(self) -> dict:
        """Compact pickle payload (parallel shard workers).

        Only the propagation fixpoint and the materialized constraint list
        travel: the parent-linked chain is flattened, and the process-local
        fingerprint (``_set_id``) and ownership markers are dropped — both
        are rebuilt on load.
        """
        return {
            "solver": self.solver,
            "constraints": list(self.constraints()),
            "assignment": dict(self._assignment),
            "domains": dict(self._domains),
            "pending": list(self._pending),
            "unsat": self.unsat,
        }

    def __setstate__(self, payload: dict) -> None:
        self.solver = payload["solver"]
        self._assignment = dict(payload["assignment"])
        self._domains = dict(payload["domains"])
        # Domain objects may be shared with sibling contexts pickled in the
        # same payload (copy-on-write forks): treat everything as shared and
        # let the next write clone.
        self._owned = set()
        self._pending = list(payload["pending"])
        constraints = list(payload["constraints"])
        self._chain = None
        self._local = constraints
        self._materialized = list(constraints)
        # Re-fingerprint the constraint chain against this process's
        # interning tables so memoised verdicts stay keyed consistently.
        set_id = 0
        for constraint in constraints:
            set_id = _extend_set_id(set_id, constraint)
        self._set_id = set_id
        self.unsat = payload["unsat"]

    # -- constraint log --------------------------------------------------------

    def constraints(self) -> list[Expr]:
        """The full (pre-simplified) constraint list, oldest first.

        The returned list is cached and shared; treat it as read-only.
        """
        if self._materialized is None:
            out = self._chain.materialize() if self._chain is not None else []
            out.extend(self._local)
            self._materialized = out
        return self._materialized

    def __len__(self) -> int:
        return len(self.constraints())

    # -- queries ---------------------------------------------------------------

    def feasible_with(self, extra: Expr) -> bool:
        """Quick feasibility of (path constraints + ``extra``).

        Same contract as ``Solver.quick_feasible`` on the full list: False
        only on a definite contradiction, True otherwise (optimistically).
        Costs O(delta): only the new constraint and whatever it wakes up are
        propagated, against scratch copy-on-write domains.
        """
        CONTEXT_STATS.queries += 1
        if self.unsat:
            return False
        extra = reduce_expr(extra, self._assignment)
        if isinstance(extra, Const):
            return extra.value != 0
        key = (self._set_id, id(extra))
        cached = _FEASIBLE_MEMO.get(key)
        if cached is not None:
            CONTEXT_STATS.memo_hits += 1
            return cached
        scratch_assignment = dict(self._assignment)
        scratch_domains = _CowDomains(dict(self._domains), set())
        scratch_pending = list(self._pending)
        verdict = self._propagate_wave(scratch_assignment, scratch_domains, scratch_pending, [extra])
        if len(_FEASIBLE_MEMO) >= _MEMO_LIMIT:
            _FEASIBLE_MEMO.clear()
        _FEASIBLE_MEMO[key] = verdict
        return verdict

    def add(self, constraint: Expr) -> None:
        """Commit ``constraint`` to the path, advancing the fixpoint."""
        if isinstance(constraint, Const):
            if constraint.value == 0:
                self.unsat = True
            return
        CONTEXT_STATS.adds += 1
        self._local.append(constraint)
        if self._materialized is not None:
            self._materialized.append(constraint)
        self._set_id = _extend_set_id(self._set_id, constraint)
        if self.unsat:
            return
        reduced = reduce_expr(constraint, self._assignment)
        if isinstance(reduced, Const):
            if reduced.value == 0:
                self.unsat = True
            return
        cow = _CowDomains(self._domains, self._owned)
        if not self._propagate_wave(self._assignment, cow, self._pending, [reduced]):
            self.unsat = True

    def solve_value(self, expr: Expr, defaults: dict[str, int] | None = None) -> int | None:
        """A concrete value for ``expr`` consistent with the path, or None.

        Fast path: when propagation has already pinned every symbol of
        ``expr``, the value follows directly from the fixpoint assignment.
        Slow path: delegate to the monolithic ``Solver.check`` oracle over
        the full constraint list (so values match non-incremental solving
        exactly, including the deterministic search fallback).
        """
        if self.unsat:
            return None
        reduced = reduce_expr(expr, self._assignment)
        if isinstance(reduced, Const):
            CONTEXT_STATS.fast_path_values += 1
            return reduced.value
        # Values depend on the solver's budget/seed (its process-unique uid)
        # and on the supplied defaults (hashed by content, so two calls with
        # different defaults never share an entry).
        defaults_key = hash(frozenset(defaults.items())) if defaults else None
        key = (self.solver.uid, self._set_id, id(reduced), defaults_key)
        if key in _VALUE_MEMO:
            CONTEXT_STATS.memo_hits += 1
            return _VALUE_MEMO[key]
        result = self.check(defaults=defaults)
        if not result.is_sat:
            value: int | None = None
        else:
            assignment = {
                symbol.name: result.model.get(symbol.name, (defaults or {}).get(symbol.name, 0))
                for symbol in reduced.symbols
            }
            value = evaluate(reduced, assignment)
        if len(_VALUE_MEMO) >= _MEMO_LIMIT:
            _VALUE_MEMO.clear()
        _VALUE_MEMO[key] = value
        return value

    def check(self, defaults: dict[str, int] | None = None) -> SolverResult:
        """Full model search over the committed constraints (slow path)."""
        CONTEXT_STATS.slow_path_checks += 1
        if self.unsat:
            return SolverResult(status="unsat", reason="incremental propagation found a contradiction")
        return self.solver.check(self.constraints(), defaults=defaults)

    def assignment_of(self, name: str) -> int | None:
        """The pinned value of a symbol, if propagation fully determined it."""
        return self._assignment.get(name)

    # -- propagation core ------------------------------------------------------

    def _propagate_wave(
        self,
        assignment: dict[str, int],
        domains: _CowDomains,
        pending: list[Expr],
        new_constraints: Iterable[Expr],
    ) -> bool:
        """Run constraint propagation to a (bounded) fixpoint.

        ``pending`` is updated in place to the new unresolved set.  Returns
        False when a definite contradiction is found.  Mirrors
        ``Solver._propagate`` but wakes up only on *real* domain change, so
        an already-stable fixpoint costs one pass over the new constraints.
        """
        solver = self.solver
        queue = list(pending)
        queue.extend(new_constraints)
        for _round in range(_MAX_ROUNDS):
            domains.reset_round()
            changed = False
            unresolved: list[Expr] = []
            for constraint in queue:
                reduced = reduce_expr(constraint, assignment)
                if isinstance(reduced, Const):
                    if reduced.value == 0:
                        return False
                    changed = True  # constraint fully resolved: may unblock others
                    continue
                outcome = solver._propagate_one(reduced, assignment, domains)
                if outcome == "unsat":
                    return False
                unresolved.append(reduced)
            # Promote domains that became fully known to concrete assignments.
            for name in domains.changed_names():
                changed = True
                domain = domains.base[name]
                if name not in assignment and domain.fully_known:
                    value = domain.value
                    if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                        return False
                    assignment[name] = value
            queue = unresolved
            if not changed:
                break
        pending[:] = queue
        return True


def replay_context(solver: Solver, constraints: Iterable[Expr]) -> SolverContext:
    """Build a context by adding ``constraints`` in order (test helper)."""
    context = SolverContext(solver)
    for constraint in constraints:
        context.add(constraint)
    return context
