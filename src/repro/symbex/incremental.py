"""Incremental constraint solving for the symbolic-execution hot loop.

The engine's two hottest solver entry points — per-branch feasibility and
per-candidate cache-model probes — previously re-simplified and re-propagated
the *entire* path constraint list from scratch on every query
(``Solver.quick_feasible``), making solver work O(path length) per query and
O(n²) per path.  A :class:`SolverContext` eliminates that: each
:class:`~repro.symbex.state.ExecutionState` carries one, and the context
maintains the propagation fixpoint (per-symbol :class:`~repro.symbex.solver._Domain`
objects, the derived concrete assignment and the still-unresolved
constraints) *incrementally* as constraints are added along the path.

- :meth:`SolverContext.feasible_with` answers "is the path still feasible
  with this extra constraint?" by propagating only the new constraint
  against the cached fixpoint (scratch copy-on-write domains, committed
  state untouched), memoised on (constraint-set fingerprint, extra
  constraint) so forked siblings probing the same candidates share verdicts.
- :meth:`SolverContext.add` commits a constraint, advancing the fixpoint in
  O(delta).
- :meth:`SolverContext.solve_value` returns a concrete value for an
  expression: directly from the fixpoint assignment when every symbol is
  pinned, otherwise through the full :class:`~repro.symbex.solver.Solver`
  (kept as the slow-path oracle so models are identical to monolithic
  solving).
- :meth:`SolverContext.fork` is O(current delta): domains are shared
  copy-on-write with the child, the constraint log becomes a persistent
  parent-linked chain, and the feasibility memo carries over through the
  shared fingerprint.

Soundness note: propagation is a monotone fixpoint computation (domains only
ever tighten), so incrementally-reached fixpoints coincide with from-scratch
ones; ``tests/test_incremental.py`` replays recorded engine query streams
through both paths and asserts identical verdicts and models.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.symbex import expr as expr_module
from repro.symbex.expr import Const, Expr, evaluate, reduce_expr
from repro.symbex.solver import Solver, SolverResult, _Domain

#: Rounds cap for one incremental propagation wave; mirrors the cap in
#: ``Solver._propagate`` so both paths reach the same bounded fixpoint.
_MAX_ROUNDS = 32

#: Bound on the shared feasibility/value memo tables; when exceeded the
#: tables are simply cleared (queries regenerate cheaply).
_MEMO_LIMIT = 1 << 17


class _ContextStats:
    """Process-global counters for benchmarks and regression tracking.

    The group counters surface the vector tier's cross-lane solver batching
    (``repro.symbex.vexec``): ``group_queries`` counts distinct
    (fingerprint, extra) feasibility classes answered at group time,
    ``group_dedup_hits`` counts member lanes whose verdict was fanned out
    from a class representative without a query of their own, and
    ``column_branch_resolutions`` counts lanes whose concolic branch
    verdict came from one columnar numpy pass instead of a scalar
    evaluation.  ``wave_replays`` and ``check_memo_hits`` count committed
    propagation waves / full model searches answered by replaying recorded
    work (see ``_ADD_PLAN_MEMO`` / ``_CHECK_MEMO``).
    """

    __slots__ = (
        "queries",
        "memo_hits",
        "adds",
        "forks",
        "slow_path_checks",
        "fast_path_values",
        "group_queries",
        "group_dedup_hits",
        "column_branch_resolutions",
        "wave_replays",
        "check_memo_hits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.queries = 0
        self.memo_hits = 0
        self.adds = 0
        self.forks = 0
        self.slow_path_checks = 0
        self.fast_path_values = 0
        self.group_queries = 0
        self.group_dedup_hits = 0
        self.column_branch_resolutions = 0
        self.wave_replays = 0
        self.check_memo_hits = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


CONTEXT_STATS = _ContextStats()

# -- constraint-set fingerprints ------------------------------------------------
#
# A context's constraint *sequence* identifies its constraint set.  Because
# expressions are hash-consed (stable identity), the sequence can be interned
# into a single integer: fingerprint(parent_set ++ [c]) is looked up from
# (fingerprint(parent_set), id(c)).  Two contexts that accumulated the same
# constraints in the same order — e.g. forked siblings before they diverge —
# share a fingerprint and therefore share memoised query verdicts.

_SET_IDS: dict[tuple[int, int], int] = {}
_set_id_counter = itertools.count(1)

_FEASIBLE_MEMO: dict[tuple[int, int], bool] = {}
_VALUE_MEMO: dict[tuple, "int | None"] = {}

#: Recorded propagation waves: (fingerprint, id(reduced extra)) -> the
#: committed-state delta a successful wave produced (new assignment entries,
#: post-wave domain objects for every touched symbol, and the post-wave
#: pending list).  ``feasible_with`` records the plan while answering a
#: query on scratch domains; ``add`` replays it when the *same* constraint
#: is then committed on a context with the *same* fingerprint, skipping the
#: whole wave.  Forked siblings that split the same way share one plan —
#: this is the "batch fork bookkeeping" half of cross-lane solver batching.
#: Sound because waves are deterministic functions of (fingerprint-identified
#: committed state, reduced constraint): the recorded delta is byte-for-byte
#: what the replayed wave would have computed.  Replayed domain objects are
#: installed unowned (copy-on-write), so sharing them across contexts is safe.
_ADD_PLAN_MEMO: dict[tuple[int, int], tuple[dict[str, int], dict[str, _Domain], tuple[Expr, ...]]] = {}

#: Full model searches memoised by (solver uid, fingerprint, defaults):
#: ``Solver.check`` is a pure deterministic function of its constraint list,
#: defaults and the solver's own (budget, seed) — captured by ``uid`` — so
#: two contexts with the same fingerprint get the identical SolverResult.
#: Results are shared; callers must treat them as read-only (they do).
_CHECK_MEMO: dict[tuple, SolverResult] = {}


def _extend_set_id(parent: int, constraint: Expr) -> int:
    key = (parent, id(constraint))
    set_id = _SET_IDS.get(key)
    if set_id is None:
        # Bound the table like the memo tables: clearing only costs future
        # sharing (the id counter never restarts, so previously handed-out
        # fingerprints stay unique and cached query verdicts stay valid).
        if len(_SET_IDS) >= _MEMO_LIMIT:
            _SET_IDS.clear()
        set_id = next(_set_id_counter)
        _SET_IDS[key] = set_id
    return set_id


def clear_incremental_caches() -> None:
    """Drop the shared fingerprint and memo tables (tests, long drivers)."""
    _SET_IDS.clear()
    _FEASIBLE_MEMO.clear()
    _VALUE_MEMO.clear()
    _ADD_PLAN_MEMO.clear()
    _CHECK_MEMO.clear()


# The fingerprint/memo tables key on id() of interned expressions, so they
# must not survive the intern tables: if the interned objects are released,
# a recycled id could resurrect a stale entry for a different constraint.
expr_module.register_cache_clear_hook(clear_incremental_caches)


class _CowDomains:
    """Copy-on-write view over a domains dict.

    ``Solver._propagate_one`` mutates any domain it looks up through
    ``_domain_for``; this wrapper clones a domain on first access unless the
    context already owns it, and records pre-access signatures so a
    propagation round can tell whether anything *really* changed (the raw
    propagator is optimistic and reports "changed" for no-op updates, which
    would otherwise spin every wave to the rounds cap).
    """

    __slots__ = ("base", "owned", "pre_signatures")

    def __init__(self, base: dict[str, _Domain], owned: set[str]) -> None:
        self.base = base
        self.owned = owned
        self.pre_signatures: dict[str, tuple] = {}

    def __contains__(self, name: str) -> bool:
        return name in self.base

    def __getitem__(self, name: str) -> _Domain:
        domain = self.base[name]
        if name not in self.pre_signatures:
            self.pre_signatures[name] = domain.signature()
        if name not in self.owned:
            domain = domain.clone()
            self.base[name] = domain
            self.owned.add(name)
        return domain

    def __setitem__(self, name: str, domain: _Domain) -> None:
        if name not in self.pre_signatures:
            self.pre_signatures[name] = None  # newly created: counts as change
        self.base[name] = domain
        self.owned.add(name)

    def changed_names(self) -> list[str]:
        return [
            name
            for name, pre in self.pre_signatures.items()
            if pre is None or self.base[name].signature() != pre
        ]

    def reset_round(self) -> None:
        self.pre_signatures = {}


class _ConstraintChain:
    """Persistent (parent-linked) constraint log shared across forks."""

    __slots__ = ("parent", "items")

    def __init__(self, parent: "_ConstraintChain | None", items: tuple[Expr, ...]) -> None:
        self.parent = parent
        self.items = items

    def materialize(self) -> list[Expr]:
        blocks: list[tuple[Expr, ...]] = []
        node: _ConstraintChain | None = self
        while node is not None:
            blocks.append(node.items)
            node = node.parent
        out: list[Expr] = []
        for block in reversed(blocks):
            out.extend(block)
        return out


class SolverContext:
    """Incremental solving state carried by one execution state."""

    __slots__ = (
        "solver",
        "_assignment",
        "_domains",
        "_owned",
        "_pending",
        "_chain",
        "_local",
        "_materialized",
        "_set_id",
        "unsat",
    )

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver or Solver()
        self._assignment: dict[str, int] = {}
        self._domains: dict[str, _Domain] = {}
        self._owned: set[str] = set()
        self._pending: list[Expr] = []
        self._chain: _ConstraintChain | None = None
        self._local: list[Expr] = []
        self._materialized: list[Expr] | None = []
        self._set_id = 0
        self.unsat = False

    # -- lifecycle -------------------------------------------------------------

    def fork(self) -> "SolverContext":
        """O(delta) copy: domains go copy-on-write, the log becomes shared."""
        CONTEXT_STATS.forks += 1
        if self._local:
            self._chain = _ConstraintChain(self._chain, tuple(self._local))
            self._local = []
        child = SolverContext.__new__(SolverContext)
        child.solver = self.solver
        child._assignment = dict(self._assignment)
        child._domains = dict(self._domains)
        child._owned = set()
        self._owned = set()  # parent's domains are shared now too
        child._pending = list(self._pending)
        child._chain = self._chain
        child._local = []
        child._materialized = None
        child._set_id = self._set_id
        child.unsat = self.unsat
        return child

    # -- serialization ---------------------------------------------------------

    def __getstate__(self) -> dict:
        """Compact pickle payload (parallel shard workers).

        Only the propagation fixpoint and the materialized constraint list
        travel: the parent-linked chain is flattened, and the process-local
        fingerprint (``_set_id``) and ownership markers are dropped — both
        are rebuilt on load.
        """
        return {
            "solver": self.solver,
            "constraints": list(self.constraints()),
            "assignment": dict(self._assignment),
            "domains": dict(self._domains),
            "pending": list(self._pending),
            "unsat": self.unsat,
        }

    def __setstate__(self, payload: dict) -> None:
        self.solver = payload["solver"]
        self._assignment = dict(payload["assignment"])
        self._domains = dict(payload["domains"])
        # Domain objects may be shared with sibling contexts pickled in the
        # same payload (copy-on-write forks): treat everything as shared and
        # let the next write clone.
        self._owned = set()
        self._pending = list(payload["pending"])
        constraints = list(payload["constraints"])
        self._chain = None
        self._local = constraints
        self._materialized = list(constraints)
        # Re-fingerprint the constraint chain against this process's
        # interning tables so memoised verdicts stay keyed consistently.
        set_id = 0
        for constraint in constraints:
            set_id = _extend_set_id(set_id, constraint)
        self._set_id = set_id
        self.unsat = payload["unsat"]

    # -- constraint log --------------------------------------------------------

    def constraints(self) -> list[Expr]:
        """The full (pre-simplified) constraint list, oldest first.

        The returned list is cached and shared; treat it as read-only.
        """
        if self._materialized is None:
            out = self._chain.materialize() if self._chain is not None else []
            out.extend(self._local)
            self._materialized = out
        return self._materialized

    def __len__(self) -> int:
        return len(self.constraints())

    # -- queries ---------------------------------------------------------------

    def feasible_with(self, extra: Expr) -> bool:
        """Quick feasibility of (path constraints + ``extra``).

        Same contract as ``Solver.quick_feasible`` on the full list: False
        only on a definite contradiction, True otherwise (optimistically).
        Costs O(delta): only the new constraint and whatever it wakes up are
        propagated, against scratch copy-on-write domains.
        """
        CONTEXT_STATS.queries += 1
        if self.unsat:
            return False
        # Two-level memo: probe on the raw (pre-reduction) expression first —
        # a hit skips reduce_expr entirely.  The raw key is well-defined
        # because equal fingerprints imply equal committed assignments, so
        # the raw expression reduces identically on every hitting context.
        raw_key = (self._set_id, id(extra))
        cached = _FEASIBLE_MEMO.get(raw_key)
        if cached is not None:
            CONTEXT_STATS.memo_hits += 1
            return cached
        extra = reduce_expr(extra, self._assignment)
        if isinstance(extra, Const):
            return extra.value != 0
        key = (self._set_id, id(extra))
        cached = _FEASIBLE_MEMO.get(key)
        if cached is not None:
            CONTEXT_STATS.memo_hits += 1
            if len(_FEASIBLE_MEMO) >= _MEMO_LIMIT:
                _FEASIBLE_MEMO.clear()
            _FEASIBLE_MEMO[raw_key] = cached
            return cached
        scratch_assignment = dict(self._assignment)
        scratch_domains = _CowDomains(dict(self._domains), set())
        scratch_pending = list(self._pending)
        promoted: list[str] = []
        verdict = self._propagate_wave(
            scratch_assignment, scratch_domains, scratch_pending, [extra], promoted
        )
        if len(_FEASIBLE_MEMO) >= _MEMO_LIMIT:
            _FEASIBLE_MEMO.clear()
        _FEASIBLE_MEMO[key] = verdict
        _FEASIBLE_MEMO[raw_key] = verdict
        if verdict:
            # Record the wave's committed-state delta so a later add() of the
            # same constraint on the same fingerprint replays it for free.
            # The scratch CoW view started with nothing owned, so every
            # domain the wave touched was cloned into scratch — those clones
            # belong exclusively to this record once scratch is discarded.
            if len(_ADD_PLAN_MEMO) >= _MEMO_LIMIT:
                _ADD_PLAN_MEMO.clear()
            _ADD_PLAN_MEMO[key] = (
                {name: scratch_assignment[name] for name in promoted},
                {name: scratch_domains.base[name] for name in scratch_domains.owned},
                tuple(scratch_pending),
            )
        return verdict

    def add(self, constraint: Expr) -> None:
        """Commit ``constraint`` to the path, advancing the fixpoint."""
        if isinstance(constraint, Const):
            if constraint.value == 0:
                self.unsat = True
            return
        CONTEXT_STATS.adds += 1
        self._local.append(constraint)
        if self._materialized is not None:
            self._materialized.append(constraint)
        pre_set_id = self._set_id
        self._set_id = _extend_set_id(self._set_id, constraint)
        if self.unsat:
            return
        reduced = reduce_expr(constraint, self._assignment)
        if isinstance(reduced, Const):
            if reduced.value == 0:
                self.unsat = True
            return
        plan = _ADD_PLAN_MEMO.get((pre_set_id, id(reduced)))
        if plan is not None:
            # A feasibility query already ran this exact wave on an identical
            # committed state; replay its recorded delta instead of
            # re-propagating.  Domains install unowned (shared CoW).
            assignment_delta, domain_delta, pending_after = plan
            self._assignment.update(assignment_delta)
            for name, domain in domain_delta.items():
                self._domains[name] = domain
                self._owned.discard(name)
            self._pending[:] = pending_after
            CONTEXT_STATS.wave_replays += 1
            return
        cow = _CowDomains(self._domains, self._owned)
        if not self._propagate_wave(self._assignment, cow, self._pending, [reduced]):
            self.unsat = True

    def solve_value(self, expr: Expr, defaults: dict[str, int] | None = None) -> int | None:
        """A concrete value for ``expr`` consistent with the path, or None.

        Fast path: when propagation has already pinned every symbol of
        ``expr``, the value follows directly from the fixpoint assignment.
        Slow path: delegate to the monolithic ``Solver.check`` oracle over
        the full constraint list (so values match non-incremental solving
        exactly, including the deterministic search fallback).
        """
        if self.unsat:
            return None
        reduced = reduce_expr(expr, self._assignment)
        if isinstance(reduced, Const):
            CONTEXT_STATS.fast_path_values += 1
            return reduced.value
        # Values depend on the solver's budget/seed (its process-unique uid)
        # and on the supplied defaults (hashed by content, so two calls with
        # different defaults never share an entry).
        defaults_key = hash(frozenset(defaults.items())) if defaults else None
        key = (self.solver.uid, self._set_id, id(reduced), defaults_key)
        if key in _VALUE_MEMO:
            CONTEXT_STATS.memo_hits += 1
            return _VALUE_MEMO[key]
        result = self.check(defaults=defaults)
        if not result.is_sat:
            value: int | None = None
        else:
            assignment = {
                symbol.name: result.model.get(symbol.name, (defaults or {}).get(symbol.name, 0))
                for symbol in reduced.symbols
            }
            value = evaluate(reduced, assignment)
        if len(_VALUE_MEMO) >= _MEMO_LIMIT:
            _VALUE_MEMO.clear()
        _VALUE_MEMO[key] = value
        return value

    def check(self, defaults: dict[str, int] | None = None) -> SolverResult:
        """Full model search over the committed constraints (slow path).

        Memoised per (solver uid, fingerprint, defaults): one state
        concretising several expressions — or forked siblings sharing a
        fingerprint — run the underlying search once.  The shared result is
        read-only by contract.
        """
        if self.unsat:
            return SolverResult(status="unsat", reason="incremental propagation found a contradiction")
        defaults_key = frozenset(defaults.items()) if defaults else None
        key = (self.solver.uid, self._set_id, defaults_key)
        cached = _CHECK_MEMO.get(key)
        if cached is not None:
            CONTEXT_STATS.check_memo_hits += 1
            return cached
        CONTEXT_STATS.slow_path_checks += 1
        result = self.solver.check(self.constraints(), defaults=defaults)
        if len(_CHECK_MEMO) >= _MEMO_LIMIT:
            _CHECK_MEMO.clear()
        _CHECK_MEMO[key] = result
        return result

    def assignment_of(self, name: str) -> int | None:
        """The pinned value of a symbol, if propagation fully determined it."""
        return self._assignment.get(name)

    def pinned_assignment(self) -> dict[str, int]:
        """Every symbol propagation has pinned (live dict; treat as read-only)."""
        return self._assignment

    # -- propagation core ------------------------------------------------------

    def _propagate_wave(
        self,
        assignment: dict[str, int],
        domains: _CowDomains,
        pending: list[Expr],
        new_constraints: Iterable[Expr],
        promoted: list[str] | None = None,
    ) -> bool:
        """Run constraint propagation to a (bounded) fixpoint.

        ``pending`` is updated in place to the new unresolved set.  Returns
        False when a definite contradiction is found.  Mirrors
        ``Solver._propagate`` but wakes up only on *real* domain change, so
        an already-stable fixpoint costs one pass over the new constraints.
        When ``promoted`` is given, names newly pinned into ``assignment``
        are appended to it (wave recording for ``_ADD_PLAN_MEMO``).
        """
        solver = self.solver
        queue = list(pending)
        queue.extend(new_constraints)
        # Round-0 fixpoint skip: every constraint in ``pending`` was processed
        # in the previous wave's final no-change round against these exact
        # domains and this exact assignment, so re-propagating it is a proven
        # no-op (same reduction -> same plan -> same domain content, and it
        # cannot be unsat or the previous wave would have failed).  Skipping
        # the propagator for those entries changes nothing observable; only
        # the new constraints do real work in round 0.  The skip is guarded
        # on the reduction being the identical node: anything else falls
        # through to the full path.
        stable_prefix = len(pending)
        for _round in range(_MAX_ROUNDS):
            domains.reset_round()
            changed = False
            unresolved: list[Expr] = []
            for index, constraint in enumerate(queue):
                reduced = reduce_expr(constraint, assignment)
                if isinstance(reduced, Const):
                    if reduced.value == 0:
                        return False
                    changed = True  # constraint fully resolved: may unblock others
                    continue
                if index < stable_prefix and reduced is constraint:
                    unresolved.append(reduced)
                    continue
                outcome = solver._propagate_one(reduced, assignment, domains)
                if outcome == "unsat":
                    return False
                unresolved.append(reduced)
            # Promote domains that became fully known to concrete assignments.
            for name in domains.changed_names():
                changed = True
                domain = domains.base[name]
                if name not in assignment and domain.fully_known:
                    value = domain.value
                    if value in domain.exclusions or not (domain.lo <= value <= domain.hi):
                        return False
                    assignment[name] = value
                    if promoted is not None:
                        promoted.append(name)
            queue = unresolved
            stable_prefix = 0
            if not changed:
                break
        pending[:] = queue
        return True


def replay_context(solver: Solver, constraints: Iterable[Expr]) -> SolverContext:
    """Build a context by adding ``constraints`` in order (test helper)."""
    context = SolverContext(solver)
    for constraint in constraints:
        context.add(constraint)
    return context
