"""Symbolic expressions over 64-bit unsigned machine words.

Expressions are small immutable trees: constants, named symbols (with a
declared bit width), binary operations reusing the NFIL operator set,
comparisons (producing 0/1) and selects.  Construction performs constant
folding and a handful of algebraic simplifications so that path constraints
stay small and the solver's pattern matching sees normalised shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ir.instructions import BinOpKind, CmpKind

MACHINE_BITS = 64
MACHINE_MASK = (1 << MACHINE_BITS) - 1


class Expr:
    """Base class of all symbolic expressions."""

    __slots__ = ()

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, Const)


@dataclass(frozen=True)
class Const(Expr):
    """A concrete 64-bit value."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & MACHINE_MASK)

    def __str__(self) -> str:
        return f"0x{self.value:x}" if self.value > 9 else str(self.value)


@dataclass(frozen=True)
class Sym(Expr):
    """A named symbolic input with a bit width (default: full word)."""

    name: str
    bits: int = MACHINE_BITS

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinExpr(Expr):
    """A binary arithmetic/bitwise operation."""

    op: BinOpKind
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class CmpExpr(Expr):
    """A comparison; evaluates to 1 (true) or 0 (false)."""

    pred: CmpKind
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"({self.lhs} {self.pred.value} {self.rhs})"


@dataclass(frozen=True)
class SelectExpr(Expr):
    """``cond ? if_true : if_false`` with a 0/1 condition."""

    cond: Expr
    if_true: Expr
    if_false: Expr

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


TRUE = Const(1)
FALSE = Const(0)


def const(value: int) -> Const:
    return Const(value & MACHINE_MASK)


def _apply_binop(op: BinOpKind, lhs: int, rhs: int) -> int:
    if op is BinOpKind.ADD:
        return (lhs + rhs) & MACHINE_MASK
    if op is BinOpKind.SUB:
        return (lhs - rhs) & MACHINE_MASK
    if op is BinOpKind.MUL:
        return (lhs * rhs) & MACHINE_MASK
    if op is BinOpKind.UDIV:
        return (lhs // rhs) & MACHINE_MASK if rhs else MACHINE_MASK
    if op is BinOpKind.UREM:
        return (lhs % rhs) & MACHINE_MASK if rhs else lhs
    if op is BinOpKind.AND:
        return lhs & rhs
    if op is BinOpKind.OR:
        return lhs | rhs
    if op is BinOpKind.XOR:
        return lhs ^ rhs
    if op is BinOpKind.SHL:
        return (lhs << rhs) & MACHINE_MASK if rhs < MACHINE_BITS else 0
    if op is BinOpKind.LSHR:
        return lhs >> rhs if rhs < MACHINE_BITS else 0
    raise ValueError(f"unknown binary operation {op}")


def _apply_cmp(pred: CmpKind, lhs: int, rhs: int) -> int:
    if pred is CmpKind.EQ:
        return int(lhs == rhs)
    if pred is CmpKind.NE:
        return int(lhs != rhs)
    if pred is CmpKind.ULT:
        return int(lhs < rhs)
    if pred is CmpKind.ULE:
        return int(lhs <= rhs)
    if pred is CmpKind.UGT:
        return int(lhs > rhs)
    if pred is CmpKind.UGE:
        return int(lhs >= rhs)
    raise ValueError(f"unknown comparison {pred}")


def make_binop(op: BinOpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a binary operation with constant folding and simplification."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_binop(op, lhs.value, rhs.value))
    # Identity simplifications that keep solver patterns clean.
    if isinstance(rhs, Const):
        if rhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.OR,
                                     BinOpKind.XOR, BinOpKind.SHL, BinOpKind.LSHR):
            return lhs
        if rhs.value == 0 and op is BinOpKind.AND:
            return Const(0)
        if rhs.value == MACHINE_MASK and op is BinOpKind.AND:
            return lhs
        if rhs.value == 1 and op is BinOpKind.MUL:
            return lhs
        if rhs.value == 0 and op is BinOpKind.MUL:
            return Const(0)
    if isinstance(lhs, Const):
        if lhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.OR, BinOpKind.XOR):
            return rhs
        if lhs.value == 0 and op in (BinOpKind.AND, BinOpKind.MUL, BinOpKind.SHL,
                                     BinOpKind.LSHR, BinOpKind.UDIV, BinOpKind.UREM):
            return Const(0)
        if lhs.value == 1 and op is BinOpKind.MUL:
            return rhs
    # Masking a symbol to (or beyond) its declared width is a no-op.
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, Sym)
        and (lhs.mask & rhs.value) == lhs.mask
    ):
        return lhs
    # Collapse nested shifts by constants: (x >> a) >> b = x >> (a+b).
    if (
        op is BinOpKind.LSHR
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.LSHR
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.LSHR, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant additions: (x + a) + b = x + (a+b).
    if (
        op is BinOpKind.ADD
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.ADD
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.ADD, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant masks: (x & a) & b = x & (a&b).
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.AND
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.AND, lhs.lhs, Const(lhs.rhs.value & rhs.value))
    return BinExpr(op=op, lhs=lhs, rhs=rhs)


_NEGATED_PRED = {
    CmpKind.EQ: CmpKind.NE,
    CmpKind.NE: CmpKind.EQ,
    CmpKind.ULT: CmpKind.UGE,
    CmpKind.ULE: CmpKind.UGT,
    CmpKind.UGT: CmpKind.ULE,
    CmpKind.UGE: CmpKind.ULT,
}


def make_cmp(pred: CmpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a comparison with constant folding."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_cmp(pred, lhs.value, rhs.value))
    # Comparisons of a 0/1 comparison result against 0 or 1 collapse to the
    # inner comparison (possibly negated): this is what branch conditions on
    # compare instructions produce, and the solver relies on the flat form.
    if isinstance(lhs, CmpExpr) and isinstance(rhs, Const) and rhs.value in (0, 1):
        keep_inner = {
            (CmpKind.EQ, 1): True,
            (CmpKind.NE, 0): True,
            (CmpKind.UGE, 1): True,
            (CmpKind.UGT, 0): True,
            (CmpKind.EQ, 0): False,
            (CmpKind.NE, 1): False,
            (CmpKind.ULT, 1): False,
            (CmpKind.ULE, 0): False,
        }.get((pred, rhs.value))
        if keep_inner is True:
            return lhs
        if keep_inner is False:
            return CmpExpr(pred=_NEGATED_PRED[lhs.pred], lhs=lhs.lhs, rhs=lhs.rhs)
    if lhs == rhs:
        if pred in (CmpKind.EQ, CmpKind.ULE, CmpKind.UGE):
            return TRUE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.UGT):
            return FALSE
    # A symbol compared against a constant beyond its width is decidable.
    if isinstance(lhs, Sym) and isinstance(rhs, Const) and rhs.value > lhs.mask:
        if pred in (CmpKind.EQ, CmpKind.UGT, CmpKind.UGE):
            return FALSE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.ULE):
            return TRUE
    return CmpExpr(pred=pred, lhs=lhs, rhs=rhs)


def make_select(cond: Expr, if_true: Expr, if_false: Expr) -> Expr:
    if isinstance(cond, Const):
        return if_true if cond.value != 0 else if_false
    if if_true == if_false:
        return if_true
    return SelectExpr(cond=cond, if_true=if_true, if_false=if_false)


def expr_eq(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.EQ, lhs, rhs)


def expr_ne(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.NE, lhs, rhs)


def expr_not(value: Expr) -> Expr:
    """Logical negation of a 0/1 condition expression."""
    if isinstance(value, Const):
        return FALSE if value.value else TRUE
    if isinstance(value, CmpExpr):
        negated = {
            CmpKind.EQ: CmpKind.NE,
            CmpKind.NE: CmpKind.EQ,
            CmpKind.ULT: CmpKind.UGE,
            CmpKind.ULE: CmpKind.UGT,
            CmpKind.UGT: CmpKind.ULE,
            CmpKind.UGE: CmpKind.ULT,
        }[value.pred]
        return CmpExpr(pred=negated, lhs=value.lhs, rhs=value.rhs)
    return make_cmp(CmpKind.EQ, value, Const(0))


def expr_and(lhs: Expr, rhs: Expr) -> Expr:
    """Logical conjunction of 0/1 conditions."""
    if isinstance(lhs, Const):
        return rhs if lhs.value else FALSE
    if isinstance(rhs, Const):
        return lhs if rhs.value else FALSE
    return make_binop(BinOpKind.AND, lhs, rhs)


def simplify(expr: Expr) -> Expr:
    """Re-normalise an expression bottom-up (idempotent)."""
    if isinstance(expr, (Const, Sym)):
        return expr
    if isinstance(expr, BinExpr):
        return make_binop(expr.op, simplify(expr.lhs), simplify(expr.rhs))
    if isinstance(expr, CmpExpr):
        return make_cmp(expr.pred, simplify(expr.lhs), simplify(expr.rhs))
    if isinstance(expr, SelectExpr):
        return make_select(simplify(expr.cond), simplify(expr.if_true), simplify(expr.if_false))
    return expr


def symbols_of(expr: Expr) -> set[Sym]:
    """All symbols occurring in ``expr``."""
    result: set[Sym] = set()
    _collect_symbols(expr, result)
    return result


def _collect_symbols(expr: Expr, into: set[Sym]) -> None:
    if isinstance(expr, Sym):
        into.add(expr)
    elif isinstance(expr, BinExpr):
        _collect_symbols(expr.lhs, into)
        _collect_symbols(expr.rhs, into)
    elif isinstance(expr, CmpExpr):
        _collect_symbols(expr.lhs, into)
        _collect_symbols(expr.rhs, into)
    elif isinstance(expr, SelectExpr):
        _collect_symbols(expr.cond, into)
        _collect_symbols(expr.if_true, into)
        _collect_symbols(expr.if_false, into)


def evaluate(expr: Expr, assignment: dict[str, int]) -> int:
    """Evaluate ``expr`` under a complete assignment of its symbols.

    Raises ``KeyError`` if a required symbol is missing from ``assignment``.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return assignment[expr.name] & expr.mask
    if isinstance(expr, BinExpr):
        return _apply_binop(expr.op, evaluate(expr.lhs, assignment), evaluate(expr.rhs, assignment))
    if isinstance(expr, CmpExpr):
        return _apply_cmp(expr.pred, evaluate(expr.lhs, assignment), evaluate(expr.rhs, assignment))
    if isinstance(expr, SelectExpr):
        cond = evaluate(expr.cond, assignment)
        return evaluate(expr.if_true if cond else expr.if_false, assignment)
    raise TypeError(f"cannot evaluate {expr!r}")


def substitute(expr: Expr, assignment: dict[str, int]) -> Expr:
    """Replace any symbols present in ``assignment`` by constants."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Sym):
        if expr.name in assignment:
            return Const(assignment[expr.name] & expr.mask)
        return expr
    if isinstance(expr, BinExpr):
        return make_binop(expr.op, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment))
    if isinstance(expr, CmpExpr):
        return make_cmp(expr.pred, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment))
    if isinstance(expr, SelectExpr):
        return make_select(
            substitute(expr.cond, assignment),
            substitute(expr.if_true, assignment),
            substitute(expr.if_false, assignment),
        )
    raise TypeError(f"cannot substitute into {expr!r}")


@lru_cache(maxsize=4096)
def expr_depth(expr: Expr) -> int:
    """Tree depth of an expression (used to cap solver effort)."""
    if isinstance(expr, (Const, Sym)):
        return 1
    if isinstance(expr, BinExpr):
        return 1 + max(expr_depth(expr.lhs), expr_depth(expr.rhs))
    if isinstance(expr, CmpExpr):
        return 1 + max(expr_depth(expr.lhs), expr_depth(expr.rhs))
    if isinstance(expr, SelectExpr):
        return 1 + max(expr_depth(expr.cond), expr_depth(expr.if_true), expr_depth(expr.if_false))
    return 1
