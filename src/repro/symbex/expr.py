"""Symbolic expressions over 64-bit unsigned machine words.

Expressions are small immutable trees: constants, named symbols (with a
declared bit width), binary operations reusing the NFIL operator set,
comparisons (producing 0/1) and selects.  Construction performs constant
folding and a handful of algebraic simplifications so that path constraints
stay small and the solver's pattern matching sees normalised shapes.

Expressions are **hash-consed**: every constructor interns its node, so
structurally equal expressions are pointer-equal, ``==``/``hash`` are O(1)
identity operations, and per-node analyses (``symbols_of``, ``expr_depth``,
``simplify``) are computed once and cached on the node.  This is what makes
the incremental solver contexts (``repro.symbex.incremental``) cheap: memo
tables can key on expression identity, and the substitution fast path can
skip whole subtrees whose symbols are untouched.

Interned nodes live for the process lifetime; long-running drivers can call
:func:`clear_expression_caches` between independent analyses.

Two concrete-execution fast paths are built on top of the interning:

* every node lazily caches a **compiled evaluator** (a closure tree built
  once per interned node) so repeated concrete evaluation — the solver's
  backtracking consistency checks, the engine's concolic shadow — costs
  plain integer operations instead of tree substitution;
* :func:`reduce_expr` is an exact, memoised equivalent of
  ``simplify(substitute(expr, assignment))``: fully-covered expressions go
  through the compiled evaluator without interning any intermediate node,
  and partially-covered reductions are memoised on (node, assignment
  projection) so backtracking and repeated ``Solver.check`` calls stop
  re-deriving the same reductions.
"""

from __future__ import annotations

from repro.ir.instructions import BinOpKind, CmpKind

MACHINE_BITS = 64
MACHINE_MASK = (1 << MACHINE_BITS) - 1

_EMPTY_SYMBOLS: frozenset = frozenset()
_EMPTY_NAMES: frozenset = frozenset()


class Expr:
    """Base class of all symbolic expressions.

    Subclasses intern their instances in ``__new__``; identity equality and
    hashing are therefore structural.  The hash is computed once at intern
    time and cached in a slot (``__hash__`` below), so hot memo tables keyed
    on expressions skip the C-level ``object.__hash__`` call.

    Pickling goes through each subclass's ``__reduce__``, which rebuilds the
    node via the interning constructor: a round-trip within one process
    returns the *same* interned object, and a cross-process round-trip (the
    parallel shard workers) re-interns the whole tree so identity equality
    holds in the destination process too.
    """

    __slots__ = ("symbols", "symbol_names", "depth", "_simplified", "_hash", "_evaluator")

    # Interning makes structural equality identity equality; keep object's
    # __eq__ (identity) for O(1) dict/set operations.  __hash__ returns the
    # identity hash captured at intern time.

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, Const)

    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self


class Const(Expr):
    """A concrete 64-bit value."""

    __slots__ = ("value",)

    _intern: dict[int, "Const"] = {}

    def __new__(cls, value: int) -> "Const":
        value &= MACHINE_MASK
        cached = cls._intern.get(value)
        if cached is None:
            cached = object.__new__(cls)
            cached._hash = object.__hash__(cached)
            cached.value = value
            cached.symbols = _EMPTY_SYMBOLS
            cached.symbol_names = _EMPTY_NAMES
            cached.depth = 1
            cached._simplified = cached
            cached._evaluator = lambda assignment, _v=value: _v
            cls._intern[value] = cached
        return cached

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"Const(value={self.value})"

    def __str__(self) -> str:
        return f"0x{self.value:x}" if self.value > 9 else str(self.value)


class Sym(Expr):
    """A named symbolic input with a bit width (default: full word)."""

    __slots__ = ("name", "bits")

    _intern: dict[tuple[str, int], "Sym"] = {}

    def __new__(cls, name: str, bits: int = MACHINE_BITS) -> "Sym":
        key = (name, bits)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached._hash = object.__hash__(cached)
            cached.name = name
            cached.bits = bits
            cached.symbols = frozenset((cached,))
            cached.symbol_names = frozenset((name,))
            cached.depth = 1
            cached._simplified = cached
            cached._evaluator = lambda assignment, _n=name, _m=(1 << bits) - 1: (
                assignment[_n] & _m
            )
            cls._intern[key] = cached
        return cached

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __reduce__(self):
        return (Sym, (self.name, self.bits))

    def __repr__(self) -> str:
        return f"Sym(name={self.name!r}, bits={self.bits})"

    def __str__(self) -> str:
        return self.name


class BinExpr(Expr):
    """A binary arithmetic/bitwise operation."""

    __slots__ = ("op", "lhs", "rhs")

    _intern: dict[tuple, "BinExpr"] = {}

    def __new__(cls, op: BinOpKind, lhs: Expr, rhs: Expr) -> "BinExpr":
        key = (op, lhs, rhs)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached._hash = object.__hash__(cached)
            cached.op = op
            cached.lhs = lhs
            cached.rhs = rhs
            cached.symbols = lhs.symbols | rhs.symbols
            cached.symbol_names = lhs.symbol_names | rhs.symbol_names
            cached.depth = 1 + max(lhs.depth, rhs.depth)
            cached._simplified = None
            cached._evaluator = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (BinExpr, (self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"BinExpr(op={self.op!r}, lhs={self.lhs!r}, rhs={self.rhs!r})"

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


class CmpExpr(Expr):
    """A comparison; evaluates to 1 (true) or 0 (false)."""

    __slots__ = ("pred", "lhs", "rhs")

    _intern: dict[tuple, "CmpExpr"] = {}

    def __new__(cls, pred: CmpKind, lhs: Expr, rhs: Expr) -> "CmpExpr":
        key = (pred, lhs, rhs)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached._hash = object.__hash__(cached)
            cached.pred = pred
            cached.lhs = lhs
            cached.rhs = rhs
            cached.symbols = lhs.symbols | rhs.symbols
            cached.symbol_names = lhs.symbol_names | rhs.symbol_names
            cached.depth = 1 + max(lhs.depth, rhs.depth)
            cached._simplified = None
            cached._evaluator = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (CmpExpr, (self.pred, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"CmpExpr(pred={self.pred!r}, lhs={self.lhs!r}, rhs={self.rhs!r})"

    def __str__(self) -> str:
        return f"({self.lhs} {self.pred.value} {self.rhs})"


class SelectExpr(Expr):
    """``cond ? if_true : if_false`` with a 0/1 condition."""

    __slots__ = ("cond", "if_true", "if_false")

    _intern: dict[tuple, "SelectExpr"] = {}

    def __new__(cls, cond: Expr, if_true: Expr, if_false: Expr) -> "SelectExpr":
        key = (cond, if_true, if_false)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached._hash = object.__hash__(cached)
            cached.cond = cond
            cached.if_true = if_true
            cached.if_false = if_false
            cached.symbols = cond.symbols | if_true.symbols | if_false.symbols
            cached.symbol_names = (
                cond.symbol_names | if_true.symbol_names | if_false.symbol_names
            )
            cached.depth = 1 + max(cond.depth, if_true.depth, if_false.depth)
            cached._simplified = None
            cached._evaluator = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (SelectExpr, (self.cond, self.if_true, self.if_false))

    def __repr__(self) -> str:
        return (
            f"SelectExpr(cond={self.cond!r}, if_true={self.if_true!r}, "
            f"if_false={self.if_false!r})"
        )

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


TRUE = Const(1)
FALSE = Const(0)


#: Callbacks invoked by :func:`clear_expression_caches`.  Caches elsewhere
#: that key on expression identity (e.g. the incremental solver's memo and
#: fingerprint tables) register here so they cannot outlive the interned
#: expressions their keys refer to.
_CACHE_CLEAR_HOOKS: list = []


def register_cache_clear_hook(hook) -> None:
    """Register a callable to run whenever expression caches are cleared."""
    _CACHE_CLEAR_HOOKS.append(hook)


def clear_expression_caches() -> None:
    """Drop all interned expressions (for long-running drivers and tests).

    Existing expression objects stay valid; new structurally-equal nodes
    created afterwards will no longer be pointer-equal to old ones, so only
    call this between independent analyses.  Identity-keyed caches that
    registered via :func:`register_cache_clear_hook` are cleared too, so
    recycled object ids cannot resurrect stale entries.
    """
    for cls in (Const, Sym, BinExpr, CmpExpr, SelectExpr):
        cls._intern.clear()
    # Keep the module-level singletons canonical so identity comparisons
    # against TRUE/FALSE still hold after a clear.
    Const._intern[FALSE.value] = FALSE
    Const._intern[TRUE.value] = TRUE
    for hook in _CACHE_CLEAR_HOOKS:
        hook()


def const(value: int) -> Const:
    return Const(value & MACHINE_MASK)


def _apply_binop(op: BinOpKind, lhs: int, rhs: int) -> int:
    if op is BinOpKind.ADD:
        return (lhs + rhs) & MACHINE_MASK
    if op is BinOpKind.SUB:
        return (lhs - rhs) & MACHINE_MASK
    if op is BinOpKind.MUL:
        return (lhs * rhs) & MACHINE_MASK
    if op is BinOpKind.UDIV:
        return (lhs // rhs) & MACHINE_MASK if rhs else MACHINE_MASK
    if op is BinOpKind.UREM:
        return (lhs % rhs) & MACHINE_MASK if rhs else lhs
    if op is BinOpKind.AND:
        return lhs & rhs
    if op is BinOpKind.OR:
        return lhs | rhs
    if op is BinOpKind.XOR:
        return lhs ^ rhs
    if op is BinOpKind.SHL:
        return (lhs << rhs) & MACHINE_MASK if rhs < MACHINE_BITS else 0
    if op is BinOpKind.LSHR:
        return lhs >> rhs if rhs < MACHINE_BITS else 0
    raise ValueError(f"unknown binary operation {op}")


def _apply_cmp(pred: CmpKind, lhs: int, rhs: int) -> int:
    if pred is CmpKind.EQ:
        return int(lhs == rhs)
    if pred is CmpKind.NE:
        return int(lhs != rhs)
    if pred is CmpKind.ULT:
        return int(lhs < rhs)
    if pred is CmpKind.ULE:
        return int(lhs <= rhs)
    if pred is CmpKind.UGT:
        return int(lhs > rhs)
    if pred is CmpKind.UGE:
        return int(lhs >= rhs)
    raise ValueError(f"unknown comparison {pred}")


#: Per-operator concrete implementations, used by the compiled evaluators and
#: the block compiler's constant short-circuits so neither pays the
#: ``_apply_binop`` if-chain per operation.  Semantics match ``_apply_binop``
#: / ``_apply_cmp`` exactly (64-bit unsigned, total on division by zero).
BINOP_FUNCS: dict[BinOpKind, "object"] = {
    BinOpKind.ADD: lambda x, y: (x + y) & MACHINE_MASK,
    BinOpKind.SUB: lambda x, y: (x - y) & MACHINE_MASK,
    BinOpKind.MUL: lambda x, y: (x * y) & MACHINE_MASK,
    BinOpKind.UDIV: lambda x, y: (x // y) & MACHINE_MASK if y else MACHINE_MASK,
    BinOpKind.UREM: lambda x, y: (x % y) & MACHINE_MASK if y else x,
    BinOpKind.AND: lambda x, y: x & y,
    BinOpKind.OR: lambda x, y: x | y,
    BinOpKind.XOR: lambda x, y: x ^ y,
    BinOpKind.SHL: lambda x, y: (x << y) & MACHINE_MASK if y < MACHINE_BITS else 0,
    BinOpKind.LSHR: lambda x, y: x >> y if y < MACHINE_BITS else 0,
}

CMP_FUNCS: dict[CmpKind, "object"] = {
    CmpKind.EQ: lambda x, y: 1 if x == y else 0,
    CmpKind.NE: lambda x, y: 1 if x != y else 0,
    CmpKind.ULT: lambda x, y: 1 if x < y else 0,
    CmpKind.ULE: lambda x, y: 1 if x <= y else 0,
    CmpKind.UGT: lambda x, y: 1 if x > y else 0,
    CmpKind.UGE: lambda x, y: 1 if x >= y else 0,
}


#: Trees deeper than this are compiled as closure trees instead of source
#: code, keeping clear of the bytecode compiler's nesting limits.
_CODEGEN_MAX_DEPTH = 48

#: Codegen inlines shared subtrees at every reference, so a DAG can expand
#: exponentially; expressions whose *expanded* size exceeds this bound fall
#: back to closure trees (which share compiled children).
_CODEGEN_MAX_EXPANDED = 3000

_EXPANDED_SIZE_MEMO: dict[Expr, int] = {}


def _expanded_size(expr: Expr) -> int:
    """Duplication-aware node count, saturating above the codegen bound."""
    cached = _EXPANDED_SIZE_MEMO.get(expr)
    if cached is not None:
        return cached
    kind = type(expr)
    if kind is Const or kind is Sym:
        size = 1
    elif kind is SelectExpr:
        size = 1 + _expanded_size(expr.cond) + _expanded_size(expr.if_true) + _expanded_size(
            expr.if_false
        )
    else:
        size = 1 + _expanded_size(expr.lhs) + _expanded_size(expr.rhs)
    if size > _CODEGEN_MAX_EXPANDED:
        size = _CODEGEN_MAX_EXPANDED + 1  # saturate: exact count is irrelevant
    _EXPANDED_SIZE_MEMO[expr] = size
    return size

_CMP_SOURCE = {
    CmpKind.EQ: "==",
    CmpKind.NE: "!=",
    CmpKind.ULT: "<",
    CmpKind.ULE: "<=",
    CmpKind.UGT: ">",
    CmpKind.UGE: ">=",
}

#: Globals for generated evaluator code: total-division/shift helpers.
_CODEGEN_GLOBALS = {
    "__builtins__": {},
    "_udiv": BINOP_FUNCS[BinOpKind.UDIV],
    "_urem": BINOP_FUNCS[BinOpKind.UREM],
    "_shl": BINOP_FUNCS[BinOpKind.SHL],
    "_lshr": BINOP_FUNCS[BinOpKind.LSHR],
}

_BINOP_SOURCE_SIMPLE = {
    BinOpKind.ADD: "(({l} + {r}) & 18446744073709551615)",
    BinOpKind.SUB: "(({l} - {r}) & 18446744073709551615)",
    BinOpKind.MUL: "(({l} * {r}) & 18446744073709551615)",
    BinOpKind.AND: "({l} & {r})",
    BinOpKind.OR: "({l} | {r})",
    BinOpKind.XOR: "({l} ^ {r})",
}

_BINOP_SOURCE_HELPER = {
    BinOpKind.UDIV: "_udiv",
    BinOpKind.UREM: "_urem",
    BinOpKind.SHL: "_shl",
    BinOpKind.LSHR: "_lshr",
}


def _emit_source(expr: Expr) -> str:
    """Python source computing ``expr``'s value from the assignment dict ``a``."""
    kind = type(expr)
    if kind is Const:
        return repr(expr.value)
    if kind is Sym:
        return f"(a[{expr.name!r}] & {expr.mask})"
    if kind is BinExpr:
        lhs = _emit_source(expr.lhs)
        rhs = _emit_source(expr.rhs)
        op = expr.op
        template = _BINOP_SOURCE_SIMPLE.get(op)
        if template is not None:
            return template.format(l=lhs, r=rhs)
        # Constant shifts (the overwhelmingly common case) inline; symbolic
        # shift amounts and division go through the total helper functions.
        if type(expr.rhs) is Const and expr.rhs.value < MACHINE_BITS:
            if op is BinOpKind.SHL:
                return f"(({lhs} << {expr.rhs.value}) & {MACHINE_MASK})"
            if op is BinOpKind.LSHR:
                return f"({lhs} >> {expr.rhs.value})"
        return f"{_BINOP_SOURCE_HELPER[op]}({lhs}, {rhs})"
    if kind is CmpExpr:
        return f"(1 if {_emit_source(expr.lhs)} {_CMP_SOURCE[expr.pred]} {_emit_source(expr.rhs)} else 0)"
    if kind is SelectExpr:
        # Conditional expression: only the taken branch evaluates, exactly
        # like evaluate()/substitute().
        return (
            f"({_emit_source(expr.if_true)} if {_emit_source(expr.cond)}"
            f" else {_emit_source(expr.if_false)})"
        )
    raise TypeError(f"cannot evaluate {expr!r}")


def _closure_evaluator(expr: Expr):
    """Closure-tree evaluator (fallback for trees too deep to codegen)."""
    kind = type(expr)
    if kind is BinExpr:
        lf = compiled_evaluator(expr.lhs)
        rf = compiled_evaluator(expr.rhs)
        op = BINOP_FUNCS[expr.op]
        return lambda a, _op=op, _lf=lf, _rf=rf: _op(_lf(a), _rf(a))
    if kind is CmpExpr:
        lf = compiled_evaluator(expr.lhs)
        rf = compiled_evaluator(expr.rhs)
        op = CMP_FUNCS[expr.pred]
        return lambda a, _op=op, _lf=lf, _rf=rf: _op(_lf(a), _rf(a))
    if kind is SelectExpr:
        cf = compiled_evaluator(expr.cond)
        tf = compiled_evaluator(expr.if_true)
        ff = compiled_evaluator(expr.if_false)
        return lambda a, _cf=cf, _tf=tf, _ff=ff: _tf(a) if _cf(a) else _ff(a)
    raise TypeError(f"cannot evaluate {expr!r}")


def compiled_evaluator(expr: Expr):
    """The node's compiled concrete evaluator (built once, cached on the node).

    The returned callable maps an assignment dict to the expression's value
    under exactly :func:`evaluate`'s semantics: symbols read
    ``assignment[name] & mask`` (raising ``KeyError`` when missing — callers
    that want missing symbols to read 0 pass a ``__missing__``-style dict),
    and only the taken branch of a select is evaluated.

    Shallow trees compile to a single generated Python function (one call
    per evaluation); deep trees fall back to a closure tree (one call per
    node), which has no nesting limit.
    """
    ev = expr._evaluator
    if ev is None:
        if expr.depth <= _CODEGEN_MAX_DEPTH and _expanded_size(expr) <= _CODEGEN_MAX_EXPANDED:
            try:
                ev = eval(f"lambda a: {_emit_source(expr)}", dict(_CODEGEN_GLOBALS))
            except (SyntaxError, MemoryError, RecursionError):  # pragma: no cover
                ev = _closure_evaluator(expr)
        else:
            ev = _closure_evaluator(expr)
        expr._evaluator = ev
    return ev


def _interpret(expr: Expr, a: dict) -> int:
    """One-shot tree-walk evaluation (no caching, no codegen).

    Value-identical to ``compiled_evaluator(expr)(a)``: symbols read
    ``a[name] & mask``, binops/compares apply ``BINOP_FUNCS``/``CMP_FUNCS``
    (the same tables codegen templates encode), and only the taken branch
    of a select evaluates.  Used for expressions seen fully-assigned for
    the first time, where a ~40µs codegen compile for a single evaluation
    is the dominant cost; nodes that already own an evaluator use it.
    """
    kind = type(expr)
    if kind is Const:
        return expr.value
    if kind is Sym:
        return a[expr.name] & expr.mask
    ev = expr._evaluator
    if ev is not None:
        return ev(a)
    if kind is BinExpr:
        return BINOP_FUNCS[expr.op](_interpret(expr.lhs, a), _interpret(expr.rhs, a))
    if kind is CmpExpr:
        return CMP_FUNCS[expr.pred](_interpret(expr.lhs, a), _interpret(expr.rhs, a))
    if kind is SelectExpr:
        if _interpret(expr.cond, a):
            return _interpret(expr.if_true, a)
        return _interpret(expr.if_false, a)
    raise TypeError(f"cannot evaluate {expr!r}")


#: Fully-assigned expressions evaluated exactly once so far: the second
#: sighting pays for a compiled evaluator, the first walks the tree.
_EVAL_ONCE_LIMIT = 1 << 17
_EVAL_ONCE: set[Expr] = set()


def _eval_fully_assigned(expr: Expr, assignment: dict[str, int]) -> int:
    ev = expr._evaluator
    if ev is not None:
        return ev(assignment)
    if expr in _EVAL_ONCE:
        return compiled_evaluator(expr)(assignment)
    if len(_EVAL_ONCE) >= _EVAL_ONCE_LIMIT:
        _EVAL_ONCE.clear()
    _EVAL_ONCE.add(expr)
    return _interpret(expr, assignment)


#: Bound on the reduction memo; when exceeded the table is cleared (entries
#: regenerate on demand, sharing is the only thing lost).
_REDUCE_MEMO_LIMIT = 1 << 17

_REDUCE_MEMO: dict[tuple, Expr] = {}
#: Per-node sorted symbol names, so reduction memo keys are cheap to build.
_SORTED_NAMES: dict[Expr, tuple[str, ...]] = {}


def reduce_expr(expr: Expr, assignment: dict[str, int]) -> Expr:
    """Exactly ``simplify(substitute(expr, assignment))``, but fast.

    Three tiers, all returning the identical interned node the slow form
    would return (the incremental solver and the backtracking search rely on
    this equivalence for byte-identical outputs):

    1. no assigned symbol occurs in ``expr`` → ``simplify(expr)`` (cached);
    2. *every* symbol is assigned → the compiled evaluator computes the
       concrete value directly — no intermediate node is interned;
    3. partial coverage → the substitution runs once and is memoised on
       (node, projection of the assignment onto the node's symbols).
    """
    names = expr.symbol_names
    if not names or not assignment:
        return simplify(expr)
    hit = missing = False
    for name in names:  # O(|names|), names is small; never iterate the assignment
        if name in assignment:
            hit = True
        else:
            missing = True
    if not hit:
        return simplify(expr)
    if not missing:
        return Const(_eval_fully_assigned(expr, assignment))
    sorted_names = _SORTED_NAMES.get(expr)
    if sorted_names is None:
        sorted_names = tuple(sorted(names))
        _SORTED_NAMES[expr] = sorted_names
    key = (expr, tuple(assignment.get(name) for name in sorted_names))
    reduced = _REDUCE_MEMO.get(key)
    if reduced is None:
        reduced = simplify(substitute(expr, assignment))
        if len(_REDUCE_MEMO) >= _REDUCE_MEMO_LIMIT:
            _REDUCE_MEMO.clear()
        _REDUCE_MEMO[key] = reduced
    return reduced


def reduce_concrete(expr: Expr, assignment: dict[str, int]) -> int | None:
    """``reduce_expr(...)``'s value when it collapses to a constant, else None.

    Exactly equivalent to ``reduce_expr(expr, assignment)`` followed by an
    ``isinstance(_, Const)`` check on a *pre-normalised* expression (one that
    is its own ``simplify`` fixpoint and is not already ``Const``), but skips
    interning the result constant.  The solver's backtracking consistency
    checks — the hottest loop of ``Solver.check`` — use this form.
    """
    names = expr.symbol_names
    if not names or not assignment:
        return None
    missing = hit = False
    for name in names:
        if name in assignment:
            hit = True
        else:
            missing = True
    if not hit:
        return None
    if not missing:
        return _eval_fully_assigned(expr, assignment)
    reduced = reduce_expr(expr, assignment)
    if reduced.__class__ is Const:
        return reduced.value
    return None


def _clear_reduction_caches() -> None:
    _REDUCE_MEMO.clear()
    _SORTED_NAMES.clear()
    _SUBSTITUTE_MEMO.clear()
    _EXPANDED_SIZE_MEMO.clear()
    _EVAL_ONCE.clear()


# The reduction memo keys on interned nodes; it must not outlive them.
register_cache_clear_hook(_clear_reduction_caches)


def make_binop(op: BinOpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a binary operation with constant folding and simplification."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_binop(op, lhs.value, rhs.value))
    # Identity simplifications that keep solver patterns clean.
    if isinstance(rhs, Const):
        if rhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.OR,
                                     BinOpKind.XOR, BinOpKind.SHL, BinOpKind.LSHR):
            return lhs
        if rhs.value == 0 and op is BinOpKind.AND:
            return Const(0)
        if rhs.value == MACHINE_MASK and op is BinOpKind.AND:
            return lhs
        if rhs.value == 1 and op is BinOpKind.MUL:
            return lhs
        if rhs.value == 0 and op is BinOpKind.MUL:
            return Const(0)
    if isinstance(lhs, Const):
        if lhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.OR, BinOpKind.XOR):
            return rhs
        if lhs.value == 0 and op in (BinOpKind.AND, BinOpKind.MUL, BinOpKind.SHL,
                                     BinOpKind.LSHR, BinOpKind.UDIV, BinOpKind.UREM):
            return Const(0)
        if lhs.value == 1 and op is BinOpKind.MUL:
            return rhs
    # Masking a symbol to (or beyond) its declared width is a no-op.
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, Sym)
        and (lhs.mask & rhs.value) == lhs.mask
    ):
        return lhs
    # Collapse nested shifts by constants: (x >> a) >> b = x >> (a+b).
    if (
        op is BinOpKind.LSHR
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.LSHR
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.LSHR, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant additions: (x + a) + b = x + (a+b).
    if (
        op is BinOpKind.ADD
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.ADD
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.ADD, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant masks: (x & a) & b = x & (a&b).
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.AND
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.AND, lhs.lhs, Const(lhs.rhs.value & rhs.value))
    return BinExpr(op, lhs, rhs)


_NEGATED_PRED = {
    CmpKind.EQ: CmpKind.NE,
    CmpKind.NE: CmpKind.EQ,
    CmpKind.ULT: CmpKind.UGE,
    CmpKind.ULE: CmpKind.UGT,
    CmpKind.UGT: CmpKind.ULE,
    CmpKind.UGE: CmpKind.ULT,
}


def make_cmp(pred: CmpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a comparison with constant folding."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_cmp(pred, lhs.value, rhs.value))
    # Comparisons of a 0/1 comparison result against 0 or 1 collapse to the
    # inner comparison (possibly negated): this is what branch conditions on
    # compare instructions produce, and the solver relies on the flat form.
    if isinstance(lhs, CmpExpr) and isinstance(rhs, Const) and rhs.value in (0, 1):
        keep_inner = {
            (CmpKind.EQ, 1): True,
            (CmpKind.NE, 0): True,
            (CmpKind.UGE, 1): True,
            (CmpKind.UGT, 0): True,
            (CmpKind.EQ, 0): False,
            (CmpKind.NE, 1): False,
            (CmpKind.ULT, 1): False,
            (CmpKind.ULE, 0): False,
        }.get((pred, rhs.value))
        if keep_inner is True:
            return lhs
        if keep_inner is False:
            return CmpExpr(_NEGATED_PRED[lhs.pred], lhs.lhs, lhs.rhs)
    if lhs is rhs:
        if pred in (CmpKind.EQ, CmpKind.ULE, CmpKind.UGE):
            return TRUE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.UGT):
            return FALSE
    # A symbol compared against a constant beyond its width is decidable.
    if isinstance(lhs, Sym) and isinstance(rhs, Const) and rhs.value > lhs.mask:
        if pred in (CmpKind.EQ, CmpKind.UGT, CmpKind.UGE):
            return FALSE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.ULE):
            return TRUE
    return CmpExpr(pred, lhs, rhs)


def make_select(cond: Expr, if_true: Expr, if_false: Expr) -> Expr:
    if isinstance(cond, Const):
        return if_true if cond.value != 0 else if_false
    if if_true is if_false:
        return if_true
    return SelectExpr(cond, if_true, if_false)


def expr_eq(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.EQ, lhs, rhs)


def expr_ne(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.NE, lhs, rhs)


def expr_not(value: Expr) -> Expr:
    """Logical negation of a 0/1 condition expression."""
    if isinstance(value, Const):
        return FALSE if value.value else TRUE
    if isinstance(value, CmpExpr):
        return CmpExpr(_NEGATED_PRED[value.pred], value.lhs, value.rhs)
    return make_cmp(CmpKind.EQ, value, Const(0))


def expr_and(lhs: Expr, rhs: Expr) -> Expr:
    """Logical conjunction of 0/1 conditions."""
    if isinstance(lhs, Const):
        return rhs if lhs.value else FALSE
    if isinstance(rhs, Const):
        return lhs if rhs.value else FALSE
    return make_binop(BinOpKind.AND, lhs, rhs)


def simplify(expr: Expr) -> Expr:
    """Re-normalise an expression bottom-up (idempotent, cached per node)."""
    cached = expr._simplified
    if cached is not None:
        return cached
    if isinstance(expr, BinExpr):
        result = make_binop(expr.op, simplify(expr.lhs), simplify(expr.rhs))
    elif isinstance(expr, CmpExpr):
        result = make_cmp(expr.pred, simplify(expr.lhs), simplify(expr.rhs))
    elif isinstance(expr, SelectExpr):
        result = make_select(
            simplify(expr.cond), simplify(expr.if_true), simplify(expr.if_false)
        )
    else:
        result = expr
    result._simplified = result  # simplification is idempotent
    expr._simplified = result
    return result


def symbols_of(expr: Expr) -> frozenset[Sym]:
    """All symbols occurring in ``expr`` (cached on the node, O(1))."""
    return expr.symbols


def evaluate(expr: Expr, assignment: dict[str, int]) -> int:
    """Evaluate ``expr`` under a complete assignment of its symbols.

    Raises ``KeyError`` if a required symbol is missing from ``assignment``.
    Runs through the node's compiled evaluator, so repeated evaluation of
    the same (interned) expression is pure integer work.
    """
    ev = expr._evaluator
    if ev is None:
        ev = compiled_evaluator(expr)
    return ev(assignment)


#: Subtrees at least this deep get their substitutions memoised; shallower
#: ones are cheaper to recompute than to key.
_SUBSTITUTE_MEMO_MIN_DEPTH = 4

_SUBSTITUTE_MEMO: dict[tuple, Expr] = {}


def substitute(expr: Expr, assignment: dict[str, int]) -> Expr:
    """Replace any symbols present in ``assignment`` by constants.

    Subtrees mentioning no assigned symbol are returned unchanged (O(1)
    thanks to the per-node symbol-name cache), so substitution cost scales
    with the touched part of the tree, not its total size.  Deep touched
    subtrees are additionally memoised on (node, assignment projection):
    hash-consing makes key subexpressions (packed flow keys, havoc chains)
    recur across many constraints, and the backtracking search re-projects
    them under the same partial assignments over and over.
    """
    names = expr.symbol_names
    if not names or not assignment:
        return expr
    for name in names:
        if name in assignment:
            break
    else:
        return expr
    if isinstance(expr, Sym):
        if expr.name in assignment:
            return Const(assignment[expr.name] & expr.mask)
        return expr
    key = None
    if expr.depth >= _SUBSTITUTE_MEMO_MIN_DEPTH:
        sorted_names = _SORTED_NAMES.get(expr)
        if sorted_names is None:
            sorted_names = tuple(sorted(names))
            _SORTED_NAMES[expr] = sorted_names
        key = (expr, tuple(assignment.get(name) for name in sorted_names))
        cached = _SUBSTITUTE_MEMO.get(key)
        if cached is not None:
            return cached
    if isinstance(expr, BinExpr):
        result = make_binop(
            expr.op, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment)
        )
    elif isinstance(expr, CmpExpr):
        result = make_cmp(
            expr.pred, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment)
        )
    elif isinstance(expr, SelectExpr):
        result = make_select(
            substitute(expr.cond, assignment),
            substitute(expr.if_true, assignment),
            substitute(expr.if_false, assignment),
        )
    else:
        raise TypeError(f"cannot substitute into {expr!r}")
    if key is not None:
        if len(_SUBSTITUTE_MEMO) >= _REDUCE_MEMO_LIMIT:
            _SUBSTITUTE_MEMO.clear()
        _SUBSTITUTE_MEMO[key] = result
    return result


def expr_depth(expr: Expr) -> int:
    """Tree depth of an expression (used to cap solver effort)."""
    return expr.depth


# -- columnar (many-lanes) evaluation ------------------------------------------------
#
# The vectorized frontier tier (repro.symbex.vexec) and the solver's
# candidate screen evaluate the *same* expression under many assignments at
# once: one column per symbol, one lane per frontier state (or per candidate
# value).  The per-op implementations below mirror BINOP_FUNCS / CMP_FUNCS
# exactly on uint64 columns — wrap-around ADD/SUB/MUL, shifts >= 64 yielding
# 0, total division (x/0 = MACHINE_MASK, x%0 = x) and 0/1 comparisons — so a
# columnar evaluation of lane i always equals the scalar evaluation under
# that lane's assignment.

try:  # numpy is the optional [vector] extra; every columnar path is gated.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the degradation tests
    _np = None

HAVE_NUMPY = _np is not None


def _vec_tables():
    np = _np
    u64 = np.uint64
    zero = u64(0)
    mask = u64(MACHINE_MASK)
    shift_cap = u64(63)
    one = u64(1)
    bits = u64(MACHINE_BITS)

    def shl(x, y):
        ok = np.less(y, bits)
        return np.where(ok, np.left_shift(x, np.minimum(y, shift_cap)), zero)

    def lshr(x, y):
        ok = np.less(y, bits)
        return np.where(ok, np.right_shift(x, np.minimum(y, shift_cap)), zero)

    def udiv(x, y):
        nz = np.not_equal(y, zero)
        return np.where(nz, np.floor_divide(x, np.where(nz, y, one)), mask)

    def urem(x, y):
        nz = np.not_equal(y, zero)
        return np.where(nz, np.remainder(x, np.where(nz, y, one)), x)

    binop = {
        BinOpKind.ADD: np.add,
        BinOpKind.SUB: np.subtract,
        BinOpKind.MUL: np.multiply,
        BinOpKind.UDIV: udiv,
        BinOpKind.UREM: urem,
        BinOpKind.AND: np.bitwise_and,
        BinOpKind.OR: np.bitwise_or,
        BinOpKind.XOR: np.bitwise_xor,
        BinOpKind.SHL: shl,
        BinOpKind.LSHR: lshr,
    }

    def mk_cmp(fn):
        def cmp(x, y, _fn=fn):
            return _fn(x, y).astype(u64)

        return cmp

    cmp = {
        CmpKind.EQ: mk_cmp(np.equal),
        CmpKind.NE: mk_cmp(np.not_equal),
        CmpKind.ULT: mk_cmp(np.less),
        CmpKind.ULE: mk_cmp(np.less_equal),
        CmpKind.UGT: mk_cmp(np.greater),
        CmpKind.UGE: mk_cmp(np.greater_equal),
    }
    return binop, cmp


#: numpy-ufunc twins of BINOP_FUNCS / CMP_FUNCS (None without numpy).
VEC_BINOP_FUNCS, VEC_CMP_FUNCS = _vec_tables() if HAVE_NUMPY else (None, None)

_COLUMN_EVALUATORS: dict[Expr, object] = {}


def _clear_column_evaluators() -> None:
    _COLUMN_EVALUATORS.clear()


register_cache_clear_hook(_clear_column_evaluators)


def _build_column_evaluator(expr: Expr):
    """Compile ``expr`` into a columnar evaluation *schedule*.

    Interned expressions are DAGs, not trees: a hash unrolled symbolically
    references each round's partial state several times, so a naive
    closure-per-node evaluator re-derives shared subtrees once per
    *reference* — exponential work on exactly the expressions the scoring
    layer cares about.  Instead, walk the DAG once in topological order and
    emit one step per unique node; evaluation runs the schedule into a slot
    array, so every node is computed exactly once per call.
    """
    np = _np
    zero = np.uint64(0)

    # Iterative postorder over unique nodes (interning makes identity the
    # same as structural equality).
    order: list[Expr] = []
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        kind = node.__class__
        if kind is BinExpr or kind is CmpExpr:
            stack.append((node.lhs, False))
            stack.append((node.rhs, False))
        elif kind is SelectExpr:
            stack.append((node.cond, False))
            stack.append((node.if_true, False))
            stack.append((node.if_false, False))

    slot_of = {id(node): slot for slot, node in enumerate(order)}
    # Step encodings: (0, const) | (1, name, mask|None) | (2, fn, l, r)
    # for bin/cmp | (3, cond, if_true, if_false) for select.
    steps: list[tuple] = []
    for node in order:
        kind = node.__class__
        if kind is Const:
            steps.append((0, np.uint64(node.value)))
        elif kind is Sym:
            mask = None if node.bits == MACHINE_BITS else np.uint64(node.mask)
            steps.append((1, node.name, mask))
        elif kind is BinExpr:
            steps.append(
                (2, VEC_BINOP_FUNCS[node.op], slot_of[id(node.lhs)], slot_of[id(node.rhs)])
            )
        elif kind is CmpExpr:
            steps.append(
                (2, VEC_CMP_FUNCS[node.pred], slot_of[id(node.lhs)], slot_of[id(node.rhs)])
            )
        elif kind is SelectExpr:
            # Both branches are evaluated (they are total functions, so this
            # is value-identical to the scalar short-circuit), merged lanewise.
            steps.append(
                (
                    3,
                    slot_of[id(node.cond)],
                    slot_of[id(node.if_true)],
                    slot_of[id(node.if_false)],
                )
            )
        else:
            raise TypeError(f"cannot build a column evaluator for {node!r}")

    def ev(columns, _steps=steps, _np=np, _zero=zero):
        slots = [None] * len(_steps)
        for index, step in enumerate(_steps):
            tag = step[0]
            if tag == 2:
                slots[index] = step[1](slots[step[2]], slots[step[3]])
            elif tag == 1:
                column = columns[step[1]]
                slots[index] = column if step[2] is None else _np.bitwise_and(column, step[2])
            elif tag == 0:
                slots[index] = step[1]
            else:
                slots[index] = _np.where(
                    _np.not_equal(slots[step[1]], _zero), slots[step[2]], slots[step[3]]
                )
        return slots[-1]

    return ev


def column_evaluator(expr: Expr):
    """A callable mapping ``{symbol name: uint64 column}`` to a result column.

    Lane ``i`` of the result equals ``evaluate(expr, {n: int(col[n][i])})``
    for every expression: the per-op kernels replicate the exact 64-bit
    semantics of :data:`BINOP_FUNCS` / :data:`CMP_FUNCS`.  Evaluators are
    cached per interned node (cleared with the expression caches).  Returns
    ``None`` when numpy is unavailable.
    """
    if not HAVE_NUMPY:
        return None
    ev = _COLUMN_EVALUATORS.get(expr)
    if ev is None:
        ev = _build_column_evaluator(expr)
        _COLUMN_EVALUATORS[expr] = ev
    return ev


def lockstep_evaluate(exprs: "list[Expr]", assignment) -> "list[int] | None":
    """Values of many structurally parallel expressions under ONE assignment.

    The dual of :func:`column_evaluator` (one expression, many assignments):
    here many expressions are evaluated under one shared assignment.  The
    vector tier resolves a group's branch conditions this way — lanes parked
    at the same program point built their conditions through the same
    instruction run, so the expression *shapes* match and only the leaves
    differ.  Positions are walked in lockstep: one uint64 column per node
    position (lane ``i`` holds expression ``i``'s value at that position),
    leaves gathered across the group, operators applied once per position
    through the exact vectorized tables.  A memo keyed on the node tuple
    makes DAG sharing cost one evaluation per unique position, and an
    all-identical position short-circuits to one scalar evaluation.

    Returns ``[evaluate(e, assignment) for e in exprs]``, or ``None`` when
    numpy is missing, the shapes diverge, or a symbol is unassigned —
    callers fall back to scalar evaluation; this function never guesses.
    """
    if not HAVE_NUMPY or not exprs:
        return None
    np = _np
    count = len(exprs)
    memo: dict[tuple, object] = {}

    def column(nodes: tuple):
        cached = memo.get(nodes)
        if cached is not None:
            return cached
        first = nodes[0]
        kind = first.__class__
        if all(node is first for node in nodes):
            result = np.full(count, np.uint64(evaluate(first, assignment)), dtype=np.uint64)
        elif any(node.__class__ is not kind for node in nodes):
            return None
        elif kind is Const:
            result = np.array([node.value for node in nodes], dtype=np.uint64)
        elif kind is Sym:
            result = np.array(
                [assignment[node.name] & node.mask for node in nodes], dtype=np.uint64
            )
        elif kind is BinExpr:
            op = first.op
            if any(node.op is not op for node in nodes):
                return None
            lhs = column(tuple(node.lhs for node in nodes))
            rhs = column(tuple(node.rhs for node in nodes))
            if lhs is None or rhs is None:
                return None
            result = VEC_BINOP_FUNCS[op](lhs, rhs)
        elif kind is CmpExpr:
            pred = first.pred
            if any(node.pred is not pred for node in nodes):
                return None
            lhs = column(tuple(node.lhs for node in nodes))
            rhs = column(tuple(node.rhs for node in nodes))
            if lhs is None or rhs is None:
                return None
            result = VEC_CMP_FUNCS[pred](lhs, rhs)
        elif kind is SelectExpr:
            cond = column(tuple(node.cond for node in nodes))
            if_true = column(tuple(node.if_true for node in nodes))
            if_false = column(tuple(node.if_false for node in nodes))
            if cond is None or if_true is None or if_false is None:
                return None
            # Both sides are total functions, so evaluating them lanewise and
            # merging is value-identical to the scalar short-circuit.
            result = np.where(np.not_equal(cond, np.uint64(0)), if_true, if_false)
        else:
            return None
        memo[nodes] = result
        return result

    try:
        out = column(tuple(exprs))
    except (KeyError, RecursionError):
        return None
    if out is None:
        return None
    return [int(value) for value in out]


_DAG_EVALUATORS: dict[Expr, object] = {}


def _clear_dag_evaluators() -> None:
    _DAG_EVALUATORS.clear()


register_cache_clear_hook(_clear_dag_evaluators)


def dag_evaluator(expr: Expr):
    """A scalar evaluator that computes each unique DAG node exactly once.

    :func:`evaluate` walks the expression as a *tree*: a shared node is
    re-evaluated once per reference, which is exponential on heavily shared
    DAGs like the symbolically unrolled flow hash.  The returned callable is
    value-identical to ``evaluate(expr, assignment)`` for every complete
    assignment — every operator (including ``UDIV``/``UREM``) is total, so
    evaluating both branches of a select instead of only the taken one
    cannot change the result — but runs in time linear in the number of
    *unique* nodes.  Needs no numpy; this is the scalar reference path of
    the scoring layer.
    """
    ev = _DAG_EVALUATORS.get(expr)
    if ev is not None:
        return ev

    order: list[Expr] = []
    seen: set[int] = set()
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        kind = node.__class__
        if kind is BinExpr or kind is CmpExpr:
            stack.append((node.lhs, False))
            stack.append((node.rhs, False))
        elif kind is SelectExpr:
            stack.append((node.cond, False))
            stack.append((node.if_true, False))
            stack.append((node.if_false, False))

    slot_of = {id(node): slot for slot, node in enumerate(order)}
    # Step encodings mirror _build_column_evaluator: (0, const) |
    # (1, name, mask) | (2, fn, l, r) for bin/cmp | (3, cond, t, f).
    steps: list[tuple] = []
    for node in order:
        kind = node.__class__
        if kind is Const:
            steps.append((0, node.value))
        elif kind is Sym:
            steps.append((1, node.name, node.mask))
        elif kind is BinExpr:
            steps.append(
                (2, BINOP_FUNCS[node.op], slot_of[id(node.lhs)], slot_of[id(node.rhs)])
            )
        elif kind is CmpExpr:
            steps.append(
                (2, CMP_FUNCS[node.pred], slot_of[id(node.lhs)], slot_of[id(node.rhs)])
            )
        elif kind is SelectExpr:
            steps.append(
                (
                    3,
                    slot_of[id(node.cond)],
                    slot_of[id(node.if_true)],
                    slot_of[id(node.if_false)],
                )
            )
        else:
            raise TypeError(f"cannot evaluate {node!r}")

    def ev(assignment, _steps=steps):
        slots = [0] * len(_steps)
        for index, step in enumerate(_steps):
            tag = step[0]
            if tag == 2:
                slots[index] = step[1](slots[step[2]], slots[step[3]])
            elif tag == 1:
                slots[index] = assignment[step[1]] & step[2]
            elif tag == 0:
                slots[index] = step[1]
            else:
                slots[index] = slots[step[2]] if slots[step[1]] else slots[step[3]]
        return slots[-1]

    _DAG_EVALUATORS[expr] = ev
    return ev


# -- extraction: serialization and symbol renaming -----------------------------------
#
# The adversarial-signature layer (repro.scoring) persists predicates —
# mask/shift/compare trees over packet fields — as JSON next to the PR 8
# result store, and lifts the engine's per-packet havoc key expressions
# (symbols like ``pkt3.src_port``) into per-packet-stream predicates over the
# canonical field symbols.  Both operations live here because they must track
# the node classes exactly.

_EXPR_TAGS = {"const", "sym", "bin", "cmp", "select"}

#: Format tag of the serialized expression envelope.  The payload is a
#: *node table*, not a nested tree: expressions are interned DAGs, and a
#: per-reference tree rendering of (say) an unrolled hash — where every
#: round's intermediate feeds several later rounds — expands exponentially
#: in both serialization time and JSON size.  The table lists each unique
#: node exactly once, in dependency order, with children as integer indices.
EXPR_DICT_FORMAT = "expr-dag-v1"


def expr_to_dict(expr: Expr) -> dict:
    """A JSON-safe, sharing-preserving rendering of an expression DAG.

    Returns ``{"k": "expr-dag-v1", "nodes": [...], "root": <index>}`` where
    ``nodes`` holds one entry per *unique* node in iterative postorder and
    children are referenced by table index.  Size and time are linear in
    the number of unique nodes regardless of how often they are shared.

    Operators serialize by enum *name* (``"ADD"``, ``"ULT"``), which is the
    stable identifier — the dialect token (``op.value``) is display syntax.
    """
    nodes: list[dict] = []
    index: dict[int, int] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in index:
            continue
        kind = type(node)
        if not expanded:
            stack.append((node, True))
            if kind is BinExpr or kind is CmpExpr:
                stack.append((node.lhs, False))
                stack.append((node.rhs, False))
            elif kind is SelectExpr:
                stack.append((node.cond, False))
                stack.append((node.if_true, False))
                stack.append((node.if_false, False))
            continue
        if kind is Const:
            entry = {"k": "const", "v": node.value}
        elif kind is Sym:
            entry = {"k": "sym", "name": node.name, "bits": node.bits}
        elif kind is BinExpr:
            entry = {
                "k": "bin",
                "op": node.op.name,
                "lhs": index[id(node.lhs)],
                "rhs": index[id(node.rhs)],
            }
        elif kind is CmpExpr:
            entry = {
                "k": "cmp",
                "pred": node.pred.name,
                "lhs": index[id(node.lhs)],
                "rhs": index[id(node.rhs)],
            }
        elif kind is SelectExpr:
            entry = {
                "k": "select",
                "cond": index[id(node.cond)],
                "if_true": index[id(node.if_true)],
                "if_false": index[id(node.if_false)],
            }
        else:
            raise TypeError(f"cannot serialize {node!r}")
        index[key] = len(nodes)
        nodes.append(entry)
    return {"k": EXPR_DICT_FORMAT, "nodes": nodes, "root": index[id(expr)]}


def expr_from_dict(data: dict) -> Expr:
    """Rebuild an expression from :func:`expr_to_dict` output.

    Reconstruction goes through the normalising ``make_*`` constructors,
    which are idempotent on already-normalised trees — a round trip of a
    predicate built through them returns the *same* interned node, and
    shared children rebuild once (by table index), never per reference.
    """
    if not isinstance(data, dict) or data.get("k") != EXPR_DICT_FORMAT:
        raise ValueError(f"not a serialized expression: {data!r}")
    raw_nodes = data["nodes"]
    root = int(data["root"])
    if not isinstance(raw_nodes, list) or not 0 <= root < len(raw_nodes):
        raise ValueError(f"malformed expression table: {data!r}")
    built: list[Expr] = []

    def child(entry: dict, field: str, limit: int) -> Expr:
        ref = int(entry[field])
        if not 0 <= ref < limit:
            raise ValueError(f"forward or out-of-range node reference: {entry!r}")
        return built[ref]

    for position, entry in enumerate(raw_nodes):
        if not isinstance(entry, dict) or entry.get("k") not in _EXPR_TAGS:
            raise ValueError(f"not a serialized expression node: {entry!r}")
        kind = entry["k"]
        if kind == "const":
            node = Const(int(entry["v"]))
        elif kind == "sym":
            node = Sym(str(entry["name"]), bits=int(entry["bits"]))
        elif kind == "bin":
            node = make_binop(
                BinOpKind[entry["op"]],
                child(entry, "lhs", position),
                child(entry, "rhs", position),
            )
        elif kind == "cmp":
            node = make_cmp(
                CmpKind[entry["pred"]],
                child(entry, "lhs", position),
                child(entry, "rhs", position),
            )
        else:
            node = make_select(
                child(entry, "cond", position),
                child(entry, "if_true", position),
                child(entry, "if_false", position),
            )
        built.append(node)
    return built[root]


def rename_symbols(expr: Expr, mapping: dict[str, Sym]) -> Expr:
    """Rebuild ``expr`` with every symbol in ``mapping`` replaced.

    Replacement symbols keep their own declared widths (a renamed symbol is
    masked to the *new* width on evaluation).  Subtrees mentioning no mapped
    symbol are returned unchanged, exactly like :func:`substitute`.
    """
    names = expr.symbol_names
    if not names:
        return expr
    for name in names:
        if name in mapping:
            break
    else:
        return expr
    kind = type(expr)
    if kind is Sym:
        return mapping.get(expr.name, expr)
    if kind is BinExpr:
        return make_binop(
            expr.op, rename_symbols(expr.lhs, mapping), rename_symbols(expr.rhs, mapping)
        )
    if kind is CmpExpr:
        return make_cmp(
            expr.pred, rename_symbols(expr.lhs, mapping), rename_symbols(expr.rhs, mapping)
        )
    if kind is SelectExpr:
        return make_select(
            rename_symbols(expr.cond, mapping),
            rename_symbols(expr.if_true, mapping),
            rename_symbols(expr.if_false, mapping),
        )
    raise TypeError(f"cannot rename symbols in {expr!r}")
