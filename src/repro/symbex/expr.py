"""Symbolic expressions over 64-bit unsigned machine words.

Expressions are small immutable trees: constants, named symbols (with a
declared bit width), binary operations reusing the NFIL operator set,
comparisons (producing 0/1) and selects.  Construction performs constant
folding and a handful of algebraic simplifications so that path constraints
stay small and the solver's pattern matching sees normalised shapes.

Expressions are **hash-consed**: every constructor interns its node, so
structurally equal expressions are pointer-equal, ``==``/``hash`` are O(1)
identity operations, and per-node analyses (``symbols_of``, ``expr_depth``,
``simplify``) are computed once and cached on the node.  This is what makes
the incremental solver contexts (``repro.symbex.incremental``) cheap: memo
tables can key on expression identity, and the substitution fast path can
skip whole subtrees whose symbols are untouched.

Interned nodes live for the process lifetime; long-running drivers can call
:func:`clear_expression_caches` between independent analyses.
"""

from __future__ import annotations

from repro.ir.instructions import BinOpKind, CmpKind

MACHINE_BITS = 64
MACHINE_MASK = (1 << MACHINE_BITS) - 1

_EMPTY_SYMBOLS: frozenset = frozenset()
_EMPTY_NAMES: frozenset = frozenset()


class Expr:
    """Base class of all symbolic expressions.

    Subclasses intern their instances in ``__new__``; identity equality and
    hashing (inherited from ``object``) are therefore structural.

    Pickling goes through each subclass's ``__reduce__``, which rebuilds the
    node via the interning constructor: a round-trip within one process
    returns the *same* interned object, and a cross-process round-trip (the
    parallel shard workers) re-interns the whole tree so identity equality
    holds in the destination process too.
    """

    __slots__ = ("symbols", "symbol_names", "depth", "_simplified")

    # Interning makes structural equality identity equality; keep object's
    # __eq__/__hash__ (identity) for O(1) dict/set operations.

    @property
    def is_concrete(self) -> bool:
        return isinstance(self, Const)

    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self


class Const(Expr):
    """A concrete 64-bit value."""

    __slots__ = ("value",)

    _intern: dict[int, "Const"] = {}

    def __new__(cls, value: int) -> "Const":
        value &= MACHINE_MASK
        cached = cls._intern.get(value)
        if cached is None:
            cached = object.__new__(cls)
            cached.value = value
            cached.symbols = _EMPTY_SYMBOLS
            cached.symbol_names = _EMPTY_NAMES
            cached.depth = 1
            cached._simplified = cached
            cls._intern[value] = cached
        return cached

    def __reduce__(self):
        return (Const, (self.value,))

    def __repr__(self) -> str:
        return f"Const(value={self.value})"

    def __str__(self) -> str:
        return f"0x{self.value:x}" if self.value > 9 else str(self.value)


class Sym(Expr):
    """A named symbolic input with a bit width (default: full word)."""

    __slots__ = ("name", "bits")

    _intern: dict[tuple[str, int], "Sym"] = {}

    def __new__(cls, name: str, bits: int = MACHINE_BITS) -> "Sym":
        key = (name, bits)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached.name = name
            cached.bits = bits
            cached.symbols = frozenset((cached,))
            cached.symbol_names = frozenset((name,))
            cached.depth = 1
            cached._simplified = cached
            cls._intern[key] = cached
        return cached

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def __reduce__(self):
        return (Sym, (self.name, self.bits))

    def __repr__(self) -> str:
        return f"Sym(name={self.name!r}, bits={self.bits})"

    def __str__(self) -> str:
        return self.name


class BinExpr(Expr):
    """A binary arithmetic/bitwise operation."""

    __slots__ = ("op", "lhs", "rhs")

    _intern: dict[tuple, "BinExpr"] = {}

    def __new__(cls, op: BinOpKind, lhs: Expr, rhs: Expr) -> "BinExpr":
        key = (op, lhs, rhs)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached.op = op
            cached.lhs = lhs
            cached.rhs = rhs
            cached.symbols = lhs.symbols | rhs.symbols
            cached.symbol_names = lhs.symbol_names | rhs.symbol_names
            cached.depth = 1 + max(lhs.depth, rhs.depth)
            cached._simplified = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (BinExpr, (self.op, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"BinExpr(op={self.op!r}, lhs={self.lhs!r}, rhs={self.rhs!r})"

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


class CmpExpr(Expr):
    """A comparison; evaluates to 1 (true) or 0 (false)."""

    __slots__ = ("pred", "lhs", "rhs")

    _intern: dict[tuple, "CmpExpr"] = {}

    def __new__(cls, pred: CmpKind, lhs: Expr, rhs: Expr) -> "CmpExpr":
        key = (pred, lhs, rhs)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached.pred = pred
            cached.lhs = lhs
            cached.rhs = rhs
            cached.symbols = lhs.symbols | rhs.symbols
            cached.symbol_names = lhs.symbol_names | rhs.symbol_names
            cached.depth = 1 + max(lhs.depth, rhs.depth)
            cached._simplified = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (CmpExpr, (self.pred, self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"CmpExpr(pred={self.pred!r}, lhs={self.lhs!r}, rhs={self.rhs!r})"

    def __str__(self) -> str:
        return f"({self.lhs} {self.pred.value} {self.rhs})"


class SelectExpr(Expr):
    """``cond ? if_true : if_false`` with a 0/1 condition."""

    __slots__ = ("cond", "if_true", "if_false")

    _intern: dict[tuple, "SelectExpr"] = {}

    def __new__(cls, cond: Expr, if_true: Expr, if_false: Expr) -> "SelectExpr":
        key = (cond, if_true, if_false)
        cached = cls._intern.get(key)
        if cached is None:
            cached = object.__new__(cls)
            cached.cond = cond
            cached.if_true = if_true
            cached.if_false = if_false
            cached.symbols = cond.symbols | if_true.symbols | if_false.symbols
            cached.symbol_names = (
                cond.symbol_names | if_true.symbol_names | if_false.symbol_names
            )
            cached.depth = 1 + max(cond.depth, if_true.depth, if_false.depth)
            cached._simplified = None
            cls._intern[key] = cached
        return cached

    def __reduce__(self):
        return (SelectExpr, (self.cond, self.if_true, self.if_false))

    def __repr__(self) -> str:
        return (
            f"SelectExpr(cond={self.cond!r}, if_true={self.if_true!r}, "
            f"if_false={self.if_false!r})"
        )

    def __str__(self) -> str:
        return f"({self.cond} ? {self.if_true} : {self.if_false})"


TRUE = Const(1)
FALSE = Const(0)


#: Callbacks invoked by :func:`clear_expression_caches`.  Caches elsewhere
#: that key on expression identity (e.g. the incremental solver's memo and
#: fingerprint tables) register here so they cannot outlive the interned
#: expressions their keys refer to.
_CACHE_CLEAR_HOOKS: list = []


def register_cache_clear_hook(hook) -> None:
    """Register a callable to run whenever expression caches are cleared."""
    _CACHE_CLEAR_HOOKS.append(hook)


def clear_expression_caches() -> None:
    """Drop all interned expressions (for long-running drivers and tests).

    Existing expression objects stay valid; new structurally-equal nodes
    created afterwards will no longer be pointer-equal to old ones, so only
    call this between independent analyses.  Identity-keyed caches that
    registered via :func:`register_cache_clear_hook` are cleared too, so
    recycled object ids cannot resurrect stale entries.
    """
    for cls in (Const, Sym, BinExpr, CmpExpr, SelectExpr):
        cls._intern.clear()
    # Keep the module-level singletons canonical so identity comparisons
    # against TRUE/FALSE still hold after a clear.
    Const._intern[FALSE.value] = FALSE
    Const._intern[TRUE.value] = TRUE
    for hook in _CACHE_CLEAR_HOOKS:
        hook()


def const(value: int) -> Const:
    return Const(value & MACHINE_MASK)


def _apply_binop(op: BinOpKind, lhs: int, rhs: int) -> int:
    if op is BinOpKind.ADD:
        return (lhs + rhs) & MACHINE_MASK
    if op is BinOpKind.SUB:
        return (lhs - rhs) & MACHINE_MASK
    if op is BinOpKind.MUL:
        return (lhs * rhs) & MACHINE_MASK
    if op is BinOpKind.UDIV:
        return (lhs // rhs) & MACHINE_MASK if rhs else MACHINE_MASK
    if op is BinOpKind.UREM:
        return (lhs % rhs) & MACHINE_MASK if rhs else lhs
    if op is BinOpKind.AND:
        return lhs & rhs
    if op is BinOpKind.OR:
        return lhs | rhs
    if op is BinOpKind.XOR:
        return lhs ^ rhs
    if op is BinOpKind.SHL:
        return (lhs << rhs) & MACHINE_MASK if rhs < MACHINE_BITS else 0
    if op is BinOpKind.LSHR:
        return lhs >> rhs if rhs < MACHINE_BITS else 0
    raise ValueError(f"unknown binary operation {op}")


def _apply_cmp(pred: CmpKind, lhs: int, rhs: int) -> int:
    if pred is CmpKind.EQ:
        return int(lhs == rhs)
    if pred is CmpKind.NE:
        return int(lhs != rhs)
    if pred is CmpKind.ULT:
        return int(lhs < rhs)
    if pred is CmpKind.ULE:
        return int(lhs <= rhs)
    if pred is CmpKind.UGT:
        return int(lhs > rhs)
    if pred is CmpKind.UGE:
        return int(lhs >= rhs)
    raise ValueError(f"unknown comparison {pred}")


def make_binop(op: BinOpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a binary operation with constant folding and simplification."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_binop(op, lhs.value, rhs.value))
    # Identity simplifications that keep solver patterns clean.
    if isinstance(rhs, Const):
        if rhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.OR,
                                     BinOpKind.XOR, BinOpKind.SHL, BinOpKind.LSHR):
            return lhs
        if rhs.value == 0 and op is BinOpKind.AND:
            return Const(0)
        if rhs.value == MACHINE_MASK and op is BinOpKind.AND:
            return lhs
        if rhs.value == 1 and op is BinOpKind.MUL:
            return lhs
        if rhs.value == 0 and op is BinOpKind.MUL:
            return Const(0)
    if isinstance(lhs, Const):
        if lhs.value == 0 and op in (BinOpKind.ADD, BinOpKind.OR, BinOpKind.XOR):
            return rhs
        if lhs.value == 0 and op in (BinOpKind.AND, BinOpKind.MUL, BinOpKind.SHL,
                                     BinOpKind.LSHR, BinOpKind.UDIV, BinOpKind.UREM):
            return Const(0)
        if lhs.value == 1 and op is BinOpKind.MUL:
            return rhs
    # Masking a symbol to (or beyond) its declared width is a no-op.
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, Sym)
        and (lhs.mask & rhs.value) == lhs.mask
    ):
        return lhs
    # Collapse nested shifts by constants: (x >> a) >> b = x >> (a+b).
    if (
        op is BinOpKind.LSHR
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.LSHR
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.LSHR, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant additions: (x + a) + b = x + (a+b).
    if (
        op is BinOpKind.ADD
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.ADD
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.ADD, lhs.lhs, Const(lhs.rhs.value + rhs.value))
    # Collapse nested constant masks: (x & a) & b = x & (a&b).
    if (
        op is BinOpKind.AND
        and isinstance(rhs, Const)
        and isinstance(lhs, BinExpr)
        and lhs.op is BinOpKind.AND
        and isinstance(lhs.rhs, Const)
    ):
        return make_binop(BinOpKind.AND, lhs.lhs, Const(lhs.rhs.value & rhs.value))
    return BinExpr(op, lhs, rhs)


_NEGATED_PRED = {
    CmpKind.EQ: CmpKind.NE,
    CmpKind.NE: CmpKind.EQ,
    CmpKind.ULT: CmpKind.UGE,
    CmpKind.ULE: CmpKind.UGT,
    CmpKind.UGT: CmpKind.ULE,
    CmpKind.UGE: CmpKind.ULT,
}


def make_cmp(pred: CmpKind, lhs: Expr, rhs: Expr) -> Expr:
    """Build a comparison with constant folding."""
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        return Const(_apply_cmp(pred, lhs.value, rhs.value))
    # Comparisons of a 0/1 comparison result against 0 or 1 collapse to the
    # inner comparison (possibly negated): this is what branch conditions on
    # compare instructions produce, and the solver relies on the flat form.
    if isinstance(lhs, CmpExpr) and isinstance(rhs, Const) and rhs.value in (0, 1):
        keep_inner = {
            (CmpKind.EQ, 1): True,
            (CmpKind.NE, 0): True,
            (CmpKind.UGE, 1): True,
            (CmpKind.UGT, 0): True,
            (CmpKind.EQ, 0): False,
            (CmpKind.NE, 1): False,
            (CmpKind.ULT, 1): False,
            (CmpKind.ULE, 0): False,
        }.get((pred, rhs.value))
        if keep_inner is True:
            return lhs
        if keep_inner is False:
            return CmpExpr(_NEGATED_PRED[lhs.pred], lhs.lhs, lhs.rhs)
    if lhs is rhs:
        if pred in (CmpKind.EQ, CmpKind.ULE, CmpKind.UGE):
            return TRUE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.UGT):
            return FALSE
    # A symbol compared against a constant beyond its width is decidable.
    if isinstance(lhs, Sym) and isinstance(rhs, Const) and rhs.value > lhs.mask:
        if pred in (CmpKind.EQ, CmpKind.UGT, CmpKind.UGE):
            return FALSE
        if pred in (CmpKind.NE, CmpKind.ULT, CmpKind.ULE):
            return TRUE
    return CmpExpr(pred, lhs, rhs)


def make_select(cond: Expr, if_true: Expr, if_false: Expr) -> Expr:
    if isinstance(cond, Const):
        return if_true if cond.value != 0 else if_false
    if if_true is if_false:
        return if_true
    return SelectExpr(cond, if_true, if_false)


def expr_eq(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.EQ, lhs, rhs)


def expr_ne(lhs: Expr, rhs: Expr) -> Expr:
    return make_cmp(CmpKind.NE, lhs, rhs)


def expr_not(value: Expr) -> Expr:
    """Logical negation of a 0/1 condition expression."""
    if isinstance(value, Const):
        return FALSE if value.value else TRUE
    if isinstance(value, CmpExpr):
        return CmpExpr(_NEGATED_PRED[value.pred], value.lhs, value.rhs)
    return make_cmp(CmpKind.EQ, value, Const(0))


def expr_and(lhs: Expr, rhs: Expr) -> Expr:
    """Logical conjunction of 0/1 conditions."""
    if isinstance(lhs, Const):
        return rhs if lhs.value else FALSE
    if isinstance(rhs, Const):
        return lhs if rhs.value else FALSE
    return make_binop(BinOpKind.AND, lhs, rhs)


def simplify(expr: Expr) -> Expr:
    """Re-normalise an expression bottom-up (idempotent, cached per node)."""
    cached = expr._simplified
    if cached is not None:
        return cached
    if isinstance(expr, BinExpr):
        result = make_binop(expr.op, simplify(expr.lhs), simplify(expr.rhs))
    elif isinstance(expr, CmpExpr):
        result = make_cmp(expr.pred, simplify(expr.lhs), simplify(expr.rhs))
    elif isinstance(expr, SelectExpr):
        result = make_select(
            simplify(expr.cond), simplify(expr.if_true), simplify(expr.if_false)
        )
    else:
        result = expr
    result._simplified = result  # simplification is idempotent
    expr._simplified = result
    return result


def symbols_of(expr: Expr) -> frozenset[Sym]:
    """All symbols occurring in ``expr`` (cached on the node, O(1))."""
    return expr.symbols


def evaluate(expr: Expr, assignment: dict[str, int]) -> int:
    """Evaluate ``expr`` under a complete assignment of its symbols.

    Raises ``KeyError`` if a required symbol is missing from ``assignment``.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        return assignment[expr.name] & expr.mask
    if isinstance(expr, BinExpr):
        return _apply_binop(expr.op, evaluate(expr.lhs, assignment), evaluate(expr.rhs, assignment))
    if isinstance(expr, CmpExpr):
        return _apply_cmp(expr.pred, evaluate(expr.lhs, assignment), evaluate(expr.rhs, assignment))
    if isinstance(expr, SelectExpr):
        cond = evaluate(expr.cond, assignment)
        return evaluate(expr.if_true if cond else expr.if_false, assignment)
    raise TypeError(f"cannot evaluate {expr!r}")


def substitute(expr: Expr, assignment: dict[str, int]) -> Expr:
    """Replace any symbols present in ``assignment`` by constants.

    Subtrees mentioning no assigned symbol are returned unchanged (O(1)
    thanks to the per-node symbol-name cache), so substitution cost scales
    with the touched part of the tree, not its total size.
    """
    names = expr.symbol_names
    if not names or not assignment:
        return expr
    for name in names:
        if name in assignment:
            break
    else:
        return expr
    if isinstance(expr, Sym):
        if expr.name in assignment:
            return Const(assignment[expr.name] & expr.mask)
        return expr
    if isinstance(expr, BinExpr):
        return make_binop(expr.op, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment))
    if isinstance(expr, CmpExpr):
        return make_cmp(expr.pred, substitute(expr.lhs, assignment), substitute(expr.rhs, assignment))
    if isinstance(expr, SelectExpr):
        return make_select(
            substitute(expr.cond, assignment),
            substitute(expr.if_true, assignment),
            substitute(expr.if_false, assignment),
        )
    raise TypeError(f"cannot substitute into {expr!r}")


def expr_depth(expr: Expr) -> int:
    """Tree depth of an expression (used to cap solver effort)."""
    return expr.depth
