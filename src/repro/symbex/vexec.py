"""Vectorized frontier execution (``exec_mode="vector"``).

The block-compiled tier (:mod:`repro.symbex.blockc`) removed per-instruction
dispatch, but the engine still pays one full Python step loop *per state*:
two frontier states parked at the same program point redo identical operand
resolution, expression construction and constant folding.  This module adds
the third tier: states sitting at the same ``(function, block, index)`` are
grouped into **lanes** and their next compiled step is computed **once for
the whole group**, columnar where the lanes are concrete.

How a group steps
-----------------
At group time (run seeding, and opportunistic peer scans at pop time) the
executor looks at the instruction the group is parked on:

* a fused arithmetic run (the maximal ``BinaryOp``/``Compare``/``Select``
  run, the same grouping rule :func:`repro.symbex.blockc._compile_block`
  uses) is evaluated lane-parallel: per op, operands are gathered across
  lanes, duplicate operand pairs collapse to one evaluation through a group
  memo (interned expressions make the key a cheap tuple), **concrete lanes
  become numpy columns** folded through the exact vectorized op tables
  (:data:`repro.symbex.expr.VEC_BINOP_FUNCS` /
  :data:`~repro.symbex.expr.VEC_CMP_FUNCS`), and symbolic lanes build their
  expression through the same ``make_binop``/``make_cmp``/``make_select``
  constructors the scalar tiers use.  The result is one register-delta dict
  per lane.
* a memory run (maximal ``Load``/``Store`` run) yields one **access
  matrix**: per lane, the row of pre-resolved index expressions for every
  access whose index register is not written by an earlier load of the run.
  The row rides along and is handed to the extended
  :meth:`repro.cache.model.CacheModel.on_access_batch` when the lane
  executes, skipping per-access register resolution; accesses that *do*
  depend on earlier loads keep resolving sequentially (exact semantics).
* a fused run ending at a ``Branch`` (or a group parked directly on one)
  additionally gets **group branch resolution** (``branch_batching``): the
  lanes' branch conditions are evaluated under the run-wide concolic shadow
  as one lockstep columnar pass (:func:`repro.symbex.expr.lockstep_evaluate`
  — the conditions share their shape, only leaves differ), and the
  remaining feasibility queries are deduped across *(constraint-chain
  fingerprint, interned constraint)* classes: equal fingerprints name
  byte-identical committed solver states, so one representative
  ``feasible_with`` answers every member of a class.  Each lane's verdict
  pair rides along in its buffer and is consumed by
  ``SymbolicEngine._execute_branch`` at execution time — which still owns
  constraint adding, loop-head forcing and forking, so fork order and
  constraint order are untouched.

Deferred application — why outputs cannot change
------------------------------------------------
Group results are **buffered**, not applied: each lane keeps its buffer
(``state.vex_buffer``) untouched until the searcher pops it, and the buffer
is applied with exactly the fused step's semantics (one copy-on-write
register acquire, one summed cycle charge, one ``frame.index`` bump).
Popping order, priorities, fork order, state ids, constraint order and rng
streams are therefore byte-identical to ``exec_mode="compiled"`` (itself
identity-tested against ``"interp"``): the vector tier only moves *when*
shared work happens, never *what* happens.

Lane peeling — when a lane leaves the group
-------------------------------------------
A lane falls back to the per-state compiled path (and from there, where
needed, to the reference interpreter) whenever:

* the buffered run would cross the state's instruction budget
  (``n > max_instructions`` at apply time — the budget edge);
* the state moved since grouping (the ``(function, block, index)`` key no
  longer matches, e.g. a beam resume pushed a new frame);
* group computation raised (undefined registers, unknown regions): the
  whole group's buffers are abandoned and every lane re-raises on the
  normal path at the exact reference point;
* there is no groupable step at the program point (control flow, calls,
  havocs) — those always execute per state, where forking, shadow
  invalidation and loop accounting live.

Correctness never depends on the vector tier covering everything: a peeled
lane is simply a compiled-mode state.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.ir.instructions import BinaryOp, Branch, Compare, Load, Select, Store
from repro.symbex.blockc import _operand_plan
from repro.symbex.expr import (
    BINOP_FUNCS,
    CMP_FUNCS,
    HAVE_NUMPY,
    VEC_BINOP_FUNCS,
    VEC_CMP_FUNCS,
    Const,
    _np,
    expr_ne,
    expr_not,
    make_binop,
    make_cmp,
    make_select,
)
from repro.symbex.incremental import CONTEXT_STATS
from repro.symbex.state import StateStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.symbex.engine import SymbolicEngine
    from repro.symbex.searcher import Searcher
    from repro.symbex.state import ExecutionState

#: Lanes needed before group stepping pays for itself.
MIN_GROUP = 2

#: Concrete lanes needed before a numpy column beats scalar folds (array
#: construction has a fixed cost; tiny columns fold faster in Python).
MIN_COLUMN = 4

_WARNED_NUMPY_MISSING = False


def numpy_available() -> bool:
    return HAVE_NUMPY


def warn_numpy_missing() -> None:
    """One-time warning when ``exec_mode="vector"`` degrades to compiled."""
    global _WARNED_NUMPY_MISSING
    if not _WARNED_NUMPY_MISSING:
        _WARNED_NUMPY_MISSING = True
        warnings.warn(
            "exec_mode='vector' needs numpy (pip install castan-repro[vector]); "
            "falling back to the block-compiled tier — outputs are identical, "
            "only the many-states grouping is disabled",
            RuntimeWarning,
            stacklevel=3,
        )


class VexStats:
    """Process-visible counters (profiling, lane-peel tests)."""

    __slots__ = (
        "groups",
        "lanes_buffered",
        "lanes_applied",
        "lanes_peeled",
        "groups_aborted",
        "columnar_ops",
        "columnar_lanes",
        "mem_rows",
    )

    def __init__(self) -> None:
        self.groups = 0
        self.lanes_buffered = 0
        self.lanes_applied = 0
        self.lanes_peeled = 0
        self.groups_aborted = 0
        self.columnar_ops = 0
        self.columnar_lanes = 0
        self.mem_rows = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class _FusedPlan:
    """A maximal arithmetic run: op descriptors plus the fused-step totals.

    ``branch`` is the operand plan of a ``Branch`` condition sitting right
    after the run (or *at* the group's program point, with ``n == 0``) when
    branch batching is on — the trigger for group branch resolution.
    """

    __slots__ = ("kind", "ops", "n", "cycles", "next_index", "branch")

    def __init__(
        self, ops: tuple, n: int, cycles: int, next_index: int, branch: tuple | None = None
    ) -> None:
        self.kind = "fused"
        self.ops = ops
        self.n = n
        self.cycles = cycles
        self.next_index = next_index
        self.branch = branch


class _MemPlan:
    """A maximal memory run: per-access (index_reg, prefetchable) slots."""

    __slots__ = ("kind", "slots")

    def __init__(self, slots: tuple) -> None:
        self.kind = "mem"
        self.slots = slots


_NO_PLAN = object()


def _plan_at(blocks, module, key, cycle_costs, branch_batching: bool = False):
    """The group plan for states parked at ``key=(function, block, index)``.

    Mirrors ``blockc._compile_block``'s run grouping exactly, so a plan's
    extent always lands on a compiled-step boundary (``next_index`` is a
    resume point of the compiled block).  With ``branch_batching`` a fused
    run that ends at a ``Branch`` carries the branch's condition operand
    plan, and a group parked directly on a ``Branch`` gets a branch-only
    plan (``n == 0``: no registers move, no cycles are charged).
    """
    function, block_name, index = key
    block = blocks.get(function, {}).get(block_name)
    if block is None:
        return None
    instructions = block.instructions
    total = len(instructions)
    if index >= total:
        return None
    first = instructions[index]

    if isinstance(first, (BinaryOp, Compare, Select)):
        ops = []
        cycles = 0
        i = index
        while i < total:
            ins = instructions[i]
            if isinstance(ins, BinaryOp):
                lhs_reg, lhs_const = _operand_plan(ins.lhs)
                rhs_reg, rhs_const = _operand_plan(ins.rhs)
                ops.append(("bin", ins.op, ins.dest.name, lhs_reg, lhs_const, rhs_reg, rhs_const))
            elif isinstance(ins, Compare):
                lhs_reg, lhs_const = _operand_plan(ins.lhs)
                rhs_reg, rhs_const = _operand_plan(ins.rhs)
                ops.append(("cmp", ins.pred, ins.dest.name, lhs_reg, lhs_const, rhs_reg, rhs_const))
            elif isinstance(ins, Select):
                cond_reg, cond_const = _operand_plan(ins.cond)
                t_reg, t_const = _operand_plan(ins.if_true)
                f_reg, f_const = _operand_plan(ins.if_false)
                ops.append(
                    ("sel", ins.dest.name, cond_reg, cond_const, t_reg, t_const, f_reg, f_const)
                )
            else:
                break
            cycles += cycle_costs.instruction_cost(ins)
            i += 1
        branch = None
        if branch_batching and i < total and isinstance(instructions[i], Branch):
            branch = _operand_plan(instructions[i].cond)
        return _FusedPlan(tuple(ops), i - index, cycles, i, branch)

    if branch_batching and isinstance(first, Branch):
        return _FusedPlan((), 0, 0, index, _operand_plan(first.cond))

    if isinstance(first, (Load, Store)):
        slots = []
        load_dests: set[str] = set()
        i = index
        while i < total:
            ins = instructions[i]
            if isinstance(ins, (Load, Store)):
                try:
                    module.get_region(ins.region)
                except Exception:
                    # blockc breaks the run here too (exact-step fallback).
                    break
                index_reg, _index_const = _operand_plan(ins.index)
                prefetchable = index_reg is not None and index_reg not in load_dests
                slots.append((index_reg, prefetchable))
                if isinstance(ins, Load):
                    load_dests.add(ins.dest.name)
            else:
                break
            i += 1
        if not slots or not any(p for _r, p in slots):
            return None
        return _MemPlan(tuple(slots))

    return None


class VectorExecutor:
    """Groups frontier states and steps each group once (see module doc)."""

    def __init__(
        self, blocks, module, cycle_costs, engine=None, branch_batching: bool = True
    ) -> None:
        self._blocks = blocks
        self._module = module
        self._cycle_costs = cycle_costs
        # Group branch resolution needs the engine (shadow memo, hint
        # handoff); without one the executor degrades to plain grouping.
        self._engine = engine
        self._branch_batching = bool(branch_batching) and engine is not None
        self._plans: dict = {}
        self.stats = VexStats()

    # -- planning -----------------------------------------------------------

    def _plan(self, key):
        plan = self._plans.get(key, _NO_PLAN)
        if plan is _NO_PLAN:
            plan = _plan_at(
                self._blocks, self._module, key, self._cycle_costs, self._branch_batching
            )
            self._plans[key] = plan
        return plan

    # -- grouping -----------------------------------------------------------

    def build_buffers(self, states) -> None:
        """Group a whole frontier (run seeding) and buffer each group."""
        groups: dict = {}
        for state in states:
            if (
                state.status is not StateStatus.RUNNING
                or not state._frames
                or state.vex_buffer is not None
            ):
                continue
            frame = state._frames[-1]
            groups.setdefault((frame.function, frame.block, frame.index), []).append(state)
        for key, lanes in groups.items():
            if len(lanes) >= MIN_GROUP:
                plan = self._plan(key)
                if plan is not None:
                    self._buffer_group(key, plan, lanes)

    def regroup(self, state: "ExecutionState", searcher: "Searcher") -> None:
        """Opportunistic peer scan when popping an unbuffered state."""
        if (
            state.vex_buffer is not None
            or state.status is not StateStatus.RUNNING
            or not state._frames
        ):
            return
        frame = state._frames[-1]
        key = (frame.function, frame.block, frame.index)
        plan = self._plan(key)
        if plan is None:
            return
        lanes = [state]
        function, block_name, index = key
        for peer in searcher.iter_states():
            if (
                peer.status is StateStatus.RUNNING
                and peer.vex_buffer is None
                and peer._frames
            ):
                peer_frame = peer._frames[-1]
                if (
                    peer_frame.function == function
                    and peer_frame.block == block_name
                    and peer_frame.index == index
                ):
                    lanes.append(peer)
        if len(lanes) >= MIN_GROUP:
            self._buffer_group(key, plan, lanes)

    def _buffer_group(self, key, plan, lanes) -> None:
        try:
            if plan.kind == "fused":
                overlays = self._compute_fused(plan, lanes)
                hints = None
                if plan.branch is not None:
                    hints = self._resolve_branches(plan, lanes, overlays)
                if plan.n == 0 and (hints is None or not any(hints)):
                    # A branch-only group that resolved nothing: buffering
                    # would be a no-op at apply time, so leave the lanes
                    # ungrouped (regroup retries them later, as today).
                    return
                for state, overlay, hint in zip(
                    lanes, overlays, hints if hints is not None else (None,) * len(lanes)
                ):
                    state.vex_buffer = (key, "fused", overlay, plan, hint)
            else:
                rows = self._compute_mem(plan, lanes)
                for state, row in zip(lanes, rows):
                    state.vex_buffer = (key, "mem", row, None, None)
        except Exception:
            # Any lane failing (undefined register, unknown region) peels
            # the whole group: the normal path re-raises at the exact
            # reference execution point.
            self.stats.groups_aborted += 1
            for state in lanes:
                state.vex_buffer = None
            return
        self.stats.groups += 1
        self.stats.lanes_buffered += len(lanes)

    # -- group computation ---------------------------------------------------

    def _compute_fused(self, plan, lanes) -> list[dict]:
        """One register-delta dict per lane for a fused arithmetic run.

        Per op: duplicate operand pairs collapse through a group memo,
        concrete lanes fold as one numpy column through the exact vectorized
        op tables, symbolic lanes build interned expressions through the
        same constructors the scalar tiers use.  Results are value-identical
        to running the compiled fused step on every lane.
        """
        np = _np
        count = len(lanes)
        regsets = [state._frames[-1].registers for state in lanes]
        overlays: list[dict] = [{} for _ in range(count)]
        lane_range = range(count)
        for op in plan.ops:
            opkind = op[0]
            if opkind == "sel":
                _, dest, cond_reg, cond_const, t_reg, t_const, f_reg, f_const = op
                memo: dict = {}
                for i in lane_range:
                    overlay = overlays[i]
                    regs = regsets[i]
                    cond = _read(overlay, regs, cond_reg, cond_const)
                    if_true = _read(overlay, regs, t_reg, t_const)
                    if_false = _read(overlay, regs, f_reg, f_const)
                    if cond.__class__ is Const:
                        result = if_true if cond.value else if_false
                    else:
                        sel_key = (cond, if_true, if_false)
                        result = memo.get(sel_key)
                        if result is None:
                            result = make_select(cond, if_true, if_false)
                            memo[sel_key] = result
                    overlay[dest] = result
                continue
            _, kind, dest, lhs_reg, lhs_const, rhs_reg, rhs_const = op
            if opkind == "bin":
                fold = BINOP_FUNCS[kind]
                vec = VEC_BINOP_FUNCS[kind]
                make = make_binop
            else:
                fold = CMP_FUNCS[kind]
                vec = VEC_CMP_FUNCS[kind]
                make = make_cmp
            memo = {}
            results: list = [None] * count
            concrete: list = []
            xs: list[int] = []
            ys: list[int] = []
            for i in lane_range:
                overlay = overlays[i]
                regs = regsets[i]
                x = _read(overlay, regs, lhs_reg, lhs_const)
                y = _read(overlay, regs, rhs_reg, rhs_const)
                pair = (x, y)
                result = memo.get(pair)
                if result is None:
                    if x.__class__ is Const and y.__class__ is Const:
                        concrete.append((i, pair))
                        xs.append(x.value)
                        ys.append(y.value)
                        continue
                    result = make(kind, x, y)
                    memo[pair] = result
                results[i] = result
            if concrete:
                if len(concrete) >= MIN_COLUMN:
                    # The columnar path: one ufunc evaluation for the whole
                    # concrete column (exact uint64 semantics; see
                    # expr._vec_tables).
                    column = vec(np.array(xs, dtype=np.uint64), np.array(ys, dtype=np.uint64))
                    self.stats.columnar_ops += 1
                    self.stats.columnar_lanes += len(concrete)
                    for j, (i, pair) in enumerate(concrete):
                        result = memo.get(pair)
                        if result is None:
                            result = Const(int(column[j]))
                            memo[pair] = result
                        results[i] = result
                else:
                    for j, (i, pair) in enumerate(concrete):
                        result = memo.get(pair)
                        if result is None:
                            result = Const(fold(xs[j], ys[j]))
                            memo[pair] = result
                        results[i] = result
            for i in lane_range:
                overlays[i][dest] = results[i]
        return overlays

    def _compute_mem(self, plan, lanes) -> list[tuple]:
        """The access matrix: one row of pre-resolved index exprs per lane.

        ``None`` slots are accesses whose index register an earlier load of
        the run writes — those must resolve sequentially at execution time.
        """
        rows = []
        for state in lanes:
            regs = state._frames[-1].registers
            rows.append(
                tuple(
                    regs[index_reg] if prefetchable else None
                    for index_reg, prefetchable in plan.slots
                )
            )
        return rows

    def _resolve_branches(self, plan, lanes, overlays) -> "list[tuple | None] | None":
        """Group-level branch resolution: the cross-lane solver batch.

        Shadow verdicts for the whole group come from one lockstep columnar
        evaluation of the lanes' branch conditions
        (:meth:`SymbolicEngine._shadow_eval_group`); the remaining
        feasibility queries are deduped across *(constraint-chain
        fingerprint, interned constraint)* classes — equal fingerprints name
        byte-identical committed solver states
        (:mod:`repro.symbex.incremental`), so one representative
        ``feasible_with`` call answers every member of the class.  Returns
        one ``(cond, feasible_true, feasible_false)`` hint per lane (``None``
        where the lane must resolve at execution time: concrete conditions
        and context-less lanes).  Sound because a parked lane's constraint
        chain cannot change between grouping and its pop, so the verdicts
        computed here are exactly the ones ``_execute_branch`` would compute.
        """
        engine = self._engine
        if engine is None:
            return None
        cond_reg, cond_const = plan.branch
        conds = [
            _read(overlay, state._frames[-1].registers, cond_reg, cond_const)
            for state, overlay in zip(lanes, overlays)
        ]
        shadow_conds = [
            cond
            for state, cond in zip(lanes, conds)
            if cond.__class__ is not Const
            and state.shadow_valid
            and state.solver_context is not None
        ]
        shadow_verdicts = engine._shadow_eval_group(shadow_conds) if shadow_conds else {}

        classes: dict[tuple, bool] = {}

        def query(context, constraint) -> bool:
            key = (context._set_id, id(constraint))
            verdict = classes.get(key)
            if verdict is None:
                verdict = context.feasible_with(constraint)
                classes[key] = verdict
                CONTEXT_STATS.group_queries += 1
            else:
                CONTEXT_STATS.group_dedup_hits += 1
            return verdict

        hints: list[tuple | None] = []
        for state, cond in zip(lanes, conds):
            context = state.solver_context
            if cond.__class__ is Const or context is None:
                hints.append(None)
                continue
            true_constraint = expr_ne(cond, Const(0))
            false_constraint = expr_not(true_constraint)
            # Mirrors _execute_branch's concolic fast path exactly: the
            # shadow-satisfied side is feasible by witness, only the other
            # side needs a (deduped) solver query.
            if state.shadow_valid:
                if shadow_verdicts[cond]:
                    feasible_true = True
                    feasible_false = query(context, false_constraint)
                else:
                    feasible_false = True
                    feasible_true = query(context, true_constraint)
            else:
                feasible_true = query(context, true_constraint)
                feasible_false = query(context, false_constraint)
            hints.append((cond, feasible_true, feasible_false))
        return hints

    # -- buffer application --------------------------------------------------

    def apply(self, engine: "SymbolicEngine", state: "ExecutionState", max_instructions: int):
        """Apply ``state``'s buffer at pop time.

        Returns ``(instructions_consumed, mem_row)``: a fused buffer applies
        with exactly the compiled fused step's semantics and returns its
        instruction count (the compiled driver continues mid-budget); a
        memory buffer returns its access-matrix row for the engine to hand
        to ``on_access_batch``.  ``(0, None)`` means the lane peeled (or had
        no buffer) and the normal path takes over.
        """
        buffer = state.vex_buffer
        if buffer is None:
            return 0, None
        state.vex_buffer = None
        key, kind, payload, plan, hint = buffer
        frames = state._frames
        if not frames:
            self.stats.lanes_peeled += 1
            return 0, None
        frame = frames[-1]
        if (frame.function, frame.block, frame.index) != key:
            # The state moved since grouping (e.g. a beam resume): peel.
            self.stats.lanes_peeled += 1
            return 0, None
        if kind == "mem":
            self.stats.mem_rows += 1
            return 0, payload
        n = plan.n
        if n > max_instructions:
            # Budget edge: the compiled driver's own check hands the state
            # to the reference interpreter, which exhausts the budget at
            # exactly the right instruction.
            self.stats.lanes_peeled += 1
            return 0, None
        # Exactly _make_fused_step's effects, with the precomputed delta
        # (a branch-only plan has no delta and moves nothing).
        if n:
            if not state._frames_owned[-1]:
                frame = frame.copy()
                frames[-1] = frame
                state._frames_owned[-1] = True
            if frame.registers_shared:
                frame.registers = dict(frame.registers)
                frame.registers_shared = False
            frame.registers.update(payload)
            state.current_cost += plan.cycles
            state.instructions_retired += n
            stats = engine._stats
            if stats is not None:
                stats.instructions_executed += n
            frame.index = plan.next_index
        if hint is not None:
            # Hand the group-resolved branch verdicts to _execute_branch,
            # which consumes them only for this state and this condition.
            engine._branch_hints = (state, hint[0], (hint[1], hint[2]))
        self.stats.lanes_applied += 1
        return n, None


def _read(overlay, regs, reg, const):
    """An operand at the current point of the run (overlay over registers)."""
    if reg is None:
        return const
    value = overlay.get(reg)
    if value is None:
        return regs[reg]
    return value
