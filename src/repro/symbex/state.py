"""Execution states for the symbolic engine.

A state captures everything needed to continue one execution path: the call
stack (with register values), the overlay of symbolic memory writes, the
path constraints, the cache-model state, cycle/instruction counters, the
per-packet metric history and the havoc records collected so far.

States fork at branches on symbolic conditions.  Forking is **copy-on-write**:
frames, register files and memory overlays are shared between parent and
child until one of them writes, and path constraints live in a persistent
parent-linked log inside the state's
:class:`~repro.symbex.incremental.SolverContext` (or a local fallback list
when no context is attached).  A fork is therefore O(call depth) instead of
O(everything the path ever touched).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.symbex.expr import Const, Expr, compiled_evaluator
from repro.symbex.havoc import HavocRecord


class ShadowAssignment(dict):
    """Concrete shadow values for the concolic fast path.

    Maps symbol names to the concrete values of the packet under
    construction (the per-symbol defaults); symbols it has never seen —
    e.g. fresh havoc outputs — read as 0, mirroring the solver's own
    ``defaults.get(name, 0)`` fallback.  Shared read-only by every state of
    one engine run.
    """

    def __missing__(self, key: str) -> int:
        return 0

if TYPE_CHECKING:  # pragma: no cover - avoid a package-level import cycle
    from repro.cache.model import CacheModel
    from repro.symbex.incremental import SolverContext


class StateStatus(enum.Enum):
    """Lifecycle of an execution state."""

    RUNNING = "running"
    PAUSED = "paused"  # stopped at a packet (round) boundary; resumable
    COMPLETED = "completed"  # processed every symbolic packet
    INFEASIBLE = "infeasible"  # both branch directions contradicted the path
    ERROR = "error"  # executed an illegal operation or exceeded limits


@dataclass
class Frame:
    """One activation record on a state's call stack.

    Register files go copy-on-write across :meth:`copy`: the copy shares the
    ``registers`` dict with the original and both sides clone it on their
    first subsequent write (:meth:`write_register`).  All register writes
    must go through that method.
    """

    function: str
    block: str
    index: int = 0
    registers: dict[str, Expr] = field(default_factory=dict)
    # Register (name) in the *caller's* frame that receives our return value.
    return_target: str | None = None
    # How many times each loop-head block has been entered in this frame
    # (guards against runaway loops under optimistic feasibility checks).
    loop_visits: dict[str, int] = field(default_factory=dict)
    # True while ``registers`` may be shared with a copy of this frame.
    registers_shared: bool = False

    def copy(self) -> "Frame":
        self.registers_shared = True
        return Frame(
            function=self.function,
            block=self.block,
            index=self.index,
            registers=self.registers,
            return_target=self.return_target,
            loop_visits=dict(self.loop_visits),
            registers_shared=True,
        )

    def write_register(self, name: str, value: Expr) -> None:
        if self.registers_shared:
            self.registers = dict(self.registers)
            self.registers_shared = False
        self.registers[name] = value


@dataclass
class PacketMetrics:
    """Estimated per-packet CPU-model metrics for one processed packet."""

    packet_index: int
    cycles: int = 0
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    action: int | None = None


class ExecutionState:
    """One path through the NF across a sequence of symbolic packets."""

    _ids = itertools.count()

    def __init__(
        self,
        cache_model: "CacheModel",
        num_packets: int,
        solver_context: "SolverContext | None" = None,
    ) -> None:
        self.sid = next(ExecutionState._ids)
        self._frames: list[Frame] = []
        self._frames_owned: list[bool] = []
        self._memory: dict[str, dict[int, Expr]] = {}
        self._owned_regions: set[str] = set()
        self.solver_context = solver_context
        self._constraints_fallback: list[Expr] | None = (
            [] if solver_context is None else None
        )
        self.cache_model = cache_model
        self.num_packets = num_packets
        self.packets_processed = 0
        self.status = StateStatus.RUNNING
        self.error_message = ""

        # Cost model bookkeeping (the "current cost" of §3.1/§3.3).
        self.current_cost = 0
        self.priority = 0
        self.preferred_loop_iteration = False

        # Counters for the per-path CPU-model metrics output (§4).
        self.instructions_retired = 0
        self.loads = 0
        self.stores = 0
        self.level_counts: dict[str, int] = {"L1": 0, "L2": 0, "L3": 0, "DRAM": 0}
        self.packet_metrics: list[PacketMetrics] = []
        self._packet_start_snapshot = self._counters_snapshot()

        # Havoc records and packet return actions.
        self.havoc_records: list[HavocRecord] = []
        self.packet_actions: list[Expr] = []

        self._fresh_symbol_counter = 0

        # Concolic shadow (compiled exec mode): a shared concrete assignment
        # seeded from the packet defaults, plus a per-state validity flag
        # that survives only while the shadow satisfies every committed
        # constraint.  While valid, branch feasibility on the side the
        # shadow takes needs no solver query at all.
        self.shadow: "ShadowAssignment | None" = None
        self.shadow_valid = False

        # Vectorized frontier tier (exec_mode="vector"): the deferred group
        # step buffered for this state, applied when the searcher pops it.
        # Never forked, never pickled — a fork or shard hop simply regroups.
        self.vex_buffer: "tuple | None" = None

        # Round bookkeeping for the per-packet beam scheduler: the cost this
        # state carried into the current round, so per-round gains can be
        # reported without re-walking the metric history.
        self.round_cost_baseline = 0

        # Per-stage cost attribution for chain NFs: label -> cycles spent
        # inside that stage's entry (plus callees), across all packets.
        # active_stage/stage_cost_base track the currently open window.
        self.stage_costs: dict[str, int] = {}
        self.active_stage: str | None = None
        self.stage_cost_base = 0

    # -- lifecycle ------------------------------------------------------------

    def fork(self) -> "ExecutionState":
        """Create an independent copy of this state (copy-on-write)."""
        child = ExecutionState.__new__(ExecutionState)
        child.sid = next(ExecutionState._ids)
        # Frames and memory overlays are shared until either side writes.
        child._frames = list(self._frames)
        child._frames_owned = [False] * len(self._frames)
        self._frames_owned = [False] * len(self._frames)
        child._memory = dict(self._memory)
        child._owned_regions = set()
        self._owned_regions = set()
        child.solver_context = (
            self.solver_context.fork() if self.solver_context is not None else None
        )
        child._constraints_fallback = (
            list(self._constraints_fallback)
            if self._constraints_fallback is not None
            else None
        )
        child.cache_model = self.cache_model.clone()
        child.num_packets = self.num_packets
        child.packets_processed = self.packets_processed
        child.status = self.status
        child.error_message = self.error_message
        child.current_cost = self.current_cost
        child.priority = self.priority
        child.preferred_loop_iteration = False
        child.instructions_retired = self.instructions_retired
        child.loads = self.loads
        child.stores = self.stores
        child.level_counts = dict(self.level_counts)
        child.packet_metrics = list(self.packet_metrics)
        child._packet_start_snapshot = dict(self._packet_start_snapshot)
        child.havoc_records = list(self.havoc_records)
        child.packet_actions = list(self.packet_actions)
        child._fresh_symbol_counter = self._fresh_symbol_counter
        child.shadow = self.shadow
        child.shadow_valid = self.shadow_valid
        child.vex_buffer = None
        child.round_cost_baseline = self.round_cost_baseline
        child.stage_costs = dict(self.stage_costs)
        child.active_stage = self.active_stage
        child.stage_cost_base = self.stage_cost_base
        return child

    def __getstate__(self):
        state = self.__dict__.copy()
        # A deferred group step must never cross a process boundary: the
        # receiving engine regroups from scratch (apply-time key validation
        # would catch a stale buffer anyway, but dropping it keeps shard
        # pickles free of plan objects entirely).
        state["vex_buffer"] = None
        return state

    # -- round (packet-boundary) carry-over -----------------------------------

    def pause_at_round_boundary(self) -> None:
        """Park this state at the packet boundary it just crossed.

        A paused state keeps its NF memory overlays, constraint chain and
        :class:`~repro.symbex.incremental.SolverContext` intact, so the beam
        scheduler can carry it into the next round copy-on-write and resume
        it with :meth:`resume_round`.
        """
        if self.status is not StateStatus.RUNNING:
            raise ValueError(f"cannot pause a {self.status.value} state")
        self.status = StateStatus.PAUSED

    def resume_round(self) -> None:
        """Return a paused state to the running pool for the next round."""
        if self.status is not StateStatus.PAUSED:
            raise ValueError(f"cannot resume a {self.status.value} state")
        self.status = StateStatus.RUNNING
        self.round_cost_baseline = self.current_cost

    @property
    def round_cost_gain(self) -> int:
        """Cycles accumulated since this state last entered a round."""
        return self.current_cost - self.round_cost_baseline

    # -- frames -----------------------------------------------------------------

    @property
    def frames(self) -> list[Frame]:
        """The call stack (read-only view; do not mutate frames directly)."""
        return self._frames

    @property
    def top_frame(self) -> Frame:
        """The active frame, made private to this state (copy-on-write).

        Use this for any mutation of the current frame; use ``frames[-1]``
        for pure reads to avoid triggering the copy.
        """
        frame = self._frames[-1]
        if not self._frames_owned[-1]:
            frame = frame.copy()
            self._frames[-1] = frame
            self._frames_owned[-1] = True
        return frame

    def push_frame(self, frame: Frame) -> None:
        self._frames.append(frame)
        self._frames_owned.append(True)

    def pop_frame(self) -> Frame:
        self._frames_owned.pop()
        return self._frames.pop()

    @property
    def call_depth(self) -> int:
        return len(self._frames)

    # -- registers and memory -----------------------------------------------------

    def read_register(self, name: str) -> Expr:
        frame = self._frames[-1]
        try:
            return frame.registers[name]
        except KeyError:
            raise KeyError(
                f"read of undefined register %{name} in {frame.function}"
            ) from None

    def write_register(self, name: str, value: Expr) -> None:
        self.top_frame.write_register(name, value)

    @property
    def memory(self) -> dict[str, dict[int, Expr]]:
        """Memory overlays (read-only view; write via :meth:`write_memory`)."""
        return self._memory

    def read_memory(self, region_name: str, index: int, default: int = 0) -> Expr:
        overlay = self._memory.get(region_name)
        if overlay is not None and index in overlay:
            return overlay[index]
        return Const(default)

    def write_memory(self, region_name: str, index: int, value: Expr) -> None:
        cells = self._memory.get(region_name)
        if cells is None:
            cells = {}
            self._memory[region_name] = cells
            self._owned_regions.add(region_name)
        elif region_name not in self._owned_regions:
            cells = dict(cells)
            self._memory[region_name] = cells
            self._owned_regions.add(region_name)
        cells[index] = value

    # -- constraints and symbols ----------------------------------------------------

    @property
    def constraints(self) -> list[Expr]:
        """Path constraints, oldest first (treat as read-only)."""
        if self.solver_context is not None:
            return self.solver_context.constraints()
        return self._constraints_fallback

    def add_constraint(self, constraint: Expr) -> None:
        if isinstance(constraint, Const):
            return
        if self.shadow_valid:
            # Keep the concolic shadow honest: it stays usable only while it
            # satisfies every committed constraint.  Invalidation is one-way
            # (no repair), so this is a single concrete evaluation per add.
            ev = constraint._evaluator
            if ev is None:
                ev = compiled_evaluator(constraint)
            if not ev(self.shadow):
                self.shadow_valid = False
        if self.solver_context is not None:
            self.solver_context.add(constraint)
        else:
            self._constraints_fallback.append(constraint)

    def fresh_symbol_name(self, prefix: str) -> str:
        self._fresh_symbol_counter += 1
        return f"{prefix}.{self.sid}.{self._fresh_symbol_counter}"

    # -- per-packet metrics -----------------------------------------------------------

    def _counters_snapshot(self) -> dict[str, int]:
        return {
            "cycles": self.current_cost,
            "instructions": self.instructions_retired,
            "loads": self.loads,
            "stores": self.stores,
            "L1": self.level_counts["L1"],
            "L3": self.level_counts["L3"],
            "DRAM": self.level_counts["DRAM"],
        }

    def begin_packet(self) -> None:
        self._packet_start_snapshot = self._counters_snapshot()

    def finish_packet(self, action: Expr) -> None:
        snapshot = self._packet_start_snapshot
        current = self._counters_snapshot()
        action_value = action.value if isinstance(action, Const) else None
        self.packet_metrics.append(
            PacketMetrics(
                packet_index=self.packets_processed,
                cycles=current["cycles"] - snapshot["cycles"],
                instructions=current["instructions"] - snapshot["instructions"],
                loads=current["loads"] - snapshot["loads"],
                stores=current["stores"] - snapshot["stores"],
                l1_hits=current["L1"] - snapshot["L1"],
                l3_hits=current["L3"] - snapshot["L3"],
                dram_accesses=current["DRAM"] - snapshot["DRAM"],
                action=action_value,
            )
        )
        self.packet_actions.append(action)
        self.packets_processed += 1

    # -- debugging ---------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"<State {self.sid} {self.status.value} packets={self.packets_processed}/"
            f"{self.num_packets} cost={self.current_cost} constraints={len(self.constraints)}>"
        )
