"""State-selection strategies ("searchers", §3.4, §4).

KLEE decides which pending state to explore next through a pluggable
searcher; CASTAN's custom searcher orders states by their estimated cost
(current cycles consumed plus the annotated potential cost of the next
instruction) and always picks the most expensive.  DFS/BFS/random searchers
are provided for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque

from repro.symbex.state import ExecutionState


class Searcher:
    """Interface: a mutable pool of pending execution states."""

    def add(self, state: ExecutionState) -> None:
        raise NotImplementedError

    def pop(self) -> ExecutionState:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_states(self):
        """Read-only view of every pending state, in no particular order.

        The vectorized frontier tier scans this at pop time to find peers
        parked at the same program point; enumeration must not disturb the
        pop order.  Searchers that cannot enumerate cheaply may return an
        empty iterable — grouping is an optimisation, never a requirement.
        """
        return ()

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def name(self) -> str:
        return type(self).__name__


class CastanSearcher(Searcher):
    """Max-cost priority search (the paper's directed heuristic).

    States are ordered by ``state.priority`` (current + potential cost);
    ties go to the state inserted most recently, which keeps the search
    depth-first-ish among equally promising states — the behaviour the
    paper relies on to "pick the worst among almost equal candidates".
    A small bonus is applied to states marked as preferred loop iterations
    so that, all else being equal, the engine keeps deepening loops.
    """

    def __init__(self, loop_iteration_bonus: int = 1) -> None:
        self._heap: list[tuple[int, int, ExecutionState]] = []
        self._counter = itertools.count()
        self.loop_iteration_bonus = loop_iteration_bonus

    def add(self, state: ExecutionState) -> None:
        priority = state.priority
        if state.preferred_loop_iteration:
            priority += self.loop_iteration_bonus
        # Python's heapq is a min-heap: negate priority; negate the counter
        # so that, on ties, the most recently added state pops first.
        heapq.heappush(self._heap, (-priority, -next(self._counter), state))

    def pop(self) -> ExecutionState:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def iter_states(self):
        return [entry[2] for entry in self._heap]


class DepthFirstSearcher(Searcher):
    """LIFO exploration (KLEE's DFS) — ablation baseline."""

    def __init__(self) -> None:
        self._stack: list[ExecutionState] = []

    def add(self, state: ExecutionState) -> None:
        self._stack.append(state)

    def pop(self) -> ExecutionState:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def iter_states(self):
        return list(self._stack)


class BreadthFirstSearcher(Searcher):
    """FIFO exploration — ablation baseline."""

    def __init__(self) -> None:
        self._queue: deque[ExecutionState] = deque()

    def add(self, state: ExecutionState) -> None:
        self._queue.append(state)

    def pop(self) -> ExecutionState:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def iter_states(self):
        return list(self._queue)


class RandomSearcher(Searcher):
    """Uniformly random state selection — ablation baseline."""

    def __init__(self, seed: int = 0) -> None:
        self._states: list[ExecutionState] = []
        self._rng = random.Random(seed)

    def add(self, state: ExecutionState) -> None:
        self._states.append(state)

    def pop(self) -> ExecutionState:
        index = self._rng.randrange(len(self._states))
        self._states[index], self._states[-1] = self._states[-1], self._states[index]
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)

    def iter_states(self):
        return list(self._states)


SEARCHERS = {
    "castan": CastanSearcher,
    "dfs": DepthFirstSearcher,
    "bfs": BreadthFirstSearcher,
    "random": RandomSearcher,
}

#: Searchers whose behaviour depends on a PRNG seed.
_SEEDED_SEARCHERS = frozenset({"random"})


def make_searcher(name: str, seed: int | None = None, **kwargs) -> Searcher:
    """Instantiate a searcher by name (``castan``, ``dfs``, ``bfs``, ``random``).

    ``seed`` is forwarded to searchers that are randomised (currently
    ``random``) so ablation runs honor the analysis seed; deterministic
    searchers ignore it.
    """
    try:
        factory = SEARCHERS[name]
    except KeyError:
        raise ValueError(f"unknown searcher {name!r}; options: {sorted(SEARCHERS)}") from None
    if seed is not None and name in _SEEDED_SEARCHERS:
        kwargs["seed"] = seed
    return factory(**kwargs)


def select_beam(states: list[ExecutionState], width: int) -> list[ExecutionState]:
    """Pick the top-``width`` frontier states for the next beam round.

    States are ranked by estimated total cost — ``state.priority``, i.e.
    current + annotated potential cost, the same estimate the CASTAN
    searcher orders by — with (packets_processed, current_cost) breaking
    ties.  Ranking by realised cost alone would always prefer a cheap state
    parked at the packet boundary over a mid-packet state being driven down
    an expensive subtree, throwing away exactly the paths the beam exists to
    keep.  Final ties break toward the earliest-created state (lowest sid),
    which makes beam selection deterministic across runs.
    """
    if width <= 0:
        return []
    ranked = sorted(
        states,
        key=lambda s: (-s.priority, -s.packets_processed, -s.current_cost, s.sid),
    )
    return ranked[:width]
