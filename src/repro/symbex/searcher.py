"""State-selection strategies ("searchers", §3.4, §4).

KLEE decides which pending state to explore next through a pluggable
searcher; CASTAN's custom searcher orders states by their estimated cost
(current cycles consumed plus the annotated potential cost of the next
instruction) and always picks the most expensive.  DFS/BFS/random searchers
are provided for the ablation benchmarks.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections import deque

from repro.symbex.state import ExecutionState


class Searcher:
    """Interface: a mutable pool of pending execution states."""

    def add(self, state: ExecutionState) -> None:
        raise NotImplementedError

    def pop(self) -> ExecutionState:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def empty(self) -> bool:
        return len(self) == 0

    @property
    def name(self) -> str:
        return type(self).__name__


class CastanSearcher(Searcher):
    """Max-cost priority search (the paper's directed heuristic).

    States are ordered by ``state.priority`` (current + potential cost);
    ties go to the state inserted most recently, which keeps the search
    depth-first-ish among equally promising states — the behaviour the
    paper relies on to "pick the worst among almost equal candidates".
    A small bonus is applied to states marked as preferred loop iterations
    so that, all else being equal, the engine keeps deepening loops.
    """

    def __init__(self, loop_iteration_bonus: int = 1) -> None:
        self._heap: list[tuple[int, int, ExecutionState]] = []
        self._counter = itertools.count()
        self.loop_iteration_bonus = loop_iteration_bonus

    def add(self, state: ExecutionState) -> None:
        priority = state.priority
        if state.preferred_loop_iteration:
            priority += self.loop_iteration_bonus
        # Python's heapq is a min-heap: negate priority; negate the counter
        # so that, on ties, the most recently added state pops first.
        heapq.heappush(self._heap, (-priority, -next(self._counter), state))

    def pop(self) -> ExecutionState:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class DepthFirstSearcher(Searcher):
    """LIFO exploration (KLEE's DFS) — ablation baseline."""

    def __init__(self) -> None:
        self._stack: list[ExecutionState] = []

    def add(self, state: ExecutionState) -> None:
        self._stack.append(state)

    def pop(self) -> ExecutionState:
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BreadthFirstSearcher(Searcher):
    """FIFO exploration — ablation baseline."""

    def __init__(self) -> None:
        self._queue: deque[ExecutionState] = deque()

    def add(self, state: ExecutionState) -> None:
        self._queue.append(state)

    def pop(self) -> ExecutionState:
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class RandomSearcher(Searcher):
    """Uniformly random state selection — ablation baseline."""

    def __init__(self, seed: int = 0) -> None:
        self._states: list[ExecutionState] = []
        self._rng = random.Random(seed)

    def add(self, state: ExecutionState) -> None:
        self._states.append(state)

    def pop(self) -> ExecutionState:
        index = self._rng.randrange(len(self._states))
        self._states[index], self._states[-1] = self._states[-1], self._states[index]
        return self._states.pop()

    def __len__(self) -> int:
        return len(self._states)


SEARCHERS = {
    "castan": CastanSearcher,
    "dfs": DepthFirstSearcher,
    "bfs": BreadthFirstSearcher,
    "random": RandomSearcher,
}


def make_searcher(name: str, **kwargs) -> Searcher:
    """Instantiate a searcher by name (``castan``, ``dfs``, ``bfs``, ``random``)."""
    try:
        factory = SEARCHERS[name]
    except KeyError:
        raise ValueError(f"unknown searcher {name!r}; options: {sorted(SEARCHERS)}") from None
    return factory(**kwargs)
