"""A set-associative cache with LRU replacement.

Used as the building block for every level of the simulated hierarchy.
Keys are cache-line-aligned addresses (the caller picks physical or virtual
addressing and which bits select the set).
"""

from __future__ import annotations

from collections import OrderedDict

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the [vector] extra
    _np = None


class SetAssociativeCache:
    """An ``associativity``-way cache of ``num_sets`` sets with LRU eviction."""

    def __init__(self, num_sets: int, associativity: int, line_size: int = 64) -> None:
        if num_sets <= 0 or associativity <= 0:
            raise ValueError("num_sets and associativity must be positive")
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self.num_sets = num_sets
        self.associativity = associativity
        self.line_size = line_size
        # set index -> OrderedDict of line address -> True (MRU at the end)
        self._sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def size_bytes(self) -> int:
        return self.num_sets * self.associativity * self.line_size

    def line_of(self, address: int) -> int:
        return address // self.line_size

    def set_index_of(self, address: int) -> int:
        return self.line_of(address) % self.num_sets

    def lines_of(self, addresses):
        """Line numbers of an address column (one numpy divide when available)."""
        if _np is not None:
            return (_np.asarray(addresses, dtype=_np.int64) // self.line_size).tolist()
        return [address // self.line_size for address in addresses]

    def set_indices_of(self, addresses):
        """Set indices of an address column (columnar when numpy is available)."""
        if _np is not None:
            lines = _np.asarray(addresses, dtype=_np.int64) // self.line_size
            return (lines % self.num_sets).tolist()
        return [self.set_index_of(address) for address in addresses]

    def access_batch(self, addresses) -> list[bool]:
        """Access a column of addresses in order; one hit/miss flag each.

        Line and set computations are columnar; the LRU updates themselves
        stay sequential because each access's outcome depends on every
        earlier one.  Equivalent to ``[self.access(a) for a in addresses]``.
        """
        lines = self.lines_of(addresses)
        indices = self.set_indices_of(addresses)
        results: list[bool] = []
        sets = self._sets
        for line, index in zip(lines, indices):
            ways = sets[index]
            if line in ways:
                ways.move_to_end(line)
                self.hits += 1
                results.append(True)
                continue
            self.misses += 1
            if len(ways) >= self.associativity:
                ways.popitem(last=False)
                self.evictions += 1
            ways[line] = True
            results.append(False)
        return results

    def access(self, address: int, set_index: int | None = None) -> bool:
        """Access ``address``; returns True on hit, False on miss (and fills)."""
        line = self.line_of(address)
        index = self.set_index_of(address) if set_index is None else set_index % self.num_sets
        ways = self._sets[index]
        if line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            ways.popitem(last=False)
            self.evictions += 1
        ways[line] = True
        return False

    def contains(self, address: int, set_index: int | None = None) -> bool:
        """True when ``address`` is currently cached (no LRU update)."""
        line = self.line_of(address)
        index = self.set_index_of(address) if set_index is None else set_index % self.num_sets
        return line in self._sets[index]

    def flush(self) -> None:
        """Empty the cache and reset statistics."""
        for ways in self._sets:
            ways.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def clone(self) -> "SetAssociativeCache":
        """Deep copy including resident lines and statistics."""
        other = SetAssociativeCache(self.num_sets, self.associativity, self.line_size)
        other._sets = [OrderedDict(ways) for ways in self._sets]
        other.hits = self.hits
        other.misses = self.misses
        other.evictions = self.evictions
        return other

    def way_partition(self, ways: int) -> "SetAssociativeCache":
        """A fresh cache representing a ``ways``-way partition of this one.

        Way partitioning (Intel CAT-style) reserves a subset of the ways in
        every set for one tenant: same set count, same indexing, reduced
        associativity.  Returns an empty partition (no resident lines are
        carried over — a new tenant starts cold).
        """
        if not (0 < ways <= self.associativity):
            raise ValueError(
                f"way partition must use 1..{self.associativity} ways, got {ways}"
            )
        return SetAssociativeCache(self.num_sets, ways, self.line_size)
