"""Probing-based reverse engineering of L3 contention sets (§3.2).

A *contention set* is a set of addresses such that bringing ``associativity``
of them into an empty L3 causes no eviction, while one more evicts a
previously loaded line.  Because the slice-selection hash is proprietary
(hidden inside :class:`~repro.cache.hierarchy.MemoryHierarchy`), the sets
are discovered empirically by timing probe loops, exactly as the paper
describes:

1. grow a set ``S`` until adding some address ``A`` raises the probing time
   by more than the contention threshold δ — at that point ``S`` holds
   ``associativity + 1`` addresses of some contention set ``C``;
2. shrink ``S`` to exactly those ``associativity + 1`` addresses by removing
   every address whose removal does not lower the probing time;
3. classify every remaining candidate address by substituting it into ``S``
   and checking whether the probing time stays high.

The discovery can be repeated over several "process runs" (different page
mappings); only groups of addresses that stay co-resident in the same set
across every run are retained, mirroring the paper's consistency filter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cache.hierarchy import MemoryHierarchy


@dataclass
class ContentionSets:
    """Discovered contention sets over a pool of (virtual) addresses."""

    associativity: int
    line_size: int
    sets: list[list[int]] = field(default_factory=list)
    source: str = "probing"

    def __post_init__(self) -> None:
        self._set_of_address: dict[int, int] = {}
        for set_id, addresses in enumerate(self.sets):
            for address in addresses:
                self._set_of_address[self._line(address)] = set_id

    def _line(self, address: int) -> int:
        return address // self.line_size

    def set_id_of(self, address: int) -> int | None:
        """The contention-set id covering ``address`` (None if unknown)."""
        return self._set_of_address.get(self._line(address))

    def addresses_in_set(self, set_id: int) -> list[int]:
        return self.sets[set_id]

    @property
    def set_count(self) -> int:
        return len(self.sets)

    @property
    def covered_addresses(self) -> int:
        return sum(len(s) for s in self.sets)

    def set_sizes(self) -> list[int]:
        return [len(s) for s in self.sets]

    @classmethod
    def from_oracle(cls, hierarchy: MemoryHierarchy, addresses: list[int]) -> "ContentionSets":
        """Build ground-truth contention sets via the hierarchy's oracle.

        Equivalent to running the probing discovery to exhaustion; used by
        tests (to validate the probing path) and by large-scale benchmarks
        where probing every line would dominate runtime.
        """
        line_size = hierarchy.config.line_size
        grouped: dict[tuple[int, int], list[int]] = {}
        seen_lines: set[int] = set()
        for address in addresses:
            line = address // line_size
            if line in seen_lines:
                continue
            seen_lines.add(line)
            grouped.setdefault(hierarchy.oracle_contention_key(address), []).append(address)
        sets = [sorted(group) for group in grouped.values() if len(group) > 1]
        sets.sort(key=len, reverse=True)
        return cls(
            associativity=hierarchy.l3_associativity,
            line_size=line_size,
            sets=sets,
            source="oracle",
        )


def discover_contention_sets(
    hierarchy: MemoryHierarchy,
    addresses: list[int],
    threshold: int | None = None,
    repeats: int = 8,
    max_sets: int | None = None,
    runs: int = 1,
    seed: int = 7,
) -> ContentionSets:
    """Discover contention sets among ``addresses`` by probing.

    ``threshold`` (δ) defaults to half the DRAM-vs-L3 gap times ``repeats``,
    which cleanly separates "one extra DRAM trip per probe round" from
    measurement noise.  With ``runs > 1`` the discovery is repeated under
    fresh page mappings and only consistently co-resident groups are kept.
    """
    if threshold is None:
        gap = hierarchy.cycle_costs.dram - hierarchy.cycle_costs.l3_hit
        threshold = (gap * repeats) // 2

    per_run_sets: list[list[list[int]]] = []
    original_seed = getattr(hierarchy, "_process_seed", 1)
    for run in range(runs):
        if runs > 1:
            hierarchy.new_process_run(original_seed + run)
        per_run_sets.append(
            _discover_single_run(hierarchy, addresses, threshold, repeats, max_sets, seed + run)
        )
    if runs > 1:
        hierarchy.new_process_run(original_seed)

    if runs == 1:
        sets = per_run_sets[0]
    else:
        sets = _consistent_sets(per_run_sets)

    return ContentionSets(
        associativity=hierarchy.l3_associativity,
        line_size=hierarchy.config.line_size,
        sets=sets,
        source="probing",
    )


def _discover_single_run(
    hierarchy: MemoryHierarchy,
    addresses: list[int],
    threshold: int,
    repeats: int,
    max_sets: int | None,
    seed: int,
) -> list[list[int]]:
    rng = random.Random(seed)
    line_size = hierarchy.config.line_size
    # One representative address per cache line.
    pool: list[int] = []
    seen_lines: set[int] = set()
    for address in addresses:
        line = address // line_size
        if line not in seen_lines:
            seen_lines.add(line)
            pool.append(address)
    rng.shuffle(pool)

    discovered: list[list[int]] = []
    remaining = list(pool)

    def probe(sample: list[int]) -> int:
        return hierarchy.probe_time(sample, repeats=repeats)

    while remaining and (max_sets is None or len(discovered) < max_sets):
        # Step 1: grow S until probing time jumps by more than δ.
        working: list[int] = []
        previous_time = 0
        trigger_found = False
        consumed = 0
        for address in remaining:
            consumed += 1
            candidate_time = probe(working + [address])
            if working and candidate_time - previous_time > threshold:
                working.append(address)
                trigger_found = True
                break
            working.append(address)
            previous_time = candidate_time
        if not trigger_found:
            break

        # Step 2: shrink S to exactly associativity + 1 members of C.
        slow_time = probe(working)
        members: list[int] = []
        for address in list(working):
            without = [a for a in working if a != address]
            if slow_time - probe(without) > threshold:
                members.append(address)
            else:
                working = without
                slow_time = probe(working)
        working = members if len(members) > hierarchy.l3_associativity else working

        # Step 3: classify every other candidate address.
        contention_set = list(working)
        base_time = probe(working)
        others = [a for a in remaining if a not in working]
        for address in others:
            substituted = [address] + working[1:]
            if base_time - probe(substituted) <= threshold:
                contention_set.append(address)

        discovered.append(sorted(set(contention_set)))
        claimed = set(contention_set)
        remaining = [a for a in remaining if a not in claimed]

    return discovered


def _consistent_sets(per_run_sets: list[list[list[int]]]) -> list[list[int]]:
    """Keep only address groups that share a set in *every* run."""

    def partition_of(sets: list[list[int]]) -> dict[int, int]:
        mapping: dict[int, int] = {}
        for set_id, group in enumerate(sets):
            for address in group:
                mapping[address] = set_id
        return mapping

    partitions = [partition_of(sets) for sets in per_run_sets]
    common_addresses = set(partitions[0])
    for partition in partitions[1:]:
        common_addresses &= set(partition)

    # Two addresses stay together only if they share a set in every run.
    grouped: dict[tuple[int, ...], list[int]] = {}
    for address in sorted(common_addresses):
        signature = tuple(partition[address] for partition in partitions)
        grouped.setdefault(signature, []).append(address)
    return [group for group in grouped.values() if len(group) > 1]
