"""Pluggable cache models for the symbolic execution engine (§3.3, §4).

The engine calls the active cache model on every ``load``/``store``.  The
model's job is twofold, mirroring the paper's KLEE plug-in: first pick the
"worst compatible cache line" for a symbolic pointer and concretize the
pointer to it (adding the corresponding equality constraint to the path),
then update its own cache state so later accesses see the effect.

Two implementations are provided:

* :class:`ContentionSetCacheModel` — CASTAN's default: drives symbolic
  addresses into already-populated contention sets so that the synthesized
  workload overflows L3 associativity and keeps missing.
* :class:`NoCacheModel` — an ablation baseline that concretizes pointers to
  any feasible value and charges every access an L1 hit, i.e. the search is
  guided by instruction counts alone.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.cache.contention import ContentionSets
from repro.ir.module import MemoryRegion
from repro.symbex.expr import Const, Expr, expr_eq

#: How many recently-touched element indices each region remembers (used to
#: steer symbolic pointers onto already-populated state).
TOUCHED_ELEMENT_WINDOW = 512

# Callbacks supplied by the engine:
#   feasible(constraint) -> bool         (quick path-constraint compatibility)
#   solve_value(expr) -> int | None      (any feasible concrete value for expr)
FeasibleFn = Callable[[Expr], bool]
SolveValueFn = Callable[[Expr], "int | None"]


@dataclass
class CacheAccessDecision:
    """Outcome of consulting the cache model for one memory access."""

    region: str
    index: int
    address: int
    level: str  # "L1" | "L2" | "L3" | "DRAM"
    constraint: Expr | None = None
    caused_eviction: bool = False


@dataclass
class CacheModelStats:
    """Counters the analysis reports alongside each generated path."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    concretizations: int = 0
    contention_targeted: int = 0


class CacheModel:
    """Interface every cache model plug-in implements."""

    def clone(self) -> "CacheModel":
        raise NotImplementedError

    def on_access(
        self,
        region: MemoryRegion,
        index_expr: Expr,
        is_write: bool,
        feasible: FeasibleFn,
        solve_value: SolveValueFn,
    ) -> CacheAccessDecision:
        raise NotImplementedError

    def on_access_batch(self, plans, execute_one, index_exprs=None) -> None:
        """Replay a straight-line run of memory accesses in order.

        The block-compiled engine groups consecutive loads/stores of a
        basic block into one call here instead of one :meth:`on_access`
        call per access.  ``execute_one(model, plan)`` resolves the next
        access's operands (later accesses may read registers written by
        earlier ones, so resolution must happen sequentially), routes it
        through :meth:`on_access`, applies the decision's state effects,
        and returns False to abort the run (e.g. an out-of-bounds access
        errored the state).  Decisions and model-state updates are
        identical to per-access interpretation by construction.

        ``index_exprs``, when given, is one row of a vectorized frontier
        access matrix: a pre-resolved index expression per plan (``None``
        for accesses whose index depends on an earlier load of the run —
        those still resolve sequentially).  It is forwarded to
        ``execute_one(model, plan, index_expr)`` purely to skip redundant
        register reads; models that reorder or batch their bookkeeping may
        also inspect the row directly.
        """
        if index_exprs is None:
            for plan in plans:
                if not execute_one(self, plan):
                    return
        else:
            for plan, index_expr in zip(plans, index_exprs):
                if not execute_one(self, plan, index_expr):
                    return

    @property
    def stats(self) -> CacheModelStats:
        raise NotImplementedError


class NoCacheModel(CacheModel):
    """Ablation model: no cache reasoning, every access is an L1 hit."""

    def __init__(self) -> None:
        self._stats = CacheModelStats()

    def clone(self) -> "NoCacheModel":
        other = NoCacheModel()
        other._stats = CacheModelStats(**vars(self._stats))
        return other

    def on_access(
        self,
        region: MemoryRegion,
        index_expr: Expr,
        is_write: bool,
        feasible: FeasibleFn,
        solve_value: SolveValueFn,
    ) -> CacheAccessDecision:
        self._stats.accesses += 1
        self._stats.hits += 1
        if isinstance(index_expr, Const):
            index = index_expr.value
            constraint = None
        else:
            value = solve_value(index_expr)
            index = 0 if value is None else value
            index = min(max(index, 0), region.length - 1)
            constraint = expr_eq(index_expr, Const(index))
            self._stats.concretizations += 1
        return CacheAccessDecision(
            region=region.name,
            index=index,
            address=region.address_of(index),
            level="L1",
            constraint=constraint,
        )

    @property
    def stats(self) -> CacheModelStats:
        return self._stats


class ContentionSetCacheModel(CacheModel):
    """CASTAN's contention-set cache model.

    The model keeps, per contention set, the lines it believes are resident
    in L3 (bounded by the associativity), starting from a clear cache.  For
    a symbolic pointer it builds a list of candidate lines that would land
    in the most-populated contention sets (those closest to overflowing),
    checks each candidate's equality constraint for compatibility with the
    path, and concretizes the pointer to the first compatible one.
    """

    def __init__(
        self,
        contention_sets: ContentionSets,
        l1_window: int = 8,
        max_candidates: int = 32,
    ) -> None:
        self.contention_sets = contention_sets
        self.associativity = contention_sets.associativity
        self.line_size = contention_sets.line_size
        self.max_candidates = max_candidates
        self.l1_window = l1_window
        # contention set id -> OrderedDict of resident line -> True (LRU)
        self._resident: dict[int, OrderedDict[int, bool]] = {}
        # Lines accessed at least once (cold-miss tracking), and a small
        # recency window standing in for L1 (repeat accesses to the very
        # same line in quick succession are not charged full L3 latency).
        self._touched_lines: set[int] = set()
        self._recent_lines: OrderedDict[int, bool] = OrderedDict()
        # region name -> element indices accessed so far (insertion order,
        # bounded window), used to steer pointers onto already-populated
        # state when no cache contention is achievable.
        self._touched_elements: dict[str, deque[int]] = {}
        self._stats = CacheModelStats()

    # -- lifecycle -----------------------------------------------------------

    def clone(self) -> "ContentionSetCacheModel":
        other = ContentionSetCacheModel(
            self.contention_sets, l1_window=self.l1_window, max_candidates=self.max_candidates
        )
        other._resident = {k: OrderedDict(v) for k, v in self._resident.items()}
        other._touched_lines = set(self._touched_lines)
        other._recent_lines = OrderedDict(self._recent_lines)
        other._touched_elements = {
            k: deque(v, maxlen=TOUCHED_ELEMENT_WINDOW) for k, v in self._touched_elements.items()
        }
        other._stats = CacheModelStats(**vars(self._stats))
        return other

    @property
    def stats(self) -> CacheModelStats:
        return self._stats

    # -- access handling -------------------------------------------------------

    def on_access(
        self,
        region: MemoryRegion,
        index_expr: Expr,
        is_write: bool,
        feasible: FeasibleFn,
        solve_value: SolveValueFn,
    ) -> CacheAccessDecision:
        self._stats.accesses += 1
        if isinstance(index_expr, Const):
            index = index_expr.value
            constraint: Expr | None = None
        else:
            index, constraint, targeted = self._concretize(region, index_expr, feasible, solve_value)
            self._stats.concretizations += 1
            if targeted:
                self._stats.contention_targeted += 1
        address = region.address_of(index)
        touched = self._touched_elements.setdefault(
            region.name, deque(maxlen=TOUCHED_ELEMENT_WINDOW)
        )
        if not touched or touched[-1] != index:
            touched.append(index)  # the deque's maxlen trims the oldest entry
        level, evicted = self._charge(address)
        if level in ("L1", "L3"):
            self._stats.hits += 1
        else:
            self._stats.misses += 1
        if evicted:
            self._stats.evictions += 1
        return CacheAccessDecision(
            region=region.name,
            index=index,
            address=address,
            level=level,
            constraint=constraint,
            caused_eviction=evicted,
        )

    # -- internals ---------------------------------------------------------------

    def _line_of(self, address: int) -> int:
        return address // self.line_size

    def _concretize(
        self,
        region: MemoryRegion,
        index_expr: Expr,
        feasible: FeasibleFn,
        solve_value: SolveValueFn,
    ) -> tuple[int, Expr | None, bool]:
        """Pick the worst compatible concrete index for a symbolic pointer."""
        for candidate_index in self._candidate_indices(region):
            constraint = expr_eq(index_expr, Const(candidate_index))
            if feasible(constraint):
                return candidate_index, constraint, True
        # Fall back to any feasible value within the region.
        value = solve_value(index_expr)
        if value is None:
            value = 0
        value = min(max(value, 0), region.length - 1)
        return value, expr_eq(index_expr, Const(value)), False

    def _candidate_indices(self, region: MemoryRegion) -> list[int]:
        """Candidate element indices expected to cause L3 contention.

        Contention sets already holding resident lines are ranked by how
        close they are to overflowing the associativity; for each we emit
        not-yet-touched lines of the same set that fall inside the region.
        """
        ranked = sorted(
            self._resident.items(),
            key=lambda item: len(item[1]),
            reverse=True,
        )
        candidates: list[int] = []
        for set_id, resident in ranked:
            if not resident:
                continue
            for address in self.contention_sets.addresses_in_set(set_id):
                if not region.contains_address(address):
                    continue
                if self._line_of(address) in self._touched_lines:
                    continue
                index = region.index_of(address)
                if 0 <= index < region.length:
                    candidates.append(index)
                if len(candidates) >= self.max_candidates:
                    return candidates
        # No contention to be had (e.g. the region fits in L3): the next
        # worst thing a symbolic pointer can do is land on state another
        # packet already touched — that is what grows hash chains and makes
        # lookups walk further (§5.4's collision workloads).
        touched = self._touched_elements.get(region.name, [])
        for index in reversed(touched):
            if index not in candidates:
                candidates.append(index)
            if len(candidates) >= self.max_candidates:
                break
        return candidates

    def _charge(self, address: int) -> tuple[str, bool]:
        """Update model state for a concrete access; return (level, evicted)."""
        line = self._line_of(address)

        # Recency window: immediately repeated accesses to the same line are
        # effectively L1 hits (loop bodies touching one element repeatedly).
        if line in self._recent_lines:
            self._recent_lines.move_to_end(line)
            return "L1", False

        set_id = self.contention_sets.set_id_of(address)
        evicted = False
        if set_id is None:
            # Address not covered by the empirical model: charge a cold miss
            # the first time, an L3 hit afterwards.
            level = "L3" if line in self._touched_lines else "DRAM"
        else:
            resident = self._resident.setdefault(set_id, OrderedDict())
            if line in resident:
                resident.move_to_end(line)
                level = "L3"
            else:
                level = "DRAM"
                resident[line] = True
                if len(resident) > self.associativity:
                    resident.popitem(last=False)
                    evicted = True
        self._touched_lines.add(line)
        self._recent_lines[line] = True
        if len(self._recent_lines) > self.l1_window:
            self._recent_lines.popitem(last=False)
        return level, evicted

    # -- reporting ----------------------------------------------------------------

    def resident_summary(self) -> dict[int, int]:
        """Contention-set id -> number of resident lines (for debugging)."""
        return {set_id: len(lines) for set_id, lines in self._resident.items() if lines}


class PartitionedCacheModel(CacheModel):
    """Per-stage cache slices for chain NFs (``cache_partition="partitioned"``).

    Routes every access to the submodel of the region's owning stage,
    through a proxy region whose base address is the stage's *standalone*
    layout (the chain's per-stage address-plane offset subtracted).  Each
    stage therefore receives bit-for-bit the decisions its standalone
    analysis would produce — no cross-stage contention, as if the hierarchy
    were way/set-partitioned between the stages.
    """

    def __init__(
        self,
        submodels: list[CacheModel],
        routes: dict[str, tuple[int, MemoryRegion]],
    ) -> None:
        self._submodels = submodels
        # region name -> (submodel slot, proxy region on the standalone layout)
        self._routes = routes

    def clone(self) -> "PartitionedCacheModel":
        return PartitionedCacheModel(
            [submodel.clone() for submodel in self._submodels], self._routes
        )

    def on_access(
        self,
        region: MemoryRegion,
        index_expr: Expr,
        is_write: bool,
        feasible: FeasibleFn,
        solve_value: SolveValueFn,
    ) -> CacheAccessDecision:
        try:
            slot, proxy = self._routes[region.name]
        except KeyError:
            raise KeyError(
                f"region {region.name!r} is not assigned to any chain stage "
                "(partitioned cache model)"
            ) from None
        return self._submodels[slot].on_access(
            proxy, index_expr, is_write, feasible, solve_value
        )

    @property
    def stats(self) -> CacheModelStats:
        total = CacheModelStats()
        for submodel in self._submodels:
            sub = submodel.stats
            total.accesses += sub.accesses
            total.hits += sub.hits
            total.misses += sub.misses
            total.evictions += sub.evictions
            total.concretizations += sub.concretizations
            total.contention_targeted += sub.contention_targeted
        return total

    def stage_stats(self) -> list[CacheModelStats]:
        """Per-stage counters, in chain stage order."""
        return [submodel.stats for submodel in self._submodels]
