"""Simulated processor memory hierarchy (the testbed machine stand-in).

The paper's evaluation machine is an Intel Xeon E5-2667v2: 32 KiB 8-way L1d,
256 KiB 8-way L2, 25.6 MiB 20-way L3 split into slices selected by a
*proprietary* hash of the physical address, and 1 GB pages so that bits
0–29 of virtual and physical addresses coincide (Fig. 1).  This module
simulates that structure at configurable (scaled-down) sizes:

* virtual pages are mapped to pseudo-random physical frames per "process
  run" (so contention sets differ across runs, as on real hardware);
* the L3 slice is selected by a hidden XOR-parity hash of physical address
  bits, seeded per "machine" — analysis code must not read it directly, it
  must reverse-engineer contention sets by probing (§3.2);
* :meth:`MemoryHierarchy.probe_time` measures the time to sequentially read
  a set of addresses repeatedly, which is exactly the measurement the
  contention-set discovery algorithm relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cache.setassoc import SetAssociativeCache
from repro.perf.cycles import CycleCosts, DEFAULT_CYCLE_COSTS


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of the simulated memory hierarchy.

    The defaults are a laptop-friendly scale-down of the paper's Xeon
    E5-2667v2 that preserves the ratios the evaluation depends on (the
    1-stage direct-lookup table must dwarf the L3; the 2-stage table must
    exceed it by a small factor only).
    """

    line_size: int = 64
    l1_size: int = 32 * 1024
    l1_ways: int = 8
    l2_size: int = 128 * 1024
    l2_ways: int = 8
    l3_size: int = 512 * 1024
    l3_ways: int = 16
    l3_slices: int = 4
    page_size: int = 2 * 1024 * 1024  # stand-in for the paper's 1 GB pages
    machine_seed: int = 0x5EED_CA57

    def __post_init__(self) -> None:
        for name in ("line_size", "page_size", "l3_slices"):
            value = getattr(self, name)
            if value & (value - 1):
                raise ValueError(f"{name} must be a power of two, got {value}")

    @property
    def l1_sets(self) -> int:
        return self.l1_size // (self.line_size * self.l1_ways)

    @property
    def l2_sets(self) -> int:
        return self.l2_size // (self.line_size * self.l2_ways)

    @property
    def l3_sets_per_slice(self) -> int:
        return self.l3_size // (self.line_size * self.l3_ways * self.l3_slices)

    @property
    def l3_associativity(self) -> int:
        return self.l3_ways

    def way_partitioned(self, ways: int) -> "HierarchyConfig":
        """Geometry of a ``ways``-way L3 partition of this hierarchy.

        Way partitioning keeps the set structure (``l3_sets_per_slice`` and
        the slice count are unchanged) and hands one tenant a subset of the
        ways in every set, so the partition's capacity shrinks
        proportionally.  L1/L2 are private per-core caches and stay intact.
        """
        if not (0 < ways <= self.l3_ways):
            raise ValueError(f"way partition must use 1..{self.l3_ways} ways, got {ways}")
        import dataclasses

        return dataclasses.replace(
            self,
            l3_size=self.l3_size * ways // self.l3_ways,
            l3_ways=ways,
        )

    def describe_bit_layout(self) -> str:
        """Render the Fig. 1 style bit layout of the simulated hierarchy."""
        offset_bits = self.line_size.bit_length() - 1
        l1_bits = self.l1_sets.bit_length() - 1
        l2_bits = self.l2_sets.bit_length() - 1
        l3_bits = self.l3_sets_per_slice.bit_length() - 1
        page_bits = self.page_size.bit_length() - 1
        return (
            f"byte offset: bits 0-{offset_bits - 1}\n"
            f"L1d set:     bits {offset_bits}-{offset_bits + l1_bits - 1}\n"
            f"L2 set:      bits {offset_bits}-{offset_bits + l2_bits - 1}\n"
            f"L3 set:      bits {offset_bits}-{offset_bits + l3_bits - 1}\n"
            f"L3 slice:    hidden hash of physical bits >= {offset_bits}\n"
            f"page offset: bits 0-{page_bits - 1} (identical in virtual/physical)"
        )


@dataclass
class HierarchyStats:
    """Aggregate access statistics since the last reset."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    by_level: dict = field(default_factory=dict)


class MemoryHierarchy:
    """The simulated L1d/L2/L3/DRAM hierarchy with hidden L3 slicing."""

    LEVELS = ("L1", "L2", "L3", "DRAM")

    def __init__(
        self,
        config: HierarchyConfig | None = None,
        cycle_costs: CycleCosts = DEFAULT_CYCLE_COSTS,
        process_seed: int = 1,
    ) -> None:
        self.config = config or HierarchyConfig()
        self.cycle_costs = cycle_costs
        self._machine_rng = random.Random(self.config.machine_seed)
        # Hidden slice-hash parity masks: one mask per slice-index bit.  The
        # masks select physical-address bits at and above the line offset,
        # mimicking Intel's undocumented complex addressing.  Analysis code
        # must not read these; it must discover contention sets by probing.
        slice_bits = (self.config.l3_slices - 1).bit_length()
        offset_bits = self.config.line_size.bit_length() - 1
        self.__slice_masks = [
            self._machine_rng.getrandbits(34) << offset_bits for _ in range(slice_bits)
        ]
        self._process_seed = process_seed
        self._page_keys = self._derive_page_keys(process_seed)
        self.reset_caches()
        self.stats = HierarchyStats()

    # -- process / machine lifecycle -------------------------------------------

    def _derive_page_keys(self, seed: int) -> tuple[int, int]:
        rng = random.Random((self.config.machine_seed << 1) ^ seed)
        return rng.getrandbits(32) | 1, rng.getrandbits(32) | 1

    def new_process_run(self, process_seed: int) -> None:
        """Start a new "process run": fresh page mapping, cold caches.

        Mirrors re-running the NF (or rebooting the machine): virtual pages
        land on different physical frames, so L3 slice selection — and
        therefore contention sets — changes for addresses that differ above
        the page-offset bits.
        """
        self._process_seed = process_seed
        self._page_keys = self._derive_page_keys(process_seed)
        self.reset_caches()

    def reset_caches(self) -> None:
        """Cold-start every cache level (keeps the page mapping)."""
        cfg = self.config
        self._l1 = SetAssociativeCache(cfg.l1_sets, cfg.l1_ways, cfg.line_size)
        self._l2 = SetAssociativeCache(cfg.l2_sets, cfg.l2_ways, cfg.line_size)
        self._l3 = [
            SetAssociativeCache(cfg.l3_sets_per_slice, cfg.l3_ways, cfg.line_size)
            for _ in range(cfg.l3_slices)
        ]
        self.stats = HierarchyStats()

    # -- address translation ----------------------------------------------------

    def virtual_to_physical(self, vaddr: int) -> int:
        """Translate a virtual address using the current page mapping.

        The page offset is preserved exactly (as with the paper's 1 GB
        pages); the page frame number is a keyed mix of the virtual page
        number, deterministic for a given process run.
        """
        page_size = self.config.page_size
        page = vaddr // page_size
        offset = vaddr % page_size
        key_a, key_b = self._page_keys
        frame = page
        # Two rounds of a keyed multiply/xor mix over 32 bits: deterministic,
        # seed-dependent and without obvious structure the analysis could
        # exploit instead of probing.
        frame = ((frame * key_a) ^ (frame >> 13) ^ key_b) & 0xFFFFFFFF
        frame = ((frame * key_b) ^ (frame >> 11) ^ key_a) & 0xFFFFFFFF
        return frame * page_size + offset

    def _slice_of(self, paddr: int) -> int:
        slice_index = 0
        for bit, mask in enumerate(self.__slice_masks):
            parity = bin(paddr & mask).count("1") & 1
            slice_index |= parity << bit
        return slice_index

    def _l3_set_of(self, paddr: int) -> int:
        return (paddr // self.config.line_size) % self.config.l3_sets_per_slice

    # -- accesses ---------------------------------------------------------------

    def access(self, vaddr: int, is_write: bool = False) -> str:
        """Access one byte address; returns the level that serviced it."""
        del is_write  # writes and reads cost the same in this model
        paddr = self.virtual_to_physical(vaddr)
        self.stats.accesses += 1
        if self._l1.access(paddr):
            self.stats.l1_hits += 1
            return "L1"
        if self._l2.access(paddr):
            self.stats.l2_hits += 1
            return "L2"
        slice_index = self._slice_of(paddr)
        l3_set = self._l3_set_of(paddr)
        if self._l3[slice_index].access(paddr, set_index=l3_set):
            self.stats.l3_hits += 1
            return "L3"
        self.stats.dram_accesses += 1
        return "DRAM"

    def access_cycles(self, vaddr: int, is_write: bool = False) -> tuple[str, int]:
        """Access an address and return ``(level, cycle cost)``."""
        level = self.access(vaddr, is_write)
        return level, self.cycle_costs.memory_cost(level)

    # -- probing (the §3.2 measurement primitive) -------------------------------

    def probe_time(self, addresses: list[int], repeats: int = 8) -> int:
        """Simulated cycles to sequentially read ``addresses`` ``repeats`` times.

        The measurement uses a throwaway copy of the cache state so probing
        does not disturb the DUT caches, mirroring the paper's separate
        measurement process.  Sequential (pointer-chased) reads of a set
        that exceeds the associativity of its contention set thrash under
        LRU, so the probe time jumps by roughly ``repeats``×(DRAM − L3)
        cycles — the contention threshold δ the discovery algorithm tests.
        """
        probe_l3 = [slice_cache.clone() for slice_cache in self._l3]
        # L1/L2 are intentionally bypassed during probing: the paper's
        # probing loops use pointer chasing over buffers that far exceed
        # L1/L2, so those levels contribute a constant that the δ threshold
        # comparison cancels out.
        total = 0
        for _ in range(repeats):
            for vaddr in addresses:
                paddr = self.virtual_to_physical(vaddr)
                slice_index = self._slice_of(paddr)
                l3_set = self._l3_set_of(paddr)
                if probe_l3[slice_index].access(paddr, set_index=l3_set):
                    total += self.cycle_costs.l3_hit
                else:
                    total += self.cycle_costs.dram
        return total

    # -- instrumentation --------------------------------------------------------

    def oracle_contention_key(self, vaddr: int) -> tuple[int, int]:
        """Ground-truth (slice, set) key of an address.

        This is an instrumentation backdoor equivalent to running the §3.2
        discovery to exhaustion.  It exists so tests can validate the
        probing-based discovery and so large-scale benchmarks can skip the
        (slow) probing phase; the honest analysis path never calls it.
        """
        paddr = self.virtual_to_physical(vaddr)
        return self._slice_of(paddr), self._l3_set_of(paddr)

    @property
    def l3_associativity(self) -> int:
        return self.config.l3_ways

    @property
    def l3_total_lines(self) -> int:
        return self.config.l3_size // self.config.line_size

    def snapshot_stats(self) -> HierarchyStats:
        stats = self.stats
        stats.by_level = {
            "L1": stats.l1_hits,
            "L2": stats.l2_hits,
            "L3": stats.l3_hits,
            "DRAM": stats.dram_accesses,
        }
        return stats
