"""Cache substrate: simulated memory hierarchy and contention-set modelling.

Four pieces, mirroring §3.2–3.3 of the paper:

* :mod:`repro.cache.setassoc` — a plain set-associative cache with LRU
  replacement, the building block of the hierarchy.
* :mod:`repro.cache.hierarchy` — the simulated processor memory hierarchy
  (L1d/L2/L3 with a *hidden* L3 slice-selection hash and physical page
  mapping), standing in for the Intel Xeon E5-2667v2 testbed machine.
* :mod:`repro.cache.contention` — the probing-based reverse engineering of
  L3 contention sets, run for real against the simulated hierarchy.
* :mod:`repro.cache.model` — the pluggable cache models the symbolic
  execution engine calls on every load/store; the default constrains
  symbolic pointers into discovered contention sets.

Public names are re-exported lazily to avoid import cycles with
:mod:`repro.symbex`.
"""

from repro._lazy import lazy_exports

__all__ = [
    "CacheAccessDecision",
    "CacheModel",
    "ContentionSetCacheModel",
    "ContentionSets",
    "HierarchyConfig",
    "MemoryHierarchy",
    "NoCacheModel",
    "SetAssociativeCache",
    "discover_contention_sets",
]

_EXPORTS = {
    "ContentionSets": (".contention", "ContentionSets"),
    "discover_contention_sets": (".contention", "discover_contention_sets"),
    "HierarchyConfig": (".hierarchy", "HierarchyConfig"),
    "MemoryHierarchy": (".hierarchy", "MemoryHierarchy"),
    "CacheAccessDecision": (".model", "CacheAccessDecision"),
    "CacheModel": (".model", "CacheModel"),
    "ContentionSetCacheModel": (".model", "ContentionSetCacheModel"),
    "NoCacheModel": (".model", "NoCacheModel"),
    "SetAssociativeCache": (".setassoc", "SetAssociativeCache"),
}

__getattr__, __dir__ = lazy_exports(__name__, _EXPORTS)
