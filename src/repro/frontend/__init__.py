"""Frontend: compiles the restricted-Python NF dialect into NFIL.

This subpackage plays the role of ``clang -emit-llvm`` in the paper's
toolchain: NF authors write packet-processing code in a small, statically
analysable subset of Python (integers, fixed-size memory regions accessed
by subscript, structured control flow, calls to helper functions and the
``castan_havoc`` intrinsic), and the compiler lowers it to NFIL for the
symbolic and concrete interpreters.
"""

from repro.frontend.compiler import CompiledNF, compile_functions, compile_nf
from repro.frontend.errors import NFCompileError
from repro.frontend.intrinsics import CASTAN_HAVOC, INTRINSIC_NAMES

__all__ = [
    "CASTAN_HAVOC",
    "CompiledNF",
    "INTRINSIC_NAMES",
    "NFCompileError",
    "compile_functions",
    "compile_nf",
]
