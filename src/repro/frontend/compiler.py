"""Compiler from the restricted-Python NF dialect to NFIL.

Supported dialect
-----------------
* Module-level ``def`` functions with positional integer parameters.
* Integer literals, named constants (supplied via ``constants``), locals.
* Arithmetic/bitwise operators ``+ - * // % & | ^ << >>``, unary ``-``/``~``.
* Comparisons ``== != < <= > >=`` (unsigned 64-bit semantics) and boolean
  ``and`` / ``or`` / ``not`` (short-circuit in conditions, eager 0/1 values
  in expression position).
* ``if`` / ``elif`` / ``else``, ``while``, ``for i in range(...)``,
  ``break`` / ``continue`` / ``pass`` / ``return``.
* Memory-region access by subscript: ``table[i]`` / ``table[i] = v`` where
  ``table`` is a region declared on the target module.
* Calls to other dialect functions defined in the same source, and the
  ``castan_havoc(key, hash_fn(args...))`` intrinsic.

Anything else raises :class:`NFCompileError` with the offending line.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field

from repro.frontend.errors import NFCompileError
from repro.frontend.intrinsics import CASTAN_HAVOC
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import BinOpKind, CmpKind
from repro.ir.module import BasicBlock, Module
from repro.ir.values import Constant, Register, Value
from repro.ir.verify import verify_module

_BINOPS: dict[type[ast.operator], BinOpKind] = {
    ast.Add: BinOpKind.ADD,
    ast.Sub: BinOpKind.SUB,
    ast.Mult: BinOpKind.MUL,
    ast.FloorDiv: BinOpKind.UDIV,
    ast.Mod: BinOpKind.UREM,
    ast.BitAnd: BinOpKind.AND,
    ast.BitOr: BinOpKind.OR,
    ast.BitXor: BinOpKind.XOR,
    ast.LShift: BinOpKind.SHL,
    ast.RShift: BinOpKind.LSHR,
}

_CMPOPS: dict[type[ast.cmpop], CmpKind] = {
    ast.Eq: CmpKind.EQ,
    ast.NotEq: CmpKind.NE,
    ast.Lt: CmpKind.ULT,
    ast.LtE: CmpKind.ULE,
    ast.Gt: CmpKind.UGT,
    ast.GtE: CmpKind.UGE,
}

_NEGATED: dict[CmpKind, CmpKind] = {
    CmpKind.EQ: CmpKind.NE,
    CmpKind.NE: CmpKind.EQ,
    CmpKind.ULT: CmpKind.UGE,
    CmpKind.ULE: CmpKind.UGT,
    CmpKind.UGT: CmpKind.ULE,
    CmpKind.UGE: CmpKind.ULT,
}


@dataclass
class CompiledNF:
    """Result of compiling an NF dialect source onto a module."""

    module: Module
    entry: str
    function_names: list[str] = field(default_factory=list)


def compile_nf(
    module: Module,
    source: str,
    constants: dict[str, int] | None = None,
    entry: str = "process",
) -> CompiledNF:
    """Compile ``source`` into ``module`` and verify the result.

    ``module`` must already declare every memory region the source
    references.  The entry function must exist in the source.
    """
    names = compile_functions(module, source, constants)
    if entry not in names:
        raise NFCompileError(f"entry function {entry!r} not found in source")
    module.reassign_uids()
    verify_module(module)
    return CompiledNF(module=module, entry=entry, function_names=names)


def compile_functions(
    module: Module,
    source: str,
    constants: dict[str, int] | None = None,
) -> list[str]:
    """Compile every top-level function in ``source`` into ``module``."""
    tree = ast.parse(textwrap.dedent(source))
    constants = dict(constants or {})
    function_defs = [node for node in tree.body if isinstance(node, ast.FunctionDef)]
    known_functions = {fn.name for fn in function_defs} | set(module.functions)
    names: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            compiler = _FunctionCompiler(module, constants, known_functions)
            module.add_function(compiler.compile(node))
            names.append(node.name)
        elif isinstance(node, (ast.Expr, ast.Pass)):
            # Allow module docstrings and bare `pass`.
            continue
        elif isinstance(node, ast.Assign):
            # Module-level constant assignment: NAME = <int literal>.
            target = node.targets[0]
            if (
                len(node.targets) == 1
                and isinstance(target, ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                constants[target.id] = node.value.value
            else:
                raise NFCompileError(
                    "module-level assignments must be integer constants", node.lineno
                )
        else:
            raise NFCompileError(
                f"unsupported module-level statement {type(node).__name__}", node.lineno
            )
    return names


class _LoopContext:
    """Targets for break/continue inside the innermost loop."""

    def __init__(self, continue_block: BasicBlock, break_block: BasicBlock) -> None:
        self.continue_block = continue_block
        self.break_block = break_block


class _FunctionCompiler:
    """Lowers a single ``ast.FunctionDef`` into an NFIL function."""

    def __init__(
        self,
        module: Module,
        constants: dict[str, int],
        known_functions: set[str],
    ) -> None:
        self.module = module
        self.constants = constants
        self.known_functions = known_functions
        self.builder: FunctionBuilder | None = None
        self.locals: dict[str, Register] = {}
        self.loops: list[_LoopContext] = []

    # -- entry point -------------------------------------------------------

    def compile(self, node: ast.FunctionDef):
        params = [arg.arg for arg in node.args.args]
        if node.args.vararg or node.args.kwarg or node.args.kwonlyargs or node.args.defaults:
            raise NFCompileError(
                "NF dialect functions take positional parameters only", node.lineno
            )
        self.builder = FunctionBuilder(node.name, params)
        entry = self.builder.block("entry")
        self.builder.switch_to(entry)
        self.locals = {p: Register(p) for p in params}

        body = node.body
        # Skip a leading docstring.
        if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
            body = body[1:]
        self._compile_body(body)
        if not self.builder.current_terminated:
            self.builder.ret(0)
        return self.builder.build()

    # -- statements ----------------------------------------------------------

    def _compile_body(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            if self.builder.current_terminated:
                # Dead code after return/break/continue is legal in the
                # dialect but never emitted.
                return
            self._compile_statement(statement)

    def _compile_statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._compile_assign(node)
        elif isinstance(node, ast.AugAssign):
            self._compile_aug_assign(node)
        elif isinstance(node, ast.If):
            self._compile_if(node)
        elif isinstance(node, ast.While):
            self._compile_while(node)
        elif isinstance(node, ast.For):
            self._compile_for(node)
        elif isinstance(node, ast.Return):
            value = self._compile_expr(node.value) if node.value is not None else Constant(0)
            self.builder.ret(value)
        elif isinstance(node, ast.Break):
            if not self.loops:
                raise NFCompileError("break outside loop", node.lineno)
            self.builder.jump(self.loops[-1].break_block)
        elif isinstance(node, ast.Continue):
            if not self.loops:
                raise NFCompileError("continue outside loop", node.lineno)
            self.builder.jump(self.loops[-1].continue_block)
        elif isinstance(node, ast.Pass):
            return
        elif isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return  # stray docstring / constant expression
            if isinstance(node.value, ast.Call):
                self._compile_call(node.value, want_result=False)
                return
            raise NFCompileError(
                "expression statements must be calls", node.lineno
            )
        else:
            raise NFCompileError(
                f"unsupported statement {type(node).__name__}", node.lineno
            )

    def _compile_assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise NFCompileError("chained assignment is not supported", node.lineno)
        target = node.targets[0]
        if isinstance(target, ast.Name):
            value = self._compile_expr(node.value)
            self._bind_local(target.id, value)
        elif isinstance(target, ast.Subscript):
            region = self._region_name(target, node.lineno)
            index = self._compile_expr(target.slice)
            value = self._compile_expr(node.value)
            self.builder.store(region, index, value)
        else:
            raise NFCompileError(
                f"unsupported assignment target {type(target).__name__}", node.lineno
            )

    def _compile_aug_assign(self, node: ast.AugAssign) -> None:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise NFCompileError(
                f"unsupported augmented operator {type(node.op).__name__}", node.lineno
            )
        if isinstance(node.target, ast.Name):
            current = self._load_name(node.target.id, node.lineno)
            value = self._compile_expr(node.value)
            result = self.builder.binop(op, current, value)
            self._bind_local(node.target.id, result)
        elif isinstance(node.target, ast.Subscript):
            region = self._region_name(node.target, node.lineno)
            index = self._compile_expr(node.target.slice)
            current = self.builder.load(region, index)
            value = self._compile_expr(node.value)
            result = self.builder.binop(op, current, value)
            self.builder.store(region, index, result)
        else:
            raise NFCompileError(
                f"unsupported augmented-assignment target {type(node.target).__name__}",
                node.lineno,
            )

    def _compile_if(self, node: ast.If) -> None:
        then_block = self.builder.block(self.builder.fresh_block_name("if.then"))
        else_block = (
            self.builder.block(self.builder.fresh_block_name("if.else")) if node.orelse else None
        )
        join_block = self.builder.block(self.builder.fresh_block_name("if.end"))

        false_target = else_block if else_block is not None else join_block
        self._compile_condition(node.test, then_block, false_target)

        self.builder.switch_to(then_block)
        self._compile_body(node.body)
        if not self.builder.current_terminated:
            self.builder.jump(join_block)

        if else_block is not None:
            self.builder.switch_to(else_block)
            self._compile_body(node.orelse)
            if not self.builder.current_terminated:
                self.builder.jump(join_block)

        self.builder.switch_to(join_block)

    def _compile_while(self, node: ast.While) -> None:
        if node.orelse:
            raise NFCompileError("while/else is not supported", node.lineno)
        cond_block = self.builder.block(self.builder.fresh_block_name("while.cond"))
        body_block = self.builder.block(self.builder.fresh_block_name("while.body"))
        exit_block = self.builder.block(self.builder.fresh_block_name("while.end"))

        self.builder.jump(cond_block)
        self.builder.switch_to(cond_block)
        self._compile_condition(node.test, body_block, exit_block)

        self.loops.append(_LoopContext(continue_block=cond_block, break_block=exit_block))
        self.builder.switch_to(body_block)
        self._compile_body(node.body)
        if not self.builder.current_terminated:
            self.builder.jump(cond_block)
        self.loops.pop()

        self.builder.switch_to(exit_block)

    def _compile_for(self, node: ast.For) -> None:
        if node.orelse:
            raise NFCompileError("for/else is not supported", node.lineno)
        if not (
            isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"
            and 1 <= len(node.iter.args) <= 2
        ):
            raise NFCompileError("for loops must iterate over range()", node.lineno)
        if not isinstance(node.target, ast.Name):
            raise NFCompileError("for-loop target must be a simple name", node.lineno)

        if len(node.iter.args) == 1:
            start: Value = Constant(0)
            stop = self._compile_expr(node.iter.args[0])
        else:
            start = self._compile_expr(node.iter.args[0])
            stop = self._compile_expr(node.iter.args[1])

        loop_var = node.target.id
        self._bind_local(loop_var, start)

        cond_block = self.builder.block(self.builder.fresh_block_name("for.cond"))
        body_block = self.builder.block(self.builder.fresh_block_name("for.body"))
        step_block = self.builder.block(self.builder.fresh_block_name("for.step"))
        exit_block = self.builder.block(self.builder.fresh_block_name("for.end"))

        self.builder.jump(cond_block)
        self.builder.switch_to(cond_block)
        cond = self.builder.compare(CmpKind.ULT, self.locals[loop_var], stop)
        self.builder.branch(cond, body_block, exit_block)

        self.loops.append(_LoopContext(continue_block=step_block, break_block=exit_block))
        self.builder.switch_to(body_block)
        self._compile_body(node.body)
        if not self.builder.current_terminated:
            self.builder.jump(step_block)
        self.loops.pop()

        self.builder.switch_to(step_block)
        incremented = self.builder.add(self.locals[loop_var], 1)
        self._bind_local(loop_var, incremented)
        self.builder.jump(cond_block)

        self.builder.switch_to(exit_block)

    # -- conditions ----------------------------------------------------------

    def _compile_condition(
        self, test: ast.expr, true_block: BasicBlock, false_block: BasicBlock
    ) -> None:
        """Compile ``test`` as control flow with short-circuit evaluation."""
        if isinstance(test, ast.BoolOp):
            if isinstance(test.op, ast.And):
                for operand in test.values[:-1]:
                    next_block = self.builder.block(self.builder.fresh_block_name("and.rhs"))
                    self._compile_condition(operand, next_block, false_block)
                    self.builder.switch_to(next_block)
                self._compile_condition(test.values[-1], true_block, false_block)
            else:  # Or
                for operand in test.values[:-1]:
                    next_block = self.builder.block(self.builder.fresh_block_name("or.rhs"))
                    self._compile_condition(operand, true_block, next_block)
                    self.builder.switch_to(next_block)
                self._compile_condition(test.values[-1], true_block, false_block)
            return
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            self._compile_condition(test.operand, false_block, true_block)
            return
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            pred = _CMPOPS.get(type(test.ops[0]))
            if pred is None:
                raise NFCompileError(
                    f"unsupported comparison {type(test.ops[0]).__name__}", test.lineno
                )
            lhs = self._compile_expr(test.left)
            rhs = self._compile_expr(test.comparators[0])
            cond = self.builder.compare(pred, lhs, rhs)
            self.builder.branch(cond, true_block, false_block)
            return
        # Fallback: any non-zero value is true.
        value = self._compile_expr(test)
        cond = self.builder.compare(CmpKind.NE, value, 0)
        self.builder.branch(cond, true_block, false_block)

    # -- expressions ---------------------------------------------------------

    def _compile_expr(self, node: ast.expr) -> Value:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Constant(int(node.value))
            if isinstance(node.value, int):
                return Constant(node.value)
            raise NFCompileError(
                f"unsupported literal {node.value!r} (integers only)", node.lineno
            )
        if isinstance(node, ast.Name):
            return self._load_name(node.id, node.lineno)
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise NFCompileError(
                    f"unsupported operator {type(node.op).__name__}", node.lineno
                )
            lhs = self._compile_expr(node.left)
            rhs = self._compile_expr(node.right)
            return self.builder.binop(op, lhs, rhs)
        if isinstance(node, ast.UnaryOp):
            return self._compile_unary(node)
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise NFCompileError("chained comparisons are not supported", node.lineno)
            pred = _CMPOPS.get(type(node.ops[0]))
            if pred is None:
                raise NFCompileError(
                    f"unsupported comparison {type(node.ops[0]).__name__}", node.lineno
                )
            lhs = self._compile_expr(node.left)
            rhs = self._compile_expr(node.comparators[0])
            return self.builder.compare(pred, lhs, rhs)
        if isinstance(node, ast.BoolOp):
            # Eager 0/1 evaluation in expression position (operands are
            # themselves 0/1 or arbitrary ints tested against zero).
            op = BinOpKind.AND if isinstance(node.op, ast.And) else BinOpKind.OR
            result: Value | None = None
            for operand in node.values:
                value = self._compile_expr(operand)
                as_bool = self.builder.compare(CmpKind.NE, value, 0)
                result = as_bool if result is None else self.builder.binop(op, result, as_bool)
            assert result is not None
            return result
        if isinstance(node, ast.Subscript):
            region = self._region_name(node, node.lineno)
            index = self._compile_expr(node.slice)
            return self.builder.load(region, index)
        if isinstance(node, ast.Call):
            result = self._compile_call(node, want_result=True)
            assert result is not None
            return result
        if isinstance(node, ast.IfExp):
            cond = self._compile_expr(node.test)
            if_true = self._compile_expr(node.body)
            if_false = self._compile_expr(node.orelse)
            as_bool = self.builder.compare(CmpKind.NE, cond, 0)
            return self.builder.select(as_bool, if_true, if_false)
        raise NFCompileError(
            f"unsupported expression {type(node).__name__}", node.lineno
        )

    def _compile_unary(self, node: ast.UnaryOp) -> Value:
        if isinstance(node.op, ast.USub):
            operand = self._compile_expr(node.operand)
            return self.builder.sub(0, operand)
        if isinstance(node.op, ast.Invert):
            operand = self._compile_expr(node.operand)
            return self.builder.xor(operand, (1 << 64) - 1)
        if isinstance(node.op, ast.Not):
            operand = self._compile_expr(node.operand)
            return self.builder.compare(CmpKind.EQ, operand, 0)
        raise NFCompileError(
            f"unsupported unary operator {type(node.op).__name__}", node.lineno
        )

    def _compile_call(self, node: ast.Call, want_result: bool) -> Value | None:
        if not isinstance(node.func, ast.Name):
            raise NFCompileError("only direct calls by name are supported", node.lineno)
        if node.keywords:
            raise NFCompileError("keyword arguments are not supported", node.lineno)
        name = node.func.id
        if name == CASTAN_HAVOC:
            return self._compile_havoc(node)
        if name == "min" or name == "max":
            if len(node.args) != 2:
                raise NFCompileError(f"{name}() takes exactly two arguments", node.lineno)
            lhs = self._compile_expr(node.args[0])
            rhs = self._compile_expr(node.args[1])
            pred = CmpKind.ULT if name == "min" else CmpKind.UGT
            cond = self.builder.compare(pred, lhs, rhs)
            return self.builder.select(cond, lhs, rhs)
        if name not in self.known_functions:
            raise NFCompileError(f"call to unknown function {name!r}", node.lineno)
        args = [self._compile_expr(arg) for arg in node.args]
        if want_result:
            return self.builder.call(name, args)
        self.builder.call(name, args, void=True)
        return None

    def _compile_havoc(self, node: ast.Call) -> Value:
        if len(node.args) != 2:
            raise NFCompileError(
                "castan_havoc(key, hash_fn(args...)) takes exactly two arguments",
                node.lineno,
            )
        key_node, call_node = node.args
        if not (
            isinstance(call_node, ast.Call)
            and isinstance(call_node.func, ast.Name)
            and call_node.func.id in self.known_functions
        ):
            raise NFCompileError(
                "second argument of castan_havoc must be a call to a dialect function",
                node.lineno,
            )
        key = self._compile_expr(key_node)
        args = [self._compile_expr(arg) for arg in call_node.args]
        return self.builder.havoc(key, call_node.func.id, args)

    # -- helpers --------------------------------------------------------------

    def _bind_local(self, name: str, value: Value) -> None:
        """Copy ``value`` into the register backing local ``name``.

        Locals always live in a register named after them, so re-assignment
        inside loops produces a well-defined (if redundant) move; the
        interpreters treat registers as mutable slots, which keeps the
        frontend free of SSA/phi construction.
        """
        register = self.locals.get(name)
        if register is None:
            register = Register(name)
            self.locals[name] = register
        if isinstance(value, Register) and value.name == register.name:
            return
        self.builder.binop(BinOpKind.OR, value, 0, dest=register)

    def _load_name(self, name: str, lineno: int) -> Value:
        if name in self.locals:
            return self.locals[name]
        if name in self.constants:
            return Constant(self.constants[name])
        if name in ("True", "False"):
            return Constant(1 if name == "True" else 0)
        raise NFCompileError(f"use of undefined name {name!r}", lineno)

    def _region_name(self, node: ast.Subscript, lineno: int) -> str:
        if not isinstance(node.value, ast.Name):
            raise NFCompileError("subscripts must index a named memory region", lineno)
        name = node.value.id
        if name not in self.module.regions:
            raise NFCompileError(f"unknown memory region {name!r}", lineno)
        return name
