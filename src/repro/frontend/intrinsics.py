"""Intrinsic functions recognised by the NF dialect compiler.

``castan_havoc(key, hash_fn(args...))`` is the paper's annotation (§3.5/§4):
in production builds it simply evaluates the hash call; under CASTAN
analysis the hash call is suppressed and its result havoced.  The frontend
lowers it to the dedicated :class:`~repro.ir.instructions.Havoc`
instruction so both behaviours stay available to the interpreters.
"""

from __future__ import annotations

CASTAN_HAVOC = "castan_havoc"

# Names treated specially by the compiler (not looked up as helper functions).
INTRINSIC_NAMES = frozenset({CASTAN_HAVOC})
