"""Errors raised by the NF dialect compiler."""

from __future__ import annotations


class NFCompileError(SyntaxError):
    """Raised when NF dialect source uses an unsupported construct.

    The message always names the offending construct and, when available,
    the source line, so that NF authors can fix the code without reading
    the compiler.
    """

    def __init__(self, message: str, lineno: int | None = None) -> None:
        if lineno is not None:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno
